package sbdms

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/buffer"
	"repro/internal/storage"
	"repro/internal/wal"
)

// ErrReplicaClosed is returned by reads on a closed ReplicaReader.
var ErrReplicaClosed = errors.New("sbdms: replica reader closed")

// ReplicaReader is the follower side of log-shipped replication: a
// read-only engine over a bootstrap copy of a leader's data device.
// Shipped page-update records are applied through its own buffer pool,
// and snapshot reads (GetSnapshot / ScanKeysSnapshot) are served at the
// replicated visibility frontier — the leader's oracle frontier as of
// the last applied batch — so a follower never exposes a version the
// leader had not made visible, and never a torn prefix of a batch.
//
// Apply and read are serialized by a batch-granularity RWMutex rather
// than per-page latches: the frontier only advances at batch
// boundaries, so readers either see all of a batch's pages or none,
// which is exactly the atomicity the frontier timestamp promises.
// Vacuum never runs here (no writers), so frontier-visible versions
// are never reclaimed under a reader.
type ReplicaReader struct {
	dev  storage.Device
	disk *storage.DiskManager
	pool *buffer.Manager
	kv   *kvCore

	mu       sync.RWMutex  // apply batches (W) vs snapshot reads (R)
	frontier atomic.Uint64 // commit-TS visibility frontier
	applied  atomic.Uint64 // LSN end of the last applied record
	closed   atomic.Bool
}

// OpenReplicaReader opens a follower reader over dev, which must hold a
// bootstrap image of a leader's data device (replicate.Bootstrap
// seeded; the leader formats the KV structures at its own Open, so the
// image always contains them). frames sizes the private buffer pool
// (<= 0 selects the engine default).
func OpenReplicaReader(dev storage.Device, frames int) (*ReplicaReader, error) {
	if frames <= 0 {
		frames = 256
	}
	disk, err := storage.OpenDisk(dev)
	if err != nil {
		return nil, fmt.Errorf("sbdms: replica device: %w", err)
	}
	pool := buffer.New(disk, frames, buffer.NewPolicy(""))
	fm, err := storage.OpenFileManager(pool)
	if err != nil {
		return nil, err
	}
	kv, err := newKVCore(fm, pool, nil, nil, "__kv__", false, ReadCommitted)
	if err != nil {
		return nil, err
	}
	return &ReplicaReader{dev: dev, disk: disk, pool: pool, kv: kv}, nil
}

// ApplyBatch applies one shipped batch of records in LSN order and then
// publishes frontier as the new read timestamp. The caller (the cluster
// follower) must have deduplicated redeliveries — every record here
// must be new to this replica. Readers are excluded for the duration of
// the batch, so a scan never observes half a batch.
func (r *ReplicaReader) ApplyBatch(recs []*wal.Record, frontier uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, rec := range recs {
		if rec.Type == wal.RecUpdate {
			if err := r.applyUpdateLocked(rec); err != nil {
				return err
			}
		}
		end := rec.End
		if end == 0 {
			end = rec.LSN + 1
		}
		if uint64(end) > r.applied.Load() {
			r.applied.Store(uint64(end))
		}
	}
	if frontier > r.frontier.Load() {
		r.frontier.Store(frontier)
	}
	return nil
}

// applyUpdateLocked replays one page-update record into the replica's
// pool, exactly as recovery redo would: skip if the page already
// carries the effect (pageLSN at or past the record), else copy the
// after-image at its offset and advance the page LSN. The guard makes
// apply idempotent, which covers both shipped redeliveries and records
// straddling a bootstrap image (the image may or may not already hold
// effects logged concurrently with the bootstrap flush).
func (r *ReplicaReader) applyUpdateLocked(rec *wal.Record) error {
	if err := r.disk.EnsureAllocated(rec.PageID); err != nil {
		return fmt.Errorf("sbdms: replica allocating page %d: %w", rec.PageID, err)
	}
	f, err := r.pool.PinLatched(rec.PageID, true)
	if err != nil {
		return err
	}
	p := f.Page()
	if p.LSN() >= uint64(rec.LSN) {
		return r.pool.UnpinLatched(rec.PageID, true, false)
	}
	//lint:ignore walbeforemutate replaying an already-logged record shipped from the leader is redo, not an unlogged mutation
	copy(p.Data[rec.Offset:int(rec.Offset)+len(rec.After)], rec.After)
	p.SetLSN(uint64(rec.LSN))
	return r.pool.UnpinLatched(rec.PageID, true, true)
}

// Frontier returns the replicated visibility frontier: the commit
// timestamp snapshot reads are served at.
func (r *ReplicaReader) Frontier() uint64 { return r.frontier.Load() }

// AppliedLSN returns the end LSN of the last applied record.
func (r *ReplicaReader) AppliedLSN() wal.LSN { return wal.LSN(r.applied.Load()) }

// GetSnapshot reads k at the replicated frontier. Uncommitted and
// not-yet-replicated versions are invisible; a visible tombstone is
// ErrKeyNotFound.
func (r *ReplicaReader) GetSnapshot(ctx context.Context, k string) ([]byte, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.closed.Load() {
		return nil, ErrReplicaClosed
	}
	return r.kv.getSnapshotAt(ctx, k, r.frontier.Load())
}

// ScanKeysSnapshot scans up to n keys from from at the replicated
// frontier: one consistent cut of the replicated key space.
func (r *ReplicaReader) ScanKeysSnapshot(ctx context.Context, from string, n int) ([]string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.closed.Load() {
		return nil, ErrReplicaClosed
	}
	return r.kv.scanKeysSnapshotAt(ctx, from, n, r.frontier.Load())
}

// Flush writes every applied page back to the replica's device and
// syncs it. Called before promotion: the promoted engine re-opens the
// device with the follower's WAL copy and runs real crash recovery over
// the pair.
func (r *ReplicaReader) Flush() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.pool.FlushAll(); err != nil {
		return err
	}
	return r.dev.Sync()
}

// Close flushes and retires the reader. The device remains valid — for
// promotion, hand it to Open together with the follower's WAL
// directory.
func (r *ReplicaReader) Close() error {
	if r.closed.Swap(true) {
		return nil
	}
	return r.Flush()
}
