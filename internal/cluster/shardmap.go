// Package cluster runs ONE sbdms database across MANY nodes: the
// keyspace is hash-partitioned over N shard leaders, each leader ships
// its WAL to followers that serve snapshot reads at the replicated
// frontier, and a router fans client operations out through a shard
// map published in the core service registry. It is the distributed
// composition the paper's service architecture was built for — every
// hop is a service invocation, locally or over netbind.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"strings"
	"sync"

	"repro/internal/core"
)

// NodeID names one cluster node.
type NodeID string

// Shard is one keyspace partition: a leader that owns writes and any
// number of log-shipped followers serving snapshot reads.
type Shard struct {
	ID        int
	Leader    NodeID
	Followers []NodeID
}

// Map is the shard map: the epoch-stamped assignment of the hashed
// keyspace to shards. Epochs totally order map changes; every routed
// request carries the epoch it was planned under, and nodes reject
// requests planned under another epoch so a batch can never silently
// straddle two maps.
type Map struct {
	Epoch  uint64
	Shards []Shard
}

// ShardFor returns the shard index owning key (FNV-1a over the key,
// mod the shard count). Every key maps to exactly one shard for any
// non-empty shard list.
func (m *Map) ShardFor(key string) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() % uint32(len(m.Shards)))
}

// Clone deep-copies the map.
func (m *Map) Clone() *Map {
	cp := &Map{Epoch: m.Epoch, Shards: make([]Shard, len(m.Shards))}
	for i, s := range m.Shards {
		cp.Shards[i] = Shard{ID: s.ID, Leader: s.Leader,
			Followers: append([]NodeID(nil), s.Followers...)}
	}
	return cp
}

// epochErrMsg is the substring that identifies an epoch rejection even
// after the error has been flattened to a string by a network binding.
const epochErrMsg = "cluster: shard-map epoch changed"

// ErrEpochChanged is the typed retryable rejection a node returns for a
// request planned under a different map epoch. The router reacts by
// refreshing the map and retrying the WHOLE operation (for batches:
// every sub-batch, under the new epoch) — partial application across
// epochs is structurally impossible because every sub-request carries
// one epoch and any mismatch fails the whole call.
var ErrEpochChanged = errors.New(epochErrMsg + " (refresh and retry)")

// IsEpochChanged reports whether err is an epoch rejection, surviving
// netbind's error-string flattening.
func IsEpochChanged(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, ErrEpochChanged) || strings.Contains(err.Error(), epochErrMsg)
}

// notLeaderMsg identifies wrong-role rejections across netbind.
const notLeaderMsg = "cluster: node is not the shard leader"

// ErrNotLeader is returned by write operations sent to a follower (a
// stale map can route there mid-failover).
var ErrNotLeader = errors.New(notLeaderMsg)

// IsNotLeader reports whether err is a wrong-role rejection.
func IsNotLeader(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, ErrNotLeader) || strings.Contains(err.Error(), notLeaderMsg)
}

// Shard-map service published through the core registry.
const (
	// IfaceShardMap is the logical interface of the map service.
	IfaceShardMap = "sbdms.cluster.ShardMap"
	// MapServiceName is the registration name routers look up.
	MapServiceName = "shardmap"
)

// MapPublisher owns the authoritative shard map and publishes it as a
// core service: routers invoke "get" to (re-)fetch the map, the
// cluster controller invokes Bump to install a successor map under the
// next epoch.
type MapPublisher struct {
	mu  sync.Mutex
	m   *Map
	svc *core.BaseService
}

// NewMapPublisher creates a publisher holding initial (assigned epoch 1
// if unset).
func NewMapPublisher(initial *Map) *MapPublisher {
	p := &MapPublisher{m: initial.Clone()}
	if p.m.Epoch == 0 {
		p.m.Epoch = 1
	}
	svc := core.NewService(MapServiceName, &core.Contract{
		Interface: IfaceShardMap,
		Operations: []core.OpSpec{
			{Name: "get", In: "nil", Out: "*cluster.Map", Semantic: "cluster.map.get"},
		},
		Description: core.Description{Summary: "epoch-stamped shard map of the hashed keyspace"},
	})
	svc.Handle("get", func(ctx context.Context, req any) (any, error) {
		return p.Get(), nil
	})
	//lint:ignore ctxflow service start runs no hooks; there is no request context at construction time
	if err := svc.Start(context.Background()); err != nil {
		// Start without hooks cannot fail; guard anyway.
		panic(fmt.Sprintf("cluster: starting map service: %v", err))
	}
	p.svc = svc
	return p
}

// Service returns the publishable core service.
func (p *MapPublisher) Service() *core.BaseService { return p.svc }

// Get returns a copy of the current map.
func (p *MapPublisher) Get() *Map {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.m.Clone()
}

// Bump installs next as the successor map under epoch current+1 and
// returns the new epoch.
func (p *MapPublisher) Bump(next *Map) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	next = next.Clone()
	next.Epoch = p.m.Epoch + 1
	p.m = next
	return next.Epoch
}
