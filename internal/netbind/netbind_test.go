package netbind

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

func echoContract(iface string) *core.Contract {
	return &core.Contract{
		Interface: iface,
		Operations: []core.OpSpec{
			{Name: "echo", In: "string", Out: "string", Semantic: "test.echo"},
		},
	}
}

func newEchoService(t testing.TB, name, iface string) *core.BaseService {
	t.Helper()
	s := core.NewService(name, echoContract(iface))
	s.Handle("echo", func(ctx context.Context, req any) (any, error) {
		str, _ := req.(string)
		return name + ":" + str, nil
	})
	core.WithPing(s)
	if err := s.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	return s
}

func serve(t *testing.T, svcs ...*core.BaseService) (*core.Registry, *Server) {
	t.Helper()
	reg := core.NewRegistry(nil)
	for _, s := range svcs {
		if err := reg.RegisterService(s, nil); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := Serve(reg, "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return reg, srv
}

func TestRemoteInvoke(t *testing.T) {
	_, srv := serve(t, newEchoService(t, "svc", "test.Echo"))
	c := NewClient(srv.Addr())
	defer c.Close()
	out, err := c.Call(context.Background(), "svc", "echo", "hello")
	if err != nil {
		t.Fatal(err)
	}
	if out != "svc:hello" {
		t.Fatalf("out = %v", out)
	}
	// Ping across the wire.
	out, err = c.Call(context.Background(), "svc", core.PingOp, nil)
	if err != nil || out != "pong:svc" {
		t.Fatalf("ping = %v, %v", out, err)
	}
}

func TestRemoteErrors(t *testing.T) {
	_, srv := serve(t, newEchoService(t, "svc", "test.Echo"))
	c := NewClient(srv.Addr())
	defer c.Close()
	// Unknown service.
	if _, err := c.Call(context.Background(), "ghost", "echo", "x"); !errors.Is(err, ErrRemote) {
		t.Fatalf("err = %v", err)
	}
	// Unknown op surfaces as remote error with message.
	_, err := c.Call(context.Background(), "svc", "nosuch", "x")
	if !errors.Is(err, ErrRemote) || !strings.Contains(err.Error(), "unknown operation") {
		t.Fatalf("err = %v", err)
	}
}

func TestInvokerForIsCoreInvoker(t *testing.T) {
	_, srv := serve(t, newEchoService(t, "svc", "test.Echo"))
	c := NewClient(srv.Addr())
	defer c.Close()
	var inv core.Invoker = c.InvokerFor("svc")
	out, err := inv.Invoke(context.Background(), "echo", "x")
	if err != nil || out != "svc:x" {
		t.Fatalf("invoke = %v, %v", out, err)
	}
}

func TestClientReconnects(t *testing.T) {
	_, srv := serve(t, newEchoService(t, "svc", "test.Echo"))
	c := NewClient(srv.Addr())
	defer c.Close()
	if _, err := c.Call(context.Background(), "svc", "echo", "1"); err != nil {
		t.Fatal(err)
	}
	// Kill the connection server-side; the next call must redial.
	srv.mu.Lock()
	for conn := range srv.conns {
		_ = conn.Close()
	}
	srv.mu.Unlock()
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, err := c.Call(context.Background(), "svc", "echo", "2")
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("client never recovered: %v", err)
		}
	}
}

func TestClientClosed(t *testing.T) {
	c := NewClient("127.0.0.1:1")
	_ = c.Close()
	if _, err := c.Call(context.Background(), "s", "op", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v", err)
	}
}

func TestDialFailure(t *testing.T) {
	c := NewClient("127.0.0.1:1") // nothing listens on port 1
	defer c.Close()
	if _, err := c.Call(context.Background(), "s", "op", nil); err == nil {
		t.Fatal("dial must fail")
	}
}

func TestContextDeadlinePropagates(t *testing.T) {
	slow := core.NewService("slow", echoContract("test.Slow"))
	slow.Handle("echo", func(ctx context.Context, req any) (any, error) {
		time.Sleep(200 * time.Millisecond)
		return "done", nil
	})
	_ = slow.Start(context.Background())
	_, srv := serve(t, slow)
	c := NewClient(srv.Addr())
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := c.Call(ctx, "slow", "echo", "x"); err == nil {
		t.Fatal("deadline must abort the call")
	}
}

func TestGossipSync(t *testing.T) {
	// Node A serves svcA; node B serves svcB; after one sync in each
	// direction both registries know both services and can call across.
	regA, srvA := serve(t, newEchoService(t, "svcA", "test.Echo"))
	regB, srvB := serve(t, newEchoService(t, "svcB", "test.Echo"))

	peerB := NewClient(srvB.Addr())
	defer peerB.Close()
	if _, err := Sync(context.Background(), regA, srvA.Addr(), peerB); err != nil {
		t.Fatal(err)
	}
	// A now knows svcB.
	reg, err := regA.Lookup("svcB")
	if err != nil {
		t.Fatal("svcB not propagated to A")
	}
	out, err := reg.Invoker.Invoke(context.Background(), "echo", "x")
	if err != nil || out != "svcB:x" {
		t.Fatalf("cross-node call = %v, %v", out, err)
	}
	// The sync reply also taught B about svcA.
	if _, err := regB.Lookup("svcA"); err != nil {
		t.Fatal("svcA not propagated to B via reply")
	}
	// Selection across nodes: a ref over test.Echo on A sees both.
	cands := regA.Discover("test.Echo")
	if len(cands) != 2 {
		t.Fatalf("candidates on A = %d", len(cands))
	}
}

func TestGossipTombstonePropagation(t *testing.T) {
	regA, srvA := serve(t, newEchoService(t, "svcA", "test.Echo"))
	regB, srvB := serve(t, newEchoService(t, "svcB", "test.Echo"))
	peerB := NewClient(srvB.Addr())
	defer peerB.Close()
	if _, err := Sync(context.Background(), regA, srvA.Addr(), peerB); err != nil {
		t.Fatal(err)
	}
	// B drops svcB; next sync must remove it from A.
	if err := regB.Deregister("svcB"); err != nil {
		t.Fatal(err)
	}
	if _, err := Sync(context.Background(), regA, srvA.Addr(), peerB); err != nil {
		t.Fatal(err)
	}
	if _, err := regA.Lookup("svcB"); err == nil {
		t.Fatal("tombstone did not propagate")
	}
}

func TestGossiperLoop(t *testing.T) {
	regA, srvA := serve(t, newEchoService(t, "svcA", "test.Echo"))
	regB, srvB := serve(t, newEchoService(t, "svcB", "test.Echo"))
	_ = regB
	g := NewGossiper(regA, srvA.Addr(), srvB.Addr())
	g.Start(5 * time.Millisecond)
	defer g.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := regA.Lookup("svcB"); err == nil {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("gossiper never propagated svcB")
}

func TestNetBinding(t *testing.T) {
	_, srv := serve(t, newEchoService(t, "svc", "test.Echo"))
	c := NewClient(srv.Addr())
	defer c.Close()
	b := NewBinding(c, "svc")
	if b.Protocol() != Protocol {
		t.Fatal("protocol name")
	}
	inv := b.Bind(nil)
	out, err := inv.Invoke(context.Background(), "echo", "x")
	if err != nil || out != "svc:x" {
		t.Fatalf("bound invoke = %v, %v", out, err)
	}
}
