package wal

// The log-shipping surface: the append observer must expose every
// record, in LSN order, with End set, before durability — and the
// exported encoder must reproduce the leader's segment bytes exactly,
// because follower log copies are byte-identical by construction
// (promotion runs real crash recovery over them).

import (
	"bytes"
	"testing"

	"repro/internal/storage"
)

func TestAppendObserverStreamFidelity(t *testing.T) {
	l, err := OpenDir(NewMemSegmentDir(), minSegmentBytes)
	if err != nil {
		t.Fatal(err)
	}
	type seen struct {
		lsn, end LSN
		encoded  []byte
	}
	var stream []seen
	l.SetAppendObserver(func(rec *Record) {
		if rec.End == 0 {
			t.Errorf("observer saw record at LSN %d with End unset", rec.LSN)
		}
		stream = append(stream, seen{lsn: rec.LSN, end: rec.End, encoded: EncodeRecord(nil, rec)})
	})

	payloads := [][]byte{
		[]byte("alpha"),
		bytes.Repeat([]byte{0x5A}, 700), // spills into a second segment
		[]byte("omega"),
	}
	for i, p := range payloads {
		if _, err := l.Append(&Record{Txn: uint64(i + 1), Type: RecUpdate, PageID: storage.PageID(i + 2), After: p}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Flush(l.NextLSN()); err != nil {
		t.Fatal(err)
	}
	l.SetAppendObserver(nil)
	if _, err := l.Append(&Record{Txn: 9, Type: RecUpdate, PageID: 9, After: []byte("unseen")}); err != nil {
		t.Fatal(err)
	}

	if len(stream) != len(payloads) {
		t.Fatalf("observer saw %d records, want %d (and none after removal)", len(stream), len(payloads))
	}
	// Contiguity: each record's End is the next record's LSN, and
	// End-LSN equals the encoded length the follower will write.
	for i, s := range stream {
		if got := LSN(len(s.encoded)); s.end-s.lsn != got {
			t.Fatalf("record %d: End-LSN = %d, encoded length %d", i, s.end-s.lsn, got)
		}
		if i > 0 && s.lsn != stream[i-1].end {
			t.Fatalf("stream gap: record %d at LSN %d, previous End %d", i, s.lsn, stream[i-1].end)
		}
	}

	// Byte fidelity: re-reading the log yields records whose encoding
	// matches what the observer captured at append time.
	i := 0
	err = l.Iterate(stream[0].lsn, func(rec *Record) error {
		if i < len(stream) && rec.LSN == stream[i].lsn {
			if !bytes.Equal(EncodeRecord(nil, rec), stream[i].encoded) {
				t.Fatalf("record %d: durable encoding differs from observed encoding", i)
			}
			i++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != len(stream) {
		t.Fatalf("found %d observed records in the log, want %d", i, len(stream))
	}
}

func TestSnapshotSegmentsSeedsIdenticalLog(t *testing.T) {
	l, err := OpenDir(NewMemSegmentDir(), minSegmentBytes)
	if err != nil {
		t.Fatal(err)
	}
	fillSegments(t, l, 3)

	manifest, segs, durable, err := l.SnapshotSegments()
	if err != nil {
		t.Fatal(err)
	}
	if durable != l.DurableBoundary() {
		t.Fatalf("snapshot durable %d, log durable %d", durable, l.DurableBoundary())
	}
	if len(segs) != l.SegmentCount() {
		t.Fatalf("snapshot carries %d segments, log has %d", len(segs), l.SegmentCount())
	}

	// Seed a fresh dir with the copied bytes and reopen it as a log.
	dir := NewMemSegmentDir()
	mdev, err := dir.OpenManifest()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mdev.WriteAt(manifest, 0); err != nil {
		t.Fatal(err)
	}
	for _, s := range segs {
		sdev, err := dir.OpenSegment(s.Seq)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sdev.WriteAt(s.Data, 0); err != nil {
			t.Fatal(err)
		}
	}
	seeded, err := OpenDir(dir, minSegmentBytes)
	if err != nil {
		t.Fatalf("opening seeded dir: %v", err)
	}

	var want, got []*Record
	collect := func(log *Log, out *[]*Record) {
		err := log.Iterate(log.OldestLSN(), func(r *Record) error {
			cp := *r
			cp.After = append([]byte(nil), r.After...)
			*out = append(*out, &cp)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	collect(l, &want)
	collect(seeded, &got)
	if len(got) != len(want) {
		t.Fatalf("seeded log has %d records, source %d", len(got), len(want))
	}
	for i := range want {
		if got[i].LSN != want[i].LSN || !bytes.Equal(got[i].After, want[i].After) {
			t.Fatalf("record %d differs after seeding", i)
		}
	}
}
