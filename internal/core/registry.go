package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Registry errors.
var (
	// ErrNotFound is returned when no registration matches a lookup.
	ErrNotFound = errors.New("core: service not found")
	// ErrDuplicate is returned when a service name is registered twice.
	ErrDuplicate = errors.New("core: duplicate service registration")
)

// Registration is one entry in a service registry: the published name,
// the interface it provides, its contract, how to invoke it, and
// metadata used by selectors (tags such as node locality). Version is a
// per-registry logical clock used by the gossip synchronisation in
// internal/netbind.
type Registration struct {
	// Name is the unique published service instance name.
	Name string
	// Interface is the provided logical interface (Contract.Interface).
	Interface string
	// Contract is the full service contract.
	Contract *Contract
	// Invoker reaches the service. For local services it is the service
	// itself; for remote entries a network binding client. It is nil in
	// gossip snapshots and re-established by the receiving side.
	Invoker Invoker
	// Address is the network address for remote invocation, empty for
	// purely local services.
	Address string
	// Tags carries selector metadata, e.g. {"node": "edge-1"}.
	Tags map[string]string
	// Version is the registry logical clock value at (re-)registration.
	Version uint64
	// Tombstone marks a deregistered entry retained for gossip.
	Tombstone bool
}

// Clone returns a deep copy (sharing the Invoker, which is immutable
// from the registry's point of view).
func (r *Registration) Clone() *Registration {
	cp := *r
	cp.Contract = r.Contract.Clone()
	if r.Tags != nil {
		cp.Tags = make(map[string]string, len(r.Tags))
		for k, v := range r.Tags {
			cp.Tags[k] = v
		}
	}
	return &cp
}

// Registry is the service registry of Section 3.1: it enables service
// discovery by interface, notifies watchers of changes (late binding
// invalidation), and supports snapshot/merge for P2P-style repository
// updates between distributed registries (Section 4).
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*Registration // by Name (including tombstones)
	byIface map[string]map[string]*Registration
	clock   uint64
	bus     *EventBus
}

// NewRegistry creates an empty registry publishing change events to bus
// (which may be nil).
func NewRegistry(bus *EventBus) *Registry {
	return &Registry{
		entries: make(map[string]*Registration),
		byIface: make(map[string]map[string]*Registration),
		bus:     bus,
	}
}

// Register publishes a service registration. Registering an existing
// live name fails with ErrDuplicate; re-registering over a tombstone
// revives the entry.
func (r *Registry) Register(reg *Registration) error {
	if reg.Name == "" || reg.Interface == "" {
		return fmt.Errorf("core: registration needs name and interface")
	}
	if reg.Contract == nil {
		return fmt.Errorf("core: registration %s has no contract", reg.Name)
	}
	r.mu.Lock()
	if old, ok := r.entries[reg.Name]; ok && !old.Tombstone {
		r.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrDuplicate, reg.Name)
	}
	r.clock++
	cp := reg.Clone()
	cp.Version = r.clock
	cp.Tombstone = false
	r.insertLocked(cp)
	r.mu.Unlock()
	r.publish(EventServiceRegistered, cp.Name, cp.Interface)
	return nil
}

// RegisterService publishes a local service under its contract's
// interface name.
func (r *Registry) RegisterService(s Service, tags map[string]string) error {
	return r.Register(&Registration{
		Name:      s.Name(),
		Interface: s.Contract().Interface,
		Contract:  s.Contract(),
		Invoker:   s,
		Tags:      tags,
	})
}

func (r *Registry) insertLocked(reg *Registration) {
	if old, ok := r.entries[reg.Name]; ok {
		if m := r.byIface[old.Interface]; m != nil {
			delete(m, old.Name)
			if len(m) == 0 {
				delete(r.byIface, old.Interface)
			}
		}
	}
	r.entries[reg.Name] = reg
	if !reg.Tombstone {
		m := r.byIface[reg.Interface]
		if m == nil {
			m = make(map[string]*Registration)
			r.byIface[reg.Interface] = m
		}
		m[reg.Name] = reg
	}
}

// Deregister removes a service by name, leaving a tombstone so the
// removal propagates through gossip.
func (r *Registry) Deregister(name string) error {
	r.mu.Lock()
	reg, ok := r.entries[name]
	if !ok || reg.Tombstone {
		r.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	r.clock++
	ts := reg.Clone()
	ts.Tombstone = true
	ts.Version = r.clock
	ts.Invoker = nil
	r.insertLocked(ts)
	r.mu.Unlock()
	r.publish(EventServiceDeregistered, name, reg.Interface)
	return nil
}

// Lookup returns the live registration with the given name.
func (r *Registry) Lookup(name string) (*Registration, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	reg, ok := r.entries[name]
	if !ok || reg.Tombstone {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return reg, nil
}

// Discover returns all live registrations providing the interface,
// sorted by name for determinism.
func (r *Registry) Discover(iface string) []*Registration {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m := r.byIface[iface]
	out := make([]*Registration, 0, len(m))
	for _, reg := range m {
		out = append(out, reg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Interfaces returns the sorted list of interfaces with at least one
// live provider.
func (r *Registry) Interfaces() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.byIface))
	for iface := range r.byIface {
		out = append(out, iface)
	}
	sort.Strings(out)
	return out
}

// All returns every live registration sorted by name.
func (r *Registry) All() []*Registration {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Registration, 0, len(r.entries))
	for _, reg := range r.entries {
		if !reg.Tombstone {
			out = append(out, reg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of live registrations.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, reg := range r.entries {
		if !reg.Tombstone {
			n++
		}
	}
	return n
}

// Clock returns the registry's current logical clock.
func (r *Registry) Clock() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.clock
}

// Snapshot returns copies of every entry (including tombstones) with
// version greater than since, for gossip exchange. Invokers are
// stripped; receivers reconstruct them from Address.
func (r *Registry) Snapshot(since uint64) []*Registration {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []*Registration
	for _, reg := range r.entries {
		if reg.Version > since {
			cp := reg.Clone()
			cp.Invoker = nil
			out = append(out, cp)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Version < out[j].Version })
	return out
}

// Merge applies a gossip snapshot from a peer registry. An incoming
// entry wins when the local registry has no entry of that name;
// otherwise local entries win unless the incoming one is a tombstone
// for a remote (address-bearing) entry we hold. resolve, when non-nil,
// converts an address into an Invoker for revived remote entries.
// It returns the number of entries applied.
func (r *Registry) Merge(snapshot []*Registration, resolve func(address, name string) Invoker) int {
	applied := 0
	for _, in := range snapshot {
		r.mu.Lock()
		local, ok := r.entries[in.Name]
		switch {
		case !ok:
			// New entry from the peer.
			r.clock++
			cp := in.Clone()
			cp.Version = r.clock
			if !cp.Tombstone && cp.Invoker == nil && cp.Address != "" && resolve != nil {
				cp.Invoker = resolve(cp.Address, cp.Name)
			}
			if cp.Tombstone || cp.Invoker != nil {
				r.insertLocked(cp)
				applied++
			}
		case local.Address != "" && in.Tombstone && !local.Tombstone:
			// Peer observed removal of a remote service we know.
			r.clock++
			ts := local.Clone()
			ts.Tombstone = true
			ts.Invoker = nil
			ts.Version = r.clock
			r.insertLocked(ts)
			applied++
		}
		r.mu.Unlock()
	}
	if applied > 0 {
		r.publish(EventReconfigured, "registry", fmt.Sprintf("merged %d gossip entries", applied))
	}
	return applied
}

func (r *Registry) publish(t EventType, subject, detail string) {
	if r.bus != nil {
		r.bus.Publish(Event{Type: t, Subject: subject, Detail: detail})
	}
}
