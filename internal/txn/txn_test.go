package txn

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/access"
	"repro/internal/buffer"
	"repro/internal/storage"
	"repro/internal/undo"
	"repro/internal/wal"
)

func TestLockSharedCompatible(t *testing.T) {
	lm := NewLockManager()
	ctx := context.Background()
	if err := lm.Acquire(ctx, 1, "r", Shared); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire(ctx, 2, "r", Shared); err != nil {
		t.Fatal(err)
	}
	if m, ok := lm.Held(1, "r"); !ok || m != Shared {
		t.Fatalf("held = %v, %v", m, ok)
	}
	if lm.Locked() != 1 {
		t.Fatalf("Locked = %d", lm.Locked())
	}
	lm.ReleaseAll(1)
	lm.ReleaseAll(2)
	if lm.Locked() != 0 {
		t.Fatal("locks remain")
	}
}

func TestLockExclusiveBlocksAndWakes(t *testing.T) {
	lm := NewLockManager()
	ctx := context.Background()
	if err := lm.Acquire(ctx, 1, "r", Exclusive); err != nil {
		t.Fatal(err)
	}
	acquired := make(chan error, 1)
	go func() {
		acquired <- lm.Acquire(ctx, 2, "r", Exclusive)
	}()
	select {
	case err := <-acquired:
		t.Fatalf("acquire should block, got %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	lm.ReleaseAll(1)
	select {
	case err := <-acquired:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never woke")
	}
}

func TestLockReentrantAndIdempotent(t *testing.T) {
	lm := NewLockManager()
	ctx := context.Background()
	if err := lm.Acquire(ctx, 1, "r", Exclusive); err != nil {
		t.Fatal(err)
	}
	// Re-acquiring (same or weaker) succeeds immediately.
	if err := lm.Acquire(ctx, 1, "r", Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire(ctx, 1, "r", Shared); err != nil {
		t.Fatal(err)
	}
}

func TestLockUpgrade(t *testing.T) {
	lm := NewLockManager()
	ctx := context.Background()
	if err := lm.Acquire(ctx, 1, "r", Shared); err != nil {
		t.Fatal(err)
	}
	// Upgrade with no other holders succeeds.
	if err := lm.Acquire(ctx, 1, "r", Exclusive); err != nil {
		t.Fatal(err)
	}
	if m, _ := lm.Held(1, "r"); m != Exclusive {
		t.Fatalf("mode = %v", m)
	}
}

func TestDeadlockDetection(t *testing.T) {
	lm := NewLockManager()
	ctx := context.Background()
	if err := lm.Acquire(ctx, 1, "a", Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire(ctx, 2, "b", Exclusive); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	wg.Add(1)
	go func() {
		defer wg.Done()
		errs <- lm.Acquire(ctx, 1, "b", Exclusive) // 1 waits for 2
	}()
	time.Sleep(20 * time.Millisecond)
	// 2 -> a closes the cycle; one of the two must get ErrDeadlock.
	err2 := lm.Acquire(ctx, 2, "a", Exclusive)
	if errors.Is(err2, ErrDeadlock) {
		lm.ReleaseAll(2)
	} else if err2 != nil {
		t.Fatalf("unexpected: %v", err2)
	} else {
		lm.ReleaseAll(2)
	}
	lm.ReleaseAll(1)
	wg.Wait()
	err1 := <-errs
	if !errors.Is(err1, ErrDeadlock) && !errors.Is(err2, ErrDeadlock) && err1 != nil {
		t.Fatalf("no deadlock detected: %v / %v", err1, err2)
	}
}

func TestLockContextCancel(t *testing.T) {
	lm := NewLockManager()
	ctx := context.Background()
	if err := lm.Acquire(ctx, 1, "r", Exclusive); err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithTimeout(ctx, 30*time.Millisecond)
	defer cancel()
	err := lm.Acquire(cctx, 2, "r", Exclusive)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
}

func TestReleaseErrors(t *testing.T) {
	lm := NewLockManager()
	if err := lm.Release(1, "r"); !errors.Is(err, ErrNotHeld) {
		t.Fatalf("err = %v", err)
	}
	_ = lm.Acquire(context.Background(), 1, "r", Shared)
	if err := lm.Release(2, "r"); !errors.Is(err, ErrNotHeld) {
		t.Fatalf("err = %v", err)
	}
	if err := lm.Release(1, "r"); err != nil {
		t.Fatal(err)
	}
}

// testEngine builds heap + wal + txn manager over one disk.
func testEngine(t *testing.T) (*Manager, *access.HeapFile, *buffer.Manager, *wal.Log) {
	t.Helper()
	d, err := storage.OpenDisk(storage.NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	pool := buffer.New(d, 32, buffer.NewLRU())
	fm, err := storage.OpenFileManager(pool)
	if err != nil {
		t.Fatal(err)
	}
	h, err := access.OpenHeap("t", fm, pool)
	if err != nil {
		t.Fatal(err)
	}
	l, err := wal.Open(storage.NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	h.SetLog(l)
	pool.SetBeforeEvict(l.BeforeEvict())
	m := NewManager(l, pool)
	// Heap mutations log logical undo descriptors; rollback executes
	// them through the undo executor, exactly as the full engine wires
	// it.
	ex := undo.NewExecutor(pool, l)
	ex.SetSystemTxns(m.SystemHooksHeldLatches())
	m.SetUndoHandler(ex)
	h.SetSystemTxns(m.SystemHooks())
	return m, h, pool, l
}

func TestTxnCommit(t *testing.T) {
	m, h, _, l := testEngine(t)
	tx, err := m.Begin()
	if err != nil {
		t.Fatal(err)
	}
	rid, err := h.Insert(tx, []byte("committed"))
	if err != nil {
		t.Fatal(err)
	}
	if tx.Updates() != 1 {
		t.Fatalf("updates = %d", tx.Updates())
	}
	if err := m.Commit(tx); err != nil {
		t.Fatal(err)
	}
	if tx.Status() != StatusCommitted {
		t.Fatalf("status = %v", tx.Status())
	}
	// Commit forces the log: begin, update, commit all durable.
	n := 0
	_ = l.Iterate(wal.ZeroLSN, func(r *wal.Record) error { n++; return nil })
	if n != 3 {
		t.Fatalf("durable records = %d", n)
	}
	if got, err := h.Get(rid); err != nil || string(got) != "committed" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	// Double commit fails.
	if err := m.Commit(tx); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("err = %v", err)
	}
	if m.ActiveCount() != 0 {
		t.Fatal("txn still active")
	}
}

func TestTxnAbortRollsBack(t *testing.T) {
	m, h, _, _ := testEngine(t)
	// Committed baseline row.
	tx0, _ := m.Begin()
	rid0, err := h.Insert(tx0, []byte("keep"))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(tx0); err != nil {
		t.Fatal(err)
	}

	tx, _ := m.Begin()
	if _, err := h.Insert(tx, []byte("discard-1")); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Insert(tx, []byte("discard-2")); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Update(tx, rid0, []byte("mutated")); err != nil {
		t.Fatal(err)
	}
	if err := m.Abort(tx); err != nil {
		t.Fatal(err)
	}
	if tx.Status() != StatusAborted {
		t.Fatalf("status = %v", tx.Status())
	}
	// All effects gone; baseline intact.
	count, err := h.Count()
	if err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
	got, err := h.Get(rid0)
	if err != nil || string(got) != "keep" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if err := m.Abort(tx); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("double abort err = %v", err)
	}
}

func TestTxnLockIntegration(t *testing.T) {
	m, _, _, _ := testEngine(t)
	ctx := context.Background()
	tx1, _ := m.Begin()
	tx2, _ := m.Begin()
	if err := tx1.Lock(ctx, "table:users", Exclusive); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- tx2.Lock(ctx, "table:users", Exclusive) }()
	select {
	case <-done:
		t.Fatal("tx2 should block")
	case <-time.After(30 * time.Millisecond):
	}
	// Commit releases tx1's locks; tx2 proceeds.
	if err := m.Commit(tx1); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := m.Abort(tx2); err != nil {
		t.Fatal(err)
	}
	// Locks on finished txns fail.
	if err := tx1.Lock(ctx, "x", Shared); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("err = %v", err)
	}
}

func TestTxnWithoutWAL(t *testing.T) {
	m := NewManager(nil, nil)
	tx, err := m.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(tx); err != nil {
		t.Fatal(err)
	}
	tx2, _ := m.Begin()
	if err := m.Abort(tx2); err != nil {
		t.Fatal(err)
	}
}

func TestStatusString(t *testing.T) {
	if StatusActive.String() != "active" || StatusCommitted.String() != "committed" ||
		StatusAborted.String() != "aborted" || Status(9).String() != "status(9)" {
		t.Fatal("status strings")
	}
	if Shared.String() != "S" || Exclusive.String() != "X" {
		t.Fatal("mode strings")
	}
}

func TestConcurrentTransfers(t *testing.T) {
	// Bank-transfer style workload: concurrent txns move value between
	// two records under exclusive locks; the sum must be conserved.
	m, h, _, _ := testEngine(t)
	ridA, err := h.Insert(nil, access.EncodeRow(access.Row{access.NewInt(500)}))
	if err != nil {
		t.Fatal(err)
	}
	ridB, err := h.Insert(nil, access.EncodeRow(access.Row{access.NewInt(500)}))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				tx, err := m.Begin()
				if err != nil {
					t.Error(err)
					return
				}
				if err := tx.Lock(ctx, "account", Exclusive); err != nil {
					_ = m.Abort(tx)
					continue
				}
				get := func(rid access.RID) int64 {
					raw, _ := h.Get(rid)
					row, _ := access.DecodeRow(raw)
					return row[0].Int
				}
				a, b := get(ridA), get(ridB)
				amount := int64(w + 1)
				if _, err := h.Update(tx, ridA, access.EncodeRow(access.Row{access.NewInt(a - amount)})); err != nil {
					t.Error(err)
					_ = m.Abort(tx)
					return
				}
				if _, err := h.Update(tx, ridB, access.EncodeRow(access.Row{access.NewInt(b + amount)})); err != nil {
					t.Error(err)
					_ = m.Abort(tx)
					return
				}
				if i%5 == 0 {
					if err := m.Abort(tx); err != nil {
						t.Error(err)
						return
					}
				} else if err := m.Commit(tx); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	raws, _ := h.Get(ridA)
	rowA, _ := access.DecodeRow(raws)
	raws, _ = h.Get(ridB)
	rowB, _ := access.DecodeRow(raws)
	if rowA[0].Int+rowB[0].Int != 1000 {
		t.Fatalf("sum = %d, money created/destroyed", rowA[0].Int+rowB[0].Int)
	}
}

// TestFuzzyCheckpointWithActiveTxn: a fuzzy checkpoint runs while a
// transaction is in flight, records it in the checkpoint's ATT, and
// keeps the recovery-begin LSN at or below the transaction's first
// record so its undo history is never truncated.
func TestFuzzyCheckpointWithActiveTxn(t *testing.T) {
	m, h, _, l := testEngine(t)
	tx, _ := m.Begin()
	if _, err := h.Insert(tx, []byte("in-flight at checkpoint")); err != nil {
		t.Fatal(err)
	}
	ck, err := m.Checkpoint()
	if err != nil {
		t.Fatalf("fuzzy checkpoint with an active txn: %v", err)
	}
	if l.LastCheckpoint() != ck {
		t.Fatalf("checkpoint = %d, want %d", l.LastCheckpoint(), ck)
	}
	if rb := l.RecoveryBegin(); rb > tx.LastLSN() {
		t.Fatalf("recovery begin %d is above the active txn's records (%d)", rb, tx.LastLSN())
	}
	// The checkpoint record carries the transaction in its ATT.
	var data wal.CheckpointData
	err = l.Iterate(ck, func(r *wal.Record) error {
		if r.LSN == ck && r.Type == wal.RecCheckpoint {
			data, err = wal.DecodeCheckpoint(r.After)
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range data.ATT {
		if e.ID == tx.ID() {
			found = true
			if e.First == wal.ZeroLSN || e.First > e.Last {
				t.Fatalf("ATT entry %+v has bad LSN range", e)
			}
		}
	}
	if !found {
		t.Fatalf("active txn %d missing from checkpoint ATT %+v", tx.ID(), data.ATT)
	}
	if err := m.Commit(tx); err != nil {
		t.Fatal(err)
	}
	// Without a WAL, checkpointing fails cleanly.
	m2 := NewManager(nil, nil)
	if _, err := m2.Checkpoint(); !errors.Is(err, ErrNoWAL) {
		t.Fatalf("err = %v", err)
	}
}

// TestFuzzyCheckpointBoundsRecoveryScan: work committed and flushed
// before a quiescent-moment checkpoint is excluded from the next
// recovery scan.
func TestFuzzyCheckpointBoundsRecoveryScan(t *testing.T) {
	m, h, pool, l := testEngine(t)
	tx, _ := m.Begin()
	if _, err := h.Insert(tx, []byte("pre-checkpoint")); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(tx); err != nil {
		t.Fatal(err)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	ck, err := m.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if rb := l.RecoveryBegin(); rb < ck {
		t.Fatalf("recovery begin %d should reach the checkpoint %d with nothing dirty", rb, ck)
	}
	tx2, _ := m.Begin()
	if _, err := h.Insert(tx2, []byte("post-checkpoint")); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(tx2); err != nil {
		t.Fatal(err)
	}
	st, err := wal.Recover(l, pool)
	if err != nil {
		t.Fatal(err)
	}
	// Only the checkpoint record and txn 2's records are scanned.
	if st.Scanned > 4 {
		t.Fatalf("scanned %d records, checkpoint did not bound the scan", st.Scanned)
	}
	if st.Committed != 1 {
		t.Fatalf("committed = %d", st.Committed)
	}
}

// TestAbortThenCrashRecovery: a transaction aborts at runtime (logging
// compensation records), then the machine crashes before the restored
// pages are written back. Recovery must replay the abort — updates plus
// compensations — so the committed baseline survives and the aborted
// bytes do not.
func TestAbortThenCrashRecovery(t *testing.T) {
	dev := storage.NewMemDevice()
	logDev := storage.NewMemDevice()
	d, _ := storage.OpenDisk(dev)
	pool := buffer.New(d, 32, buffer.NewLRU())
	l, _ := wal.Open(logDev)
	fm, _ := storage.OpenFileManager(pool)
	h, _ := access.OpenHeap("t", fm, pool)
	h.SetLog(l)
	pool.SetBeforeEvict(l.BeforeEvict())
	m := NewManager(l, pool)
	fm.SetLogger(m.PageLogger())
	ex := undo.NewExecutor(pool, l)
	ex.SetSystemTxns(m.SystemHooksHeldLatches())
	m.SetUndoHandler(ex)

	tx0, _ := m.Begin()
	rid, err := h.Insert(tx0, []byte("baseline"))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(tx0); err != nil {
		t.Fatal(err)
	}

	tx1, _ := m.Begin()
	if _, err := h.Update(tx1, rid, []byte("doomed!!")); err != nil {
		t.Fatal(err)
	}
	if err := m.Abort(tx1); err != nil {
		t.Fatal(err)
	}
	// A later committed write on the same page, after the rollback.
	tx2, _ := m.Begin()
	if _, err := h.Insert(tx2, []byte("survivor")); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(tx2); err != nil {
		t.Fatal(err)
	}
	// Crash: nothing written back.

	d2, _ := storage.OpenDisk(dev)
	l2, _ := wal.Open(logDev)
	if _, err := wal.Recover(l2, d2); err != nil {
		t.Fatal(err)
	}
	pool2 := buffer.New(d2, 32, buffer.NewLRU())
	fm2, err := storage.OpenFileManager(pool2)
	if err != nil {
		t.Fatal(err)
	}
	h2, _ := access.OpenHeap("t", fm2, pool2)
	got, err := h2.Get(rid)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "baseline" {
		t.Fatalf("recovered record = %q, want the pre-abort baseline", got)
	}
	count, err := h2.Count()
	if err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("recovered count = %d, want baseline + survivor", count)
	}
}
