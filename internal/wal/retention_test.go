package wal

import (
	"testing"
)

// fillSegments appends padded records until the log spans at least n
// segments.
func fillSegments(t *testing.T, l *Log, n int) {
	t.Helper()
	payload := make([]byte, 512)
	for i := 0; l.SegmentCount() < n && i < 10_000; i++ {
		if _, err := l.Append(&Record{Txn: 1, Type: RecUpdate, PageID: 7, After: payload}); err != nil {
			t.Fatal(err)
		}
		if err := l.Flush(l.NextLSN()); err != nil {
			t.Fatal(err)
		}
	}
	if l.SegmentCount() < n {
		t.Fatalf("could not grow the log to %d segments", n)
	}
}

// TestRetentionHookHoldsTruncation: with a retention hook reporting a
// low shipped LSN, checkpoint truncation must keep every segment the
// consumer still needs — and release them once the consumer catches up.
func TestRetentionHookHoldsTruncation(t *testing.T) {
	l, err := OpenDir(NewMemSegmentDir(), minSegmentBytes)
	if err != nil {
		t.Fatal(err)
	}
	fillSegments(t, l, 4)
	oldest := l.OldestLSN()

	// A shipper stuck at the very beginning of the log.
	shipped := oldest
	l.SetRetention(func() LSN { return shipped })

	if _, err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := l.OldestLSN(); got != oldest {
		t.Fatalf("truncation removed retained history: oldest %d -> %d", oldest, got)
	}
	if l.RetentionHolds() == 0 {
		t.Fatal("expected the hold to be counted")
	}
	// Reading from the watermark still works — the whole point.
	seen := 0
	if err := l.Iterate(shipped, func(r *Record) error { seen++; return nil }); err != nil {
		t.Fatalf("iterate from retained watermark: %v", err)
	}
	if seen == 0 {
		t.Fatal("retained log yielded no records")
	}

	// The shipper catches up; the next checkpoint reclaims everything
	// below the (new) recovery-begin LSN.
	shipped = l.NextLSN()
	before := l.SegmentCount()
	if _, err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := l.SegmentCount(); got >= before {
		t.Fatalf("caught-up shipper still holds segments: %d -> %d", before, got)
	}
	if got := l.OldestLSN(); got == oldest {
		t.Fatal("truncation never advanced after catch-up")
	}

	// Clearing the hook restores pure recovery-begin truncation.
	l.SetRetention(nil)
	if _, err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
}

// TestRetentionNeverBlocksManifest: the manifest's recovery-begin LSN
// advances even while retention holds segment files, so recovery scans
// stay bounded regardless of slow replicas.
func TestRetentionNeverBlocksManifest(t *testing.T) {
	l, err := OpenDir(NewMemSegmentDir(), minSegmentBytes)
	if err != nil {
		t.Fatal(err)
	}
	fillSegments(t, l, 3)
	held := l.OldestLSN() // hook must not call back into the log
	l.SetRetention(func() LSN { return held })
	ckpt, err := l.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if rb := l.RecoveryBegin(); rb < ckpt {
		t.Fatalf("recovery-begin %d did not advance to the checkpoint %d", rb, ckpt)
	}
}
