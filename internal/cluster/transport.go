package cluster

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/netbind"
)

// Transport delivers one service invocation to one cluster node. The
// production transport is netbind (TCP + gob); tests wrap any transport
// in a FaultTransport to inject drops, delays, duplicates, partitions,
// and node kills deterministically.
type Transport interface {
	Invoke(ctx context.Context, node NodeID, service, op string, req any) (any, error)
}

// Transport errors.
var (
	// ErrUnknownNode is returned for a node the transport has no route to.
	ErrUnknownNode = errors.New("cluster: unknown node")
	// ErrNodeDown is returned for a killed node.
	ErrNodeDown = errors.New("cluster: node down (kill -9)")
	// ErrPartitioned is returned while a partition separates the caller
	// from the target node.
	ErrPartitioned = errors.New("cluster: partitioned from node")
	// ErrDropped is returned for a message eaten by injected loss.
	ErrDropped = errors.New("cluster: message dropped (injected)")
)

// IsUnavailable reports whether err is a transport-level reachability
// failure (dead node, partition, injected loss, missing route) — the
// class a router reacts to by refreshing its map and replanning, as the
// topology may have moved on (e.g. a failover replaced the leader).
func IsUnavailable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrNodeDown) || errors.Is(err, ErrPartitioned) ||
		errors.Is(err, ErrDropped) || errors.Is(err, ErrUnknownNode) {
		return true
	}
	// netbind flattens remote errors and surfaces dial failures typed;
	// match the failure text conservatively.
	msg := err.Error()
	return strings.Contains(msg, "connection refused") || strings.Contains(msg, "connect: ")
}

// LocalTransport dispatches in process: each node exposes a core
// registry and invocations go straight through it. The zero-overhead
// path for the deterministic harness and single-process benches.
type LocalTransport struct {
	mu   sync.RWMutex
	regs map[NodeID]*core.Registry
}

// NewLocalTransport creates an empty local transport.
func NewLocalTransport() *LocalTransport {
	return &LocalTransport{regs: make(map[NodeID]*core.Registry)}
}

// Register routes node to reg.
func (t *LocalTransport) Register(node NodeID, reg *core.Registry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.regs[node] = reg
}

// Invoke implements Transport.
func (t *LocalTransport) Invoke(ctx context.Context, node NodeID, service, op string, req any) (any, error) {
	t.mu.RLock()
	reg := t.regs[node]
	t.mu.RUnlock()
	if reg == nil {
		return nil, fmt.Errorf("%w: %s", ErrUnknownNode, node)
	}
	r, err := reg.Lookup(service)
	if err != nil {
		return nil, err
	}
	return r.Invoker.Invoke(ctx, op, req)
}

// NetTransport reaches each node's netbind server over TCP. Typed
// errors from the remote side arrive flattened to strings (wrapped in
// netbind.ErrRemote); the Is* helpers in this package match on message
// substrings for exactly that reason.
type NetTransport struct {
	mu      sync.RWMutex
	clients map[NodeID]*netbind.Client
}

// NewNetTransport creates an empty net transport.
func NewNetTransport() *NetTransport {
	return &NetTransport{clients: make(map[NodeID]*netbind.Client)}
}

// SetAddr routes node to a netbind server address.
func (t *NetTransport) SetAddr(node NodeID, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if old := t.clients[node]; old != nil {
		_ = old.Close()
	}
	t.clients[node] = netbind.NewClient(addr)
}

// Invoke implements Transport.
func (t *NetTransport) Invoke(ctx context.Context, node NodeID, service, op string, req any) (any, error) {
	t.mu.RLock()
	c := t.clients[node]
	t.mu.RUnlock()
	if c == nil {
		return nil, fmt.Errorf("%w: %s", ErrUnknownNode, node)
	}
	return c.Call(ctx, service, op, req)
}

// Close releases every client connection.
func (t *NetTransport) Close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, c := range t.clients {
		_ = c.Close()
	}
	t.clients = make(map[NodeID]*netbind.Client)
}

// FaultTransport wraps a Transport with deterministic fault injection.
// All faults are counter- or set-based (no randomness): tests arm
// exactly the fault they need and the schedule replays identically at
// any GOMAXPROCS.
type FaultTransport struct {
	inner Transport

	mu       sync.Mutex
	killed   map[NodeID]bool
	isolated map[NodeID]bool
	dropNext map[NodeID]int
	dupNext  map[NodeID]int
	delay    map[NodeID]time.Duration
	dropped  uint64
	dupes    uint64
}

// NewFaultTransport wraps inner with initially-clean fault state.
func NewFaultTransport(inner Transport) *FaultTransport {
	return &FaultTransport{
		inner:    inner,
		killed:   make(map[NodeID]bool),
		isolated: make(map[NodeID]bool),
		dropNext: make(map[NodeID]int),
		dupNext:  make(map[NodeID]int),
		delay:    make(map[NodeID]time.Duration),
	}
}

// Kill marks node dead: every invocation to it fails with ErrNodeDown
// until Revive. Pair it with crashing the node's FaultDevices for a
// full kill -9.
func (t *FaultTransport) Kill(node NodeID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.killed[node] = true
}

// Revive clears a kill (the node rejoins empty and re-bootstraps).
func (t *FaultTransport) Revive(node NodeID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.killed, node)
}

// Isolate partitions the listed nodes away: invocations to them fail
// with ErrPartitioned until Heal.
func (t *FaultTransport) Isolate(nodes ...NodeID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, n := range nodes {
		t.isolated[n] = true
	}
}

// Heal removes every partition.
func (t *FaultTransport) Heal() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.isolated = make(map[NodeID]bool)
}

// DropNext eats the next n invocations to node (each fails with
// ErrDropped; the request never reaches the node).
func (t *FaultTransport) DropNext(node NodeID, n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.dropNext[node] = n
}

// DuplicateNext delivers the next n invocations to node twice
// (redelivery; the caller sees the second result).
func (t *FaultTransport) DuplicateNext(node NodeID, n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.dupNext[node] = n
}

// SetDelay sleeps every invocation to node by d (0 clears).
func (t *FaultTransport) SetDelay(node NodeID, d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if d <= 0 {
		delete(t.delay, node)
		return
	}
	t.delay[node] = d
}

// Dropped returns how many invocations injected loss has eaten.
func (t *FaultTransport) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Duplicated returns how many invocations were delivered twice.
func (t *FaultTransport) Duplicated() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dupes
}

// Invoke implements Transport, applying armed faults in order: kill,
// partition, drop, delay, duplicate.
func (t *FaultTransport) Invoke(ctx context.Context, node NodeID, service, op string, req any) (any, error) {
	t.mu.Lock()
	switch {
	case t.killed[node]:
		t.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNodeDown, node)
	case t.isolated[node]:
		t.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrPartitioned, node)
	}
	if n := t.dropNext[node]; n > 0 {
		t.dropNext[node] = n - 1
		t.dropped++
		t.mu.Unlock()
		return nil, fmt.Errorf("%w: to %s", ErrDropped, node)
	}
	d := t.delay[node]
	dup := false
	if n := t.dupNext[node]; n > 0 {
		t.dupNext[node] = n - 1
		t.dupes++
		dup = true
	}
	t.mu.Unlock()

	if d > 0 {
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if dup {
		// First delivery: the receiver sees the request twice; the
		// caller only observes the second reply (redelivery semantics).
		_, _ = t.inner.Invoke(ctx, node, service, op, req)
	}
	return t.inner.Invoke(ctx, node, service, op, req)
}
