package sbdms_test

// The deterministic cluster fault harness: one sbdms database sharded
// over replicated nodes, driven through injected transport and device
// faults. Every fault is armed explicitly (counter- or set-based, no
// randomness), so each schedule replays the same way at any GOMAXPROCS.
//
// The invariants proven here:
//   - zero lost acknowledged writes: a write acked under async commit
//     survives leader kill -9 + failover (the record reached a
//     follower's WAL copy before the ack);
//   - atomic failover: an unacknowledged write is either fully
//     committed or absent after promotion — never torn (promotion runs
//     REAL crash recovery over the follower's replicated WAL);
//   - frontier visibility: a follower never serves a read above its
//     replicated frontier, and never a torn prefix of a batch;
//   - catch-up across truncation: a follower that lagged past leader
//     checkpoint truncation re-syncs through the typed
//     ErrSnapshotNeeded full-state bootstrap path;
//   - no split brain: a partitioned follower keeps rejecting writes
//     and serves only frontier-consistent snapshots until healed.

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	sbdms "repro"
	"repro/internal/cluster"
)

func clusterKeys(prefix string, n int) ([]string, [][]byte) {
	keys := make([]string, n)
	vals := make([][]byte, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%s-%04d", prefix, i)
		vals[i] = []byte(fmt.Sprintf("val-of-%s-%04d", prefix, i))
	}
	return keys, vals
}

// nudgeAndWait writes a throwaway key after the workload and waits for
// every listed follower to reach the workload's visibility frontier.
// The nudge commit's ship batch samples its frontier after the
// workload's commits completed, so the followers' frontiers provably
// pass the workload.
func nudgeAndWait(t *testing.T, c *cluster.Cluster, r *cluster.Router, tag string, shards ...int) {
	t.Helper()
	ctx := context.Background()
	m := c.Map()
	want := make(map[int]uint64)
	for _, s := range shards {
		want[s] = c.Node(m.Shards[s].Leader).DB().Txns().Oracle().VisibleTS()
	}
	if err := r.Put(ctx, "zz-nudge-"+tag, []byte("nudge")); err != nil {
		t.Fatalf("nudge put: %v", err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for _, s := range shards {
		for _, f := range m.Shards[s].Followers {
			n := c.Node(f)
			for {
				if rd := n.Reader(); rd != nil && rd.Frontier() >= want[s] {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("follower %s frontier stalled below %d", f, want[s])
				}
				time.Sleep(2 * time.Millisecond)
			}
		}
	}
}

func closeCluster(t *testing.T, c *cluster.Cluster) {
	t.Helper()
	//lint:ignore ctxflow test teardown
	if err := c.Close(context.Background()); err != nil {
		t.Errorf("cluster close: %v", err)
	}
}

// TestClusterReplicationBasic proves the plumbing end to end: sharded
// writes through the router, follower bootstrap via the snapshot path,
// and frontier-consistent snapshot reads on every replica.
func TestClusterReplicationBasic(t *testing.T) {
	c, err := cluster.New(cluster.Config{Shards: 2, Followers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer closeCluster(t, c)
	r := c.Router()
	ctx := context.Background()

	n := 60
	if testing.Short() {
		n = 24
	}
	keys, vals := clusterKeys("basic", n)
	for i := range keys {
		if err := r.Put(ctx, keys[i], vals[i]); err != nil {
			t.Fatalf("put %s: %v", keys[i], err)
		}
	}
	for i := range keys {
		got, err := r.Get(ctx, keys[i])
		if err != nil || string(got) != string(vals[i]) {
			t.Fatalf("get %s = %q, %v", keys[i], got, err)
		}
	}
	total, err := r.Len(ctx)
	if err != nil || total != uint64(n) {
		t.Fatalf("len = %d, %v (want %d)", total, err, n)
	}

	nudgeAndWait(t, c, r, "basic", 0, 1)

	// Followers came up empty, so each must have taken the full-state
	// bootstrap path at least once.
	m := c.Map()
	for _, sh := range m.Shards {
		for _, f := range sh.Followers {
			if c.Node(f).Bootstraps() == 0 {
				t.Fatalf("follower %s never bootstrapped", f)
			}
		}
	}

	// Snapshot reads (router prefers followers) see every workload key.
	for i := range keys {
		got, err := r.GetSnapshot(ctx, keys[i])
		if err != nil || string(got) != string(vals[i]) {
			t.Fatalf("snapshot get %s = %q, %v", keys[i], got, err)
		}
	}
	scan, err := r.ScanKeysSnapshot(ctx, "", n+10)
	if err != nil {
		t.Fatalf("snapshot scan: %v", err)
	}
	// All workload keys are at or below the awaited frontier; the nudge
	// key itself may still be above it.
	workload := 0
	for _, k := range scan {
		if len(k) > 5 && k[:5] == "basic" {
			workload++
		}
	}
	if workload != n {
		t.Fatalf("snapshot scan found %d workload keys, want %d", workload, n)
	}
}

// TestClusterAsyncCommitLeaderKill is the headline schedule: async
// commit acks writes once a follower holds the WAL record — before any
// local fsync — then the leader dies mid-stream (kill -9: transport
// dark, device failing every access, nothing flushed). Failover
// promotes the follower through real crash recovery. Every acked write
// must survive; a write the dead leader never shipped must be absent.
func TestClusterAsyncCommitLeaderKill(t *testing.T) {
	c, err := cluster.New(cluster.Config{
		Shards: 1, Followers: 1,
		AsyncCommit: true, AckTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closeCluster(t, c)
	r := c.Router()
	ctx := context.Background()
	leader := cluster.LeaderID(0)

	// Warm-up: the first write triggers the follower's initial
	// bootstrap, whose exclusive write gate interrupts concurrent
	// ack-waits (they fall back to a local fsync). Get that out of the
	// way, then baseline the fallback counter: the measured workload
	// must be acked purely by replication.
	if err := r.Put(ctx, "warmup", []byte("w")); err != nil {
		t.Fatal(err)
	}
	nudgeAndWait(t, c, r, "warmup", 0)
	fbBase := c.Node(leader).AckFallbacks()

	n := 30
	if testing.Short() {
		n = 12
	}
	keys, vals := clusterKeys("acked", n)
	for i := range keys {
		if err := r.Put(ctx, keys[i], vals[i]); err != nil {
			t.Fatalf("acked put %s: %v", keys[i], err)
		}
	}
	// Every ack above must have come from the follower, not from the
	// local-fsync degraded path — otherwise survival proves nothing.
	if fb := c.Node(leader).AckFallbacks(); fb != fbBase {
		t.Fatalf("%d async commits fell back to local fsync; schedule not testing replication", fb-fbBase)
	}
	// The leader's own WAL was never fsynced for these commits: the
	// only durable copy is the follower's.
	nudgeAndWait(t, c, r, "acked", 0)

	// kill -9 the leader, then attempt one more write: the follower ack
	// can't arrive (ship loop stopped) and the local fallback hits the
	// crashed device, so the put must fail — and must stay failed
	// (absent) after failover, because its records never left the node.
	c.Kill(leader)
	putCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	err = r.Put(putCtx, "lost-key", []byte("never-acked"))
	cancel()
	if err == nil {
		t.Fatal("put on killed leader reported success")
	}

	recovery, err := c.Failover(0)
	if err != nil {
		t.Fatalf("failover: %v", err)
	}
	t.Logf("failover recovery took %v", recovery)

	// Zero lost acknowledged writes.
	for i := range keys {
		got, err := r.Get(ctx, keys[i])
		if err != nil || string(got) != string(vals[i]) {
			t.Fatalf("acked write lost after failover: %s = %q, %v", keys[i], got, err)
		}
	}
	// The unacknowledged write is absent everywhere.
	if _, err := r.Get(ctx, "lost-key"); !errors.Is(err, sbdms.ErrKeyNotFound) {
		t.Fatalf("unacked key after failover: err = %v, want ErrKeyNotFound", err)
	}
	// The promoted engine is a real leader: writes work again.
	if err := r.Put(ctx, "post-failover", []byte("alive")); err != nil {
		t.Fatalf("post-failover put: %v", err)
	}
	got, err := r.Get(ctx, "post-failover")
	if err != nil || string(got) != "alive" {
		t.Fatalf("post-failover get = %q, %v", got, err)
	}
	total, err := r.Len(ctx)
	if err != nil {
		t.Fatalf("len after failover: %v", err)
	}
	want := uint64(n + 4) // workload + warmup + 2 nudges + post-failover
	if total != want {
		t.Fatalf("len after failover = %d, want %d", total, want)
	}
}

// TestClusterFollowerCatchUpAcrossTruncation isolates the follower,
// runs the leader far ahead — across checkpoints that truncate the WAL
// segments the follower would have needed — then heals. The follower
// must detect the gap, take the typed full-state bootstrap, and catch
// all the way up.
func TestClusterFollowerCatchUpAcrossTruncation(t *testing.T) {
	c, err := cluster.New(cluster.Config{
		Shards: 1, Followers: 1,
		WALSegmentBytes: 32 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closeCluster(t, c)
	r := c.Router()
	ctx := context.Background()
	leader, follower := cluster.LeaderID(0), cluster.FollowerID(0, 0)

	aKeys, aVals := clusterKeys("phase-a", 20)
	for i := range aKeys {
		if err := r.Put(ctx, aKeys[i], aVals[i]); err != nil {
			t.Fatal(err)
		}
	}
	nudgeAndWait(t, c, r, "phase-a", 0)
	baseBoots := c.Node(follower).Bootstraps()

	// Partition the follower away and run the leader far ahead.
	c.Faults().Isolate(follower)
	bn := 300
	if testing.Short() {
		bn = 80
	}
	bKeys, bVals := clusterKeys("phase-b", bn)
	for i := range bKeys {
		if err := r.Put(ctx, bKeys[i], bVals[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Checkpoints truncate segments the isolated follower never saw
	// (the ship queue drained — deliveries failed — so retention does
	// not pin them).
	db := c.Node(leader).DB()
	if _, err := db.CheckpointSync(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if _, err := db.CheckpointSync(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}

	// Heal; the next shipped batch gaps, forcing a fresh bootstrap.
	c.Faults().Heal()
	nudgeAndWait(t, c, r, "heal", 0)
	if boots := c.Node(follower).Bootstraps(); boots <= baseBoots {
		t.Fatalf("follower healed without re-bootstrap (boots %d -> %d)", baseBoots, boots)
	}

	// Caught up: the follower serves phase A and phase B at its
	// frontier.
	rd := c.Node(follower).Reader()
	for i := range aKeys {
		got, err := rd.GetSnapshot(ctx, aKeys[i])
		if err != nil || string(got) != string(aVals[i]) {
			t.Fatalf("follower missing %s after catch-up: %q, %v", aKeys[i], got, err)
		}
	}
	for i := range bKeys {
		got, err := rd.GetSnapshot(ctx, bKeys[i])
		if err != nil || string(got) != string(bVals[i]) {
			t.Fatalf("follower missing %s after catch-up: %q, %v", bKeys[i], got, err)
		}
	}
}

// TestClusterPartitionHealNoSplitBrain partitions a follower, updates
// the leader, and checks both sides of the split: the follower keeps
// rejecting writes (typed ErrNotLeader — no second leader), its
// snapshot reads stay pinned at the pre-partition frontier (stale but
// consistent, never above the applied LSN), and after the heal it
// converges to the leader's state.
func TestClusterPartitionHealNoSplitBrain(t *testing.T) {
	c, err := cluster.New(cluster.Config{Shards: 2, Followers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer closeCluster(t, c)
	r := c.Router()
	ctx := context.Background()
	// Partition the follower of whichever shard owns the pivot key —
	// the hash decides, the test follows.
	sid := c.Map().ShardFor("pivot")
	follower := cluster.FollowerID(sid, 0)

	if err := r.Put(ctx, "pivot", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	base, baseVals := clusterKeys("pre", 20)
	for i := range base {
		if err := r.Put(ctx, base[i], baseVals[i]); err != nil {
			t.Fatal(err)
		}
	}
	nudgeAndWait(t, c, r, "pre", 0, 1)

	fn := c.Node(follower)

	// Split: the follower is unreachable from leader and router. The
	// frontier baseline is sampled after the split so a last heartbeat
	// cannot slip in between.
	c.Faults().Isolate(follower)
	frontierBefore := fn.Reader().Frontier()
	if err := r.Put(ctx, "pivot", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	during, duringVals := clusterKeys("during", 10)
	for i := range during {
		if err := r.Put(ctx, during[i], duringVals[i]); err != nil {
			t.Fatal(err)
		}
	}
	// The follower only ever replicates its own shard's keys; assert
	// convergence on those.
	var mine []int
	for i := range during {
		if c.Map().ShardFor(during[i]) == sid {
			mine = append(mine, i)
		}
	}
	if len(mine) == 0 {
		t.Fatal("no mid-partition key landed on the pivot shard")
	}

	// (a) A client on the follower's side of the partition cannot make
	// it accept writes: typed wrong-role rejection, no split brain.
	reg, err := fn.Registry().Lookup(cluster.KVServiceName)
	if err != nil {
		t.Fatal(err)
	}
	_, err = reg.Invoker.Invoke(ctx, "put", cluster.PutReq{Epoch: c.Map().Epoch, Key: "rogue", Val: []byte("x")})
	if !cluster.IsNotLeader(err) {
		t.Fatalf("partitioned follower accepted a write: err = %v", err)
	}

	// (b) Its snapshot reads stay at the stale-but-consistent frontier:
	// the old pivot value, and no key from inside the partition window.
	if got, err := fn.Reader().GetSnapshot(ctx, "pivot"); err != nil || string(got) != "v1" {
		t.Fatalf("partitioned follower pivot = %q, %v (want v1)", got, err)
	}
	if _, err := fn.Reader().GetSnapshot(ctx, during[mine[0]]); !errors.Is(err, sbdms.ErrKeyNotFound) {
		t.Fatalf("partitioned follower sees mid-partition key: %v", err)
	}
	if f := fn.Reader().Frontier(); f != frontierBefore {
		t.Fatalf("partitioned follower frontier moved: %d -> %d", frontierBefore, f)
	}

	// (c) The router, unable to reach the follower, falls back to the
	// leader and serves fresh snapshots — stale replicas are bypassed,
	// not trusted.
	if got, err := r.GetSnapshot(ctx, "pivot"); err != nil || string(got) != "v2" {
		t.Fatalf("router snapshot during partition = %q, %v (want v2)", got, err)
	}

	// Heal and converge.
	c.Faults().Heal()
	nudgeAndWait(t, c, r, "heal", 0, 1)
	if got, err := fn.Reader().GetSnapshot(ctx, "pivot"); err != nil || string(got) != "v2" {
		t.Fatalf("healed follower pivot = %q, %v (want v2)", got, err)
	}
	for _, i := range mine {
		got, err := fn.Reader().GetSnapshot(ctx, during[i])
		if err != nil || string(got) != string(duringVals[i]) {
			t.Fatalf("healed follower missing %s: %q, %v", during[i], got, err)
		}
	}
}

// TestClusterDuplicateAndDroppedShipments arms message-level faults on
// the replication stream: dropped deliveries must self-heal through the
// gap/bootstrap path, duplicated deliveries must be idempotent (WAL
// dedup + pageLSN-guarded redo), and the replicated state must end
// byte-for-byte right either way.
func TestClusterDuplicateAndDroppedShipments(t *testing.T) {
	c, err := cluster.New(cluster.Config{Shards: 1, Followers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer closeCluster(t, c)
	r := c.Router()
	ctx := context.Background()
	follower := cluster.FollowerID(0, 0)

	seed, seedVals := clusterKeys("seed", 10)
	for i := range seed {
		if err := r.Put(ctx, seed[i], seedVals[i]); err != nil {
			t.Fatal(err)
		}
	}
	nudgeAndWait(t, c, r, "seed", 0)

	// Drop the next few deliveries to the follower, keep writing.
	c.Faults().DropNext(follower, 3)
	dropped, droppedVals := clusterKeys("dropped", 15)
	for i := range dropped {
		if err := r.Put(ctx, dropped[i], droppedVals[i]); err != nil {
			t.Fatal(err)
		}
	}
	nudgeAndWait(t, c, r, "post-drop", 0)

	// Duplicate the next deliveries: every record arrives twice.
	c.Faults().DuplicateNext(follower, 5)
	duped, dupedVals := clusterKeys("duped", 15)
	for i := range duped {
		if err := r.Put(ctx, duped[i], dupedVals[i]); err != nil {
			t.Fatal(err)
		}
	}
	nudgeAndWait(t, c, r, "post-dup", 0)

	if c.Faults().Dropped() == 0 {
		t.Fatal("drop fault never fired")
	}
	if c.Faults().Duplicated() == 0 {
		t.Fatal("duplicate fault never fired")
	}

	rd := c.Node(follower).Reader()
	for _, set := range []struct {
		keys []string
		vals [][]byte
	}{{seed, seedVals}, {dropped, droppedVals}, {duped, dupedVals}} {
		for i := range set.keys {
			got, err := rd.GetSnapshot(ctx, set.keys[i])
			if err != nil || string(got) != string(set.vals[i]) {
				t.Fatalf("follower %s = %q, %v", set.keys[i], got, err)
			}
		}
	}
}

// TestClusterNetbind runs the basic replication schedule over real TCP
// (netbind transport) instead of in-process dispatch: same services,
// same wire types, gob-flattened errors still matched by the typed
// helpers.
func TestClusterNetbind(t *testing.T) {
	if testing.Short() {
		t.Skip("netbind cluster exercised in full mode")
	}
	c, err := cluster.New(cluster.Config{Shards: 2, Followers: 1, UseNetbind: true})
	if err != nil {
		t.Fatal(err)
	}
	defer closeCluster(t, c)
	r := c.Router()
	ctx := context.Background()

	keys, vals := clusterKeys("net", 30)
	if err := r.PutBatch(ctx, keys, vals); err != nil {
		t.Fatalf("putBatch over netbind: %v", err)
	}
	for i := range keys {
		got, err := r.Get(ctx, keys[i])
		if err != nil || string(got) != string(vals[i]) {
			t.Fatalf("get %s over netbind = %q, %v", keys[i], got, err)
		}
	}
	nudgeAndWait(t, c, r, "net", 0, 1)
	scan, err := r.ScanKeysSnapshot(ctx, "", 100)
	if err != nil {
		t.Fatalf("snapshot scan over netbind: %v", err)
	}
	if len(scan) != len(keys)+1 {
		t.Fatalf("snapshot scan over netbind found %d keys, want %d", len(scan), len(keys)+1)
	}
}
