package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// Kernel errors.
var (
	// ErrAlreadyDeployed is returned when deploying a component whose
	// name is already live.
	ErrAlreadyDeployed = errors.New("core: component already deployed")
)

// Kernel hosts a running SBDMS architecture: it owns the registry,
// repository, resource manager, event bus, workflow set and coordinator,
// and drives the two phases of Section 3.3 — the setup phase (process
// composition and service configuration) and the operational phase
// (monitoring and reconfiguration).
type Kernel struct {
	bus       *EventBus
	registry  *Registry
	repo      *Repository
	resources *ResourceManager
	workflows *WorkflowSet
	coord     *Coordinator
	arch      *Properties

	mu       sync.Mutex
	deployed []*Component // in start order, for reverse-order stop
	byName   map[string]*Component
	started  bool
}

// KernelOption customises kernel construction.
type KernelOption func(*kernelOptions)

type kernelOptions struct {
	coordCfg  CoordinatorConfig
	histN     int
	coordName string
}

// WithCoordinatorConfig overrides the coordinator configuration.
func WithCoordinatorConfig(cfg CoordinatorConfig) KernelOption {
	return func(o *kernelOptions) { o.coordCfg = cfg }
}

// WithEventHistory sets how many events the bus retains.
func WithEventHistory(n int) KernelOption {
	return func(o *kernelOptions) { o.histN = n }
}

// WithCoordinatorName names the kernel coordinator service.
func WithCoordinatorName(name string) KernelOption {
	return func(o *kernelOptions) { o.coordName = name }
}

// NewKernel assembles a kernel with its coordinator registered in the
// registry (the coordinator is a service like any other).
func NewKernel(opts ...KernelOption) *Kernel {
	o := kernelOptions{coordCfg: DefaultCoordinatorConfig(), histN: 1024, coordName: "coordinator"}
	for _, f := range opts {
		f(&o)
	}
	bus := NewEventBus(o.histN)
	reg := NewRegistry(bus)
	repo := NewRepository()
	rm := NewResourceManager(bus)
	k := &Kernel{
		bus:       bus,
		registry:  reg,
		repo:      repo,
		resources: rm,
		workflows: NewWorkflowSet(),
		arch:      NewProperties(),
		byName:    make(map[string]*Component),
	}
	k.coord = NewCoordinator(o.coordName, o.coordCfg, reg, repo, rm, bus)
	return k
}

// Registry returns the kernel's service registry.
func (k *Kernel) Registry() *Registry { return k.registry }

// Repository returns the kernel's service repository.
func (k *Kernel) Repository() *Repository { return k.repo }

// Resources returns the kernel's resource manager.
func (k *Kernel) Resources() *ResourceManager { return k.resources }

// Bus returns the kernel's event bus.
func (k *Kernel) Bus() *EventBus { return k.bus }

// Workflows returns the kernel's workflow set.
func (k *Kernel) Workflows() *WorkflowSet { return k.workflows }

// Coordinator returns the kernel coordinator service.
func (k *Kernel) Coordinator() *Coordinator { return k.coord }

// Arch returns the architecture properties (Section 3.6), settable by
// users and monitoring services.
func (k *Kernel) Arch() *Properties { return k.arch }

// Deploy runs the setup phase for a composite: components are
// instantiated depth-first in declaration order, their contracts are
// stored in the repository, instances started, registered, and their
// references placed under coordinator management.
func (k *Kernel) Deploy(ctx context.Context, comp *Composite) error {
	return comp.Walk(func(path string, c *Component) error {
		if err := k.deployComponent(ctx, c, comp.Properties); err != nil {
			return fmt.Errorf("core: deploying %s: %w", path, err)
		}
		return nil
	})
}

// DeployComponent deploys a single component at runtime — flexibility
// by extension (Figure 5): "the user creates the required component and
// then publishes the desired interfaces as services in the
// architecture". The running system is not restarted.
func (k *Kernel) DeployComponent(ctx context.Context, c *Component) error {
	return k.deployComponent(ctx, c, nil)
}

func (k *Kernel) deployComponent(ctx context.Context, c *Component, compositeProps map[string]string) error {
	k.mu.Lock()
	if _, dup := k.byName[c.Name]; dup {
		k.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrAlreadyDeployed, c.Name)
	}
	k.mu.Unlock()

	arch := k.arch.Clone()
	for kk, v := range compositeProps {
		if _, set := c.Properties[kk]; !set {
			arch.Set(kk, v)
		}
	}
	svc, err := c.instantiate(k.registry, arch)
	if err != nil {
		return err
	}
	// Policy preconditions gate deployment against architecture state.
	if violated, ok := k.checkPolicy(svc.Contract()); !ok {
		return fmt.Errorf("core: component %s policy precondition violated: %s %s %s",
			c.Name, violated.Property, violated.Op, violated.Value)
	}
	if err := k.repo.PutContract(svc.Contract()); err != nil {
		return fmt.Errorf("core: storing contract for %s: %w", c.Name, err)
	}
	if err := svc.Start(ctx); err != nil {
		return err
	}
	if err := k.registry.RegisterService(svc, c.Tags); err != nil {
		_ = svc.Stop(ctx)
		return err
	}
	for _, ref := range c.refs {
		k.coord.Manage(ref)
	}
	k.mu.Lock()
	k.deployed = append(k.deployed, c)
	k.byName[c.Name] = c
	k.mu.Unlock()
	k.resources.SetServiceState(svc.Name(), StateRunning)
	k.bus.Publish(Event{Type: EventComponentDeployed, Subject: c.Name})
	return nil
}

func (k *Kernel) checkPolicy(c *Contract) (Assertion, bool) {
	if c == nil {
		return Assertion{}, true
	}
	return k.arch.CheckPreconditions(c.Policy)
}

// Undeploy stops and deregisters a deployed component's service. When
// the service's policy marks it disableable, this is how small-footprint
// profiles shed functionality (Section 4).
func (k *Kernel) Undeploy(ctx context.Context, name string) error {
	k.mu.Lock()
	c, ok := k.byName[name]
	if ok {
		delete(k.byName, name)
		for i, d := range k.deployed {
			if d == c {
				k.deployed = append(k.deployed[:i], k.deployed[i+1:]...)
				break
			}
		}
	}
	k.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: component %s", ErrNotFound, name)
	}
	svc := c.Instance()
	if svc != nil {
		_ = k.registry.Deregister(svc.Name())
		if err := svc.Stop(ctx); err != nil {
			return err
		}
		k.resources.SetServiceState(svc.Name(), StateStopped)
	}
	k.bus.Publish(Event{Type: EventComponentUndeployed, Subject: name})
	return nil
}

// Start enters the operational phase: the coordinator is registered and
// started, beginning monitoring and reconfiguration.
func (k *Kernel) Start(ctx context.Context) error {
	k.mu.Lock()
	if k.started {
		k.mu.Unlock()
		return nil
	}
	k.started = true
	k.mu.Unlock()
	if err := k.coord.Start(ctx); err != nil {
		return err
	}
	if _, err := k.registry.Lookup(k.coord.Name()); err != nil {
		if err := k.registry.RegisterService(k.coord, nil); err != nil {
			return err
		}
	}
	return nil
}

// Stop leaves the operational phase and stops all deployed services in
// reverse deployment order.
func (k *Kernel) Stop(ctx context.Context) error {
	k.mu.Lock()
	deployed := append([]*Component(nil), k.deployed...)
	k.started = false
	k.mu.Unlock()
	var firstErr error
	if err := k.coord.Stop(ctx); err != nil {
		firstErr = err
	}
	for i := len(deployed) - 1; i >= 0; i-- {
		svc := deployed[i].Instance()
		if svc == nil {
			continue
		}
		if err := svc.Stop(ctx); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Deployed returns the names of deployed components in start order.
func (k *Kernel) Deployed() []string {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]string, len(k.deployed))
	for i, c := range k.deployed {
		out[i] = c.Name
	}
	return out
}

// Component returns a deployed component by name.
func (k *Kernel) Component(name string) (*Component, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	c, ok := k.byName[name]
	return c, ok
}

// Ref creates a late-bound reference resolved through the kernel
// registry and places it under coordinator management.
func (k *Kernel) Ref(iface string, sel Selector) *Ref {
	r := NewRef(k.registry, iface, sel)
	k.coord.Manage(r)
	return r
}
