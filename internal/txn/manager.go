package txn

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/storage"
	"repro/internal/wal"
)

// Transaction errors.
var (
	// ErrTxnDone is returned for operations on a finished transaction.
	ErrTxnDone = errors.New("txn: transaction already finished")
	// ErrNoWAL is returned by Checkpoint without an attached log.
	ErrNoWAL = errors.New("txn: no WAL attached")
)

// Status is the lifecycle state of a transaction.
type Status int

// Transaction states.
const (
	StatusActive Status = iota
	StatusCommitted
	StatusAborted
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusActive:
		return "active"
	case StatusCommitted:
		return "committed"
	case StatusAborted:
		return "aborted"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Txn is one transaction. It implements access.TxnContext so heap files
// log their mutations under it, and collects those records for undo.
type Txn struct {
	id  uint64
	mgr *Manager

	mu        sync.Mutex
	status    Status
	firstLSN  wal.LSN // begin record (fuzzy checkpoints' ATT entry)
	lastLSN   wal.LSN
	undo      []*wal.Record
	committed []func()
}

// ID implements access.TxnContext.
func (t *Txn) ID() uint64 { return t.id }

// LastLSN implements access.TxnContext.
func (t *Txn) LastLSN() wal.LSN {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lastLSN
}

// Record implements access.TxnContext: it registers an appended update
// record for undo and LSN chaining.
func (t *Txn) Record(rec *wal.Record) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.lastLSN = rec.LSN
	t.undo = append(t.undo, rec)
}

// OnCommitted registers a callback run after the transaction's commit
// record is durable (and never on abort). The engine uses it to defer
// page deallocation until the commit that unlinked the page can no
// longer be rolled back — freeing earlier would let the allocator hand
// the page out while a crash could still resurrect the old reference.
func (t *Txn) OnCommitted(f func()) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.committed = append(t.committed, f)
}

func (t *Txn) takeCommitted() []func() {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := t.committed
	t.committed = nil
	return out
}

// Status returns the transaction state.
func (t *Txn) Status() Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.status
}

// Updates returns how many update records the transaction logged.
func (t *Txn) Updates() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.undo)
}

// Lock acquires a lock on behalf of the transaction (2PL growth phase).
func (t *Txn) Lock(ctx context.Context, resource string, mode LockMode) error {
	if t.Status() != StatusActive {
		return ErrTxnDone
	}
	return t.mgr.locks.Acquire(ctx, t.id, resource, mode)
}

// Manager creates and finishes transactions. With a WAL attached,
// begin/commit/abort are logged and commit forces the log; without one,
// transactions still provide locking and in-memory undo.
type Manager struct {
	log   *wal.Log          // may be nil
	store storage.PageStore // for undo application; may be nil without log
	locks *LockManager
	next  atomic.Uint64

	mu     sync.Mutex
	active map[uint64]*Txn

	// ckptMu serialises fuzzy checkpoints: two interleaved checkpoints
	// could otherwise complete out of order and persist a manifest
	// whose recovery-begin LSN points into segments the other already
	// truncated.
	ckptMu sync.Mutex
}

// NewManager creates a transaction manager. log and store may be nil
// for lock-only operation.
func NewManager(log *wal.Log, store storage.PageStore) *Manager {
	return &Manager{
		log:   log,
		store: store,
		locks: NewLockManager(),
		active: make(map[uint64]*Txn),
	}
}

// Locks exposes the lock manager.
func (m *Manager) Locks() *LockManager { return m.locks }

// Begin starts a transaction, logging RecBegin when a WAL is attached.
func (m *Manager) Begin() (*Txn, error) {
	id := m.next.Add(1)
	t := &Txn{id: id, mgr: m}
	if m.log != nil {
		lsn, err := m.log.Append(&wal.Record{Txn: id, Type: wal.RecBegin})
		if err != nil {
			return nil, err
		}
		t.firstLSN = lsn
		t.lastLSN = lsn
	}
	m.mu.Lock()
	m.active[id] = t
	m.mu.Unlock()
	return t, nil
}

// Commit finishes the transaction: RecCommit is logged and the log
// flushed (durability), then all locks are released.
func (m *Manager) Commit(t *Txn) error { return m.commit(t, true) }

// CommitLazy finishes the transaction without forcing the log: the
// commit record becomes durable with the next forced flush. System
// transactions (file-directory maintenance) use it — WAL ordering
// guarantees their records are durable before any dependent user
// commit is acknowledged.
func (m *Manager) CommitLazy(t *Txn) error { return m.commit(t, false) }

func (m *Manager) commit(t *Txn, flush bool) error {
	lsn, err := m.CommitAppend(t)
	if err != nil {
		return err
	}
	// On-commit hooks require durability even on the lazy path.
	if !flush && len(t.takeCommittedPeek()) == 0 {
		m.finish(t)
		return nil
	}
	return m.FinishCommit(t, lsn)
}

// takeCommittedPeek reports pending on-commit hooks without consuming
// them (helper for the lazy-commit fast path).
func (t *Txn) takeCommittedPeek() []func() {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.committed
}

// CommitAppend moves the transaction to committed and appends its
// commit record WITHOUT forcing the log or deregistering it: the
// transaction keeps counting as in flight (so the commit_siblings gate
// sees concurrent committers) until FinishCommit forces durability and
// releases it. Callers that commit while holding an engine lock use
// the pair to keep commit ordering under the lock but pay the log
// force outside it.
func (m *Manager) CommitAppend(t *Txn) (wal.LSN, error) {
	t.mu.Lock()
	if t.status != StatusActive {
		t.mu.Unlock()
		return wal.ZeroLSN, ErrTxnDone
	}
	t.status = StatusCommitted
	prev := t.lastLSN
	t.mu.Unlock()
	if m.log == nil {
		return wal.ZeroLSN, nil
	}
	return m.log.Append(&wal.Record{Txn: t.id, Type: wal.RecCommit, PrevLSN: prev})
}

// FinishCommit forces the log through the commit record appended by
// CommitAppend, deregisters the transaction, and runs its on-commit
// hooks (which may now safely free pages the commit unlinked). On a
// flush failure the transaction stays registered with its locks held —
// its durability is in doubt, so the engine must treat itself as
// failed (the KV core poisons itself) rather than proceed.
func (m *Manager) FinishCommit(t *Txn, lsn wal.LSN) error {
	if m.log != nil {
		if err := m.log.Flush(lsn + 1); err != nil {
			return err
		}
	}
	m.finish(t)
	for _, f := range t.takeCommitted() {
		f()
	}
	return nil
}

// Abort rolls the transaction back: before images are applied in
// reverse order, each restoration is logged as a compensation record
// (a redo-only update whose after image is the restored bytes), then
// RecAbort is logged and locks released. Because RecAbort is appended
// only after every compensation record, recovery can treat an aborted
// transaction like a committed no-op — replaying its updates and
// compensations in log order — instead of re-applying stale before
// images over pages later transactions may have rewritten.
func (m *Manager) Abort(t *Txn) error {
	t.mu.Lock()
	if t.status != StatusActive {
		t.mu.Unlock()
		return ErrTxnDone
	}
	t.status = StatusAborted
	undo := append([]*wal.Record(nil), t.undo...)
	prev := t.lastLSN
	t.mu.Unlock()

	// An error anywhere below returns without finish(): the transaction
	// stays registered and its locks stay held, deliberately. A failed
	// rollback leaves pages in doubt, so releasing its locks (or letting
	// Checkpoint believe the system is quiescent) would expose
	// half-rolled-back state; callers must treat the engine as failed
	// (the KV core poisons itself) or restart, at which point recovery
	// undoes the still-in-flight transaction from the log.
	if m.store != nil || m.log != nil {
		buf := make([]byte, storage.PageSize)
		restored := make([]byte, storage.PageSize)
		for i := len(undo) - 1; i >= 0; i-- {
			rec := undo[i]
			if m.store == nil {
				// Log-only mode: a plain redo-only compensation record.
				clr := &wal.Record{
					Txn:     t.id,
					Type:    wal.RecUpdate,
					PageID:  rec.PageID,
					Offset:  rec.Offset,
					After:   append([]byte(nil), rec.Before...),
					PrevLSN: prev,
				}
				lsn, err := m.log.Append(clr)
				if err != nil {
					return err
				}
				prev = lsn
				continue
			}
			if err := m.store.ReadPage(rec.PageID, buf); err != nil {
				return fmt.Errorf("txn: undo read page %d: %w", rec.PageID, err)
			}
			copy(restored, buf)
			p := storage.WrapPage(rec.PageID, restored)
			copy(p.Data[rec.Offset:int(rec.Offset)+len(rec.Before)], rec.Before)
			p.SetLSN(uint64(rec.LSN))
			if m.log != nil {
				// The compensation goes through the same fence-checked
				// append as forward mutations, so a rollback touching a
				// page for the first time after a checkpoint still logs
				// the full image torn-page rebuild depends on.
				clr, err := m.log.AppendPageUpdate(t.id, prev, rec.PageID, buf, restored)
				if err != nil {
					return err
				}
				if clr != nil {
					prev = clr.LSN
					p.SetLSN(uint64(clr.LSN))
				}
			}
			if err := m.store.WritePage(rec.PageID, p.Data); err != nil {
				return fmt.Errorf("txn: undo write page %d: %w", rec.PageID, err)
			}
		}
	}
	if m.log != nil {
		if _, err := m.log.Append(&wal.Record{Txn: t.id, Type: wal.RecAbort, PrevLSN: prev}); err != nil {
			return err
		}
	}
	m.finish(t)
	return nil
}

func (m *Manager) finish(t *Txn) {
	m.locks.ReleaseAll(t.id)
	m.mu.Lock()
	delete(m.active, t.id)
	m.mu.Unlock()
}

// dirtyTracker is the buffer-pool surface a fuzzy checkpoint needs:
// the dirty-page table with per-page recLSNs, and a targeted flush of
// exactly that snapshot. buffer.Manager implements it; a bare disk
// manager does not, and the checkpoint falls back to a full sync.
type dirtyTracker interface {
	DirtyPages() []storage.DirtyPageInfo
	FlushPages([]storage.PageID) error
}

// Checkpoint takes an ARIES-style fuzzy checkpoint — writers are never
// quiesced and in-flight transactions are fine:
//
//  1. The full-page-write fence advances to the current log tail (B).
//     From here on, the first mutation of any page whose image predates
//     B logs a full page image.
//  2. The active-transaction table is snapshotted, then the dirty-page
//     table (in that order: a transaction missing from the ATT has
//     finished, so its dirty pages are already visible to the DPT
//     gather or safely on disk). A record that is appended but whose
//     page is not yet marked dirty (the writer is between
//     AppendPageUpdate and Unpin) is covered by the ATT leg of the
//     minimum: its transaction cannot finish before the unpin, so it
//     is still registered and its first LSN bounds the record.
//  3. A checkpoint record carrying both tables is appended and forced.
//  4. The DPT snapshot's pages are flushed and the store synced —
//     concurrent traffic keeps running; pages dirtied after the
//     snapshot are the NEXT checkpoint's problem, their records lie at
//     or above B.
//  5. The recovery-begin LSN — min(B, ATT first LSNs) — and the
//     checkpoint LSN are persisted in the log manifest, and every
//     segment wholly below the recovery-begin LSN is deleted. The
//     classic ARIES formula also takes the minimum over the DPT
//     recLSNs, but step 4 flushed exactly that snapshot, so every
//     record the DPT leg would retain is provably durable on its page:
//     the term is vacuous here and dropping it lets truncation advance
//     a full checkpoint round further.
//
// Every record a future recovery could need (redo for pages not yet
// durable, undo for transactions then in flight) has an LSN at or above
// the recovery-begin LSN: a page dirtied by a pre-fence record that is
// not in the flushed DPT snapshot must have been unpinned after the DPT
// gather, so its transaction was still registered at the earlier ATT
// gather and its first LSN holds the bound. The scan is bounded and the
// truncated history is provably dead.
func (m *Manager) Checkpoint() (wal.LSN, error) {
	if m.log == nil {
		return wal.ZeroLSN, ErrNoWAL
	}
	m.ckptMu.Lock()
	defer m.ckptMu.Unlock()
	fence := m.log.BeginCheckpoint()

	m.mu.Lock()
	att := make([]wal.CkptTxn, 0, len(m.active))
	for id, t := range m.active {
		t.mu.Lock()
		att = append(att, wal.CkptTxn{ID: id, First: t.firstLSN, Last: t.lastLSN})
		t.mu.Unlock()
	}
	m.mu.Unlock()

	var dpt []wal.CkptPage
	tracker, _ := m.store.(dirtyTracker)
	if tracker != nil {
		for _, d := range tracker.DirtyPages() {
			dpt = append(dpt, wal.CkptPage{Page: d.ID, RecLSN: wal.LSN(d.RecLSN)})
		}
	}

	lsn, err := m.log.Append(&wal.Record{
		Type:  wal.RecCheckpoint,
		After: wal.EncodeCheckpoint(wal.CheckpointData{Fence: fence, ATT: att, DPT: dpt}),
	})
	if err != nil {
		return wal.ZeroLSN, err
	}
	if err := m.log.Flush(lsn + 1); err != nil {
		return wal.ZeroLSN, err
	}

	// Flush the snapshot. This is what licenses truncation: once every
	// page dirty at the snapshot is durably on disk, no record below
	// the recovery-begin LSN is needed for redo, and any page a later
	// crash tears was re-dirtied after the fence — so a full image for
	// it sits above the fence in the retained log.
	if tracker != nil {
		ids := make([]storage.PageID, len(dpt))
		for i, d := range dpt {
			ids[i] = d.Page
		}
		if err := tracker.FlushPages(ids); err != nil {
			return wal.ZeroLSN, err
		}
	} else if m.store != nil {
		if err := m.store.Sync(); err != nil {
			return wal.ZeroLSN, err
		}
	}

	recoveryBegin := fence
	for _, t := range att {
		if t.First != wal.ZeroLSN && t.First < recoveryBegin {
			recoveryBegin = t.First
		}
	}
	if err := m.log.CompleteCheckpoint(lsn, recoveryBegin); err != nil {
		return wal.ZeroLSN, err
	}
	return lsn, nil
}

// ActiveCount returns the number of in-flight transactions.
func (m *Manager) ActiveCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.active)
}
