package wal

import (
	"errors"
	"io"
	"testing"
	"testing/quick"

	"repro/internal/storage"
)

func newLog(t *testing.T) (*Log, *storage.MemDevice) {
	t.Helper()
	dev := storage.NewMemDevice()
	l, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	return l, dev
}

func TestAppendFlushIterate(t *testing.T) {
	l, _ := newLog(t)
	recs := []*Record{
		{Txn: 1, Type: RecBegin},
		{Txn: 1, Type: RecUpdate, PageID: 3, Offset: 40, Before: []byte("old"), After: []byte("new")},
		{Txn: 1, Type: RecCommit},
	}
	var lsns []LSN
	for _, r := range recs {
		lsn, err := l.Append(r)
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	if lsns[0] >= lsns[1] || lsns[1] >= lsns[2] {
		t.Fatalf("LSNs must increase: %v", lsns)
	}
	// Nothing durable before flush.
	var seen int
	_ = l.Iterate(ZeroLSN, func(r *Record) error { seen++; return nil })
	if seen != 0 {
		t.Fatalf("iterated %d records before flush", seen)
	}
	if err := l.Flush(lsns[2] + 1); err != nil {
		t.Fatal(err)
	}
	var got []*Record
	if err := l.Iterate(ZeroLSN, func(r *Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("iterated %d records", len(got))
	}
	if got[1].Type != RecUpdate || string(got[1].Before) != "old" || string(got[1].After) != "new" ||
		got[1].PageID != 3 || got[1].Offset != 40 || got[1].Txn != 1 {
		t.Fatalf("record round trip: %+v", got[1])
	}
	if got[0].LSN != lsns[0] || got[2].LSN != lsns[2] {
		t.Fatal("LSNs do not match")
	}
	// Iterate from the middle.
	var fromMid int
	_ = l.Iterate(lsns[1], func(r *Record) error { fromMid++; return nil })
	if fromMid != 2 {
		t.Fatalf("from mid = %d", fromMid)
	}
	// Early stop.
	var first int
	_ = l.Iterate(ZeroLSN, func(r *Record) error { first++; return io.EOF })
	if first != 1 {
		t.Fatalf("early stop saw %d", first)
	}
}

func TestReopenFindsTail(t *testing.T) {
	dev := storage.NewMemDevice()
	l, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := l.Append(&Record{Txn: uint64(i), Type: RecBegin}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Flush(l.NextLSN()); err != nil {
		t.Fatal(err)
	}
	size := l.Size()

	l2, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Size() != size {
		t.Fatalf("size after reopen = %d, want %d", l2.Size(), size)
	}
	// New appends continue from the tail.
	lsn, _ := l2.Append(&Record{Txn: 99, Type: RecCommit})
	if uint64(lsn) != size {
		t.Fatalf("next lsn = %d, want %d", lsn, size)
	}
}

func TestTornTailTruncated(t *testing.T) {
	dev := storage.NewMemDevice()
	l, _ := Open(dev)
	if _, err := l.Append(&Record{Txn: 1, Type: RecBegin}); err != nil {
		t.Fatal(err)
	}
	_ = l.Flush(l.NextLSN())
	good := l.Size()
	tail, err := dev.Size()
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a torn write: garbage partial record at the device tail.
	if _, err := dev.WriteAt([]byte{0x55, 0x01}, tail); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Size() != good {
		t.Fatalf("torn tail not truncated: %d vs %d", l2.Size(), good)
	}
	var n int
	_ = l2.Iterate(ZeroLSN, func(r *Record) error { n++; return nil })
	if n != 1 {
		t.Fatalf("records after torn tail = %d", n)
	}
}

func TestOpenRejectsGarbageHeader(t *testing.T) {
	dev := storage.NewMemDevice()
	if _, err := dev.WriteAt([]byte("garbage!"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dev); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v", err)
	}
}

func TestRecTypeString(t *testing.T) {
	for rt, want := range map[RecType]string{
		RecBegin: "begin", RecCommit: "commit", RecAbort: "abort",
		RecUpdate: "update", RecCheckpoint: "checkpoint", RecType(77): "rectype(77)",
	} {
		if rt.String() != want {
			t.Errorf("%d.String() = %s", rt, rt.String())
		}
	}
}

// Property: any batch of records round-trips through append/flush/iterate.
func TestRecordRoundTripQuick(t *testing.T) {
	f := func(specs []struct {
		Txn    uint64
		Page   uint16
		Off    uint8
		Before []byte
		After  []byte
	}) bool {
		dev := storage.NewMemDevice()
		l, err := Open(dev)
		if err != nil {
			return false
		}
		for _, s := range specs {
			if _, err := l.Append(&Record{
				Txn: s.Txn, Type: RecUpdate, PageID: storage.PageID(s.Page),
				Offset: uint16(s.Off), Before: s.Before, After: s.After,
			}); err != nil {
				return false
			}
		}
		if err := l.Flush(l.NextLSN()); err != nil {
			return false
		}
		i := 0
		err = l.Iterate(ZeroLSN, func(r *Record) error {
			s := specs[i]
			if r.Txn != s.Txn || r.PageID != storage.PageID(s.Page) || r.Offset != uint16(s.Off) ||
				string(r.Before) != string(s.Before) || string(r.After) != string(s.After) {
				return errors.New("mismatch")
			}
			i++
			return nil
		})
		return err == nil && i == len(specs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// writeAt writes bytes into a page at a raw offset, via the store.
func writeAt(t *testing.T, store storage.PageStore, id storage.PageID, off int, b []byte, lsn LSN) {
	t.Helper()
	buf := make([]byte, storage.PageSize)
	if err := store.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	p := storage.WrapPage(id, buf)
	copy(p.Data[off:], b)
	p.SetLSN(uint64(lsn))
	if err := store.WritePage(id, p.Data); err != nil {
		t.Fatal(err)
	}
}

func readAt(t *testing.T, store storage.PageStore, id storage.PageID, off, n int) []byte {
	t.Helper()
	buf := make([]byte, storage.PageSize)
	if err := store.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	return append([]byte(nil), buf[off:off+n]...)
}

func TestRecoverRedoCommitted(t *testing.T) {
	l, _ := newLog(t)
	disk, _ := storage.OpenDisk(storage.NewMemDevice())
	pid, _ := disk.Allocate()
	off := storage.HeaderSize

	// Committed transaction whose write never reached the page.
	_, _ = l.Append(&Record{Txn: 1, Type: RecBegin})
	up := &Record{Txn: 1, Type: RecUpdate, PageID: pid, Offset: uint16(off),
		Before: []byte("AAAA"), After: []byte("BBBB")}
	_, _ = l.Append(up)
	_, _ = l.Append(&Record{Txn: 1, Type: RecCommit})
	_ = l.Flush(l.NextLSN())

	st, err := Recover(l, disk)
	if err != nil {
		t.Fatal(err)
	}
	if st.Redone != 1 || st.Undone != 0 || st.Committed != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if got := readAt(t, disk, pid, off, 4); string(got) != "BBBB" {
		t.Fatalf("page content = %q", got)
	}
	// Idempotence: a second recovery changes nothing.
	st2, err := Recover(l, disk)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Redone != 0 || st2.Undone != 0 {
		t.Fatalf("second recovery stats = %+v", st2)
	}
}

func TestRecoverSkipsAlreadyApplied(t *testing.T) {
	l, _ := newLog(t)
	disk, _ := storage.OpenDisk(storage.NewMemDevice())
	pid, _ := disk.Allocate()
	off := storage.HeaderSize
	_, _ = l.Append(&Record{Txn: 1, Type: RecBegin})
	up := &Record{Txn: 1, Type: RecUpdate, PageID: pid, Offset: uint16(off),
		Before: []byte("AAAA"), After: []byte("BBBB")}
	lsn, _ := l.Append(up)
	_, _ = l.Append(&Record{Txn: 1, Type: RecCommit})
	_ = l.Flush(l.NextLSN())
	// The write DID reach the page (page LSN stamped at write time).
	writeAt(t, disk, pid, off, []byte("BBBB"), lsn)

	st, err := Recover(l, disk)
	if err != nil {
		t.Fatal(err)
	}
	if st.Redone != 0 {
		t.Fatalf("stats = %+v, nothing should be redone", st)
	}
}

func TestRecoverUndoInFlight(t *testing.T) {
	l, _ := newLog(t)
	disk, _ := storage.OpenDisk(storage.NewMemDevice())
	pid, _ := disk.Allocate()
	off := storage.HeaderSize

	// In-flight transaction whose two writes reached the page before
	// the crash; both must be rolled back in reverse order.
	writeAt(t, disk, pid, off, []byte("AAAA"), 0)
	_, _ = l.Append(&Record{Txn: 7, Type: RecBegin})
	l1, _ := l.Append(&Record{Txn: 7, Type: RecUpdate, PageID: pid, Offset: uint16(off),
		Before: []byte("AAAA"), After: []byte("BBBB")})
	writeAt(t, disk, pid, off, []byte("BBBB"), l1)
	l2, _ := l.Append(&Record{Txn: 7, Type: RecUpdate, PageID: pid, Offset: uint16(off),
		Before: []byte("BBBB"), After: []byte("CCCC")})
	writeAt(t, disk, pid, off, []byte("CCCC"), l2)
	_ = l.Flush(l.NextLSN())
	// No commit: transaction is in flight at "crash".

	st, err := Recover(l, disk)
	if err != nil {
		t.Fatal(err)
	}
	if st.Undone != 2 || st.InFlight != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if got := readAt(t, disk, pid, off, 4); string(got) != "AAAA" {
		t.Fatalf("page content = %q, want rollback to AAAA", got)
	}
}

func TestRecoverMixedTransactions(t *testing.T) {
	l, _ := newLog(t)
	disk, _ := storage.OpenDisk(storage.NewMemDevice())
	p1, _ := disk.Allocate()
	p2, _ := disk.Allocate()
	off := storage.HeaderSize

	writeAt(t, disk, p1, off, []byte("1111"), 0)
	writeAt(t, disk, p2, off, []byte("2222"), 0)

	// Txn 1 commits (write lost), txn 2 aborts cleanly (write
	// persisted, rollback compensation logged but its write lost — the
	// contract is that RecAbort is only appended after a compensation
	// record exists for every update).
	_, _ = l.Append(&Record{Txn: 1, Type: RecBegin})
	_, _ = l.Append(&Record{Txn: 2, Type: RecBegin})
	_, _ = l.Append(&Record{Txn: 1, Type: RecUpdate, PageID: p1, Offset: uint16(off),
		Before: []byte("1111"), After: []byte("aaaa")})
	lu2, _ := l.Append(&Record{Txn: 2, Type: RecUpdate, PageID: p2, Offset: uint16(off),
		Before: []byte("2222"), After: []byte("bbbb")})
	writeAt(t, disk, p2, off, []byte("bbbb"), lu2)
	_, _ = l.Append(&Record{Txn: 2, Type: RecUpdate, PageID: p2, Offset: uint16(off),
		After: []byte("2222")}) // compensation: redo-only restore
	_, _ = l.Append(&Record{Txn: 1, Type: RecCommit})
	_, _ = l.Append(&Record{Txn: 2, Type: RecAbort})
	_ = l.Flush(l.NextLSN())

	st, err := Recover(l, disk)
	if err != nil {
		t.Fatal(err)
	}
	if st.Redone != 2 || st.Undone != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if got := readAt(t, disk, p1, off, 4); string(got) != "aaaa" {
		t.Fatalf("p1 = %q", got)
	}
	if got := readAt(t, disk, p2, off, 4); string(got) != "2222" {
		t.Fatalf("p2 = %q", got)
	}
}

// TestRecoverLoserRedoOnlyNotUndone pins the rule that physical undo
// skips redo-only records. A failed slotted-page insert logs the
// compaction it performed as a redo-only record; if that transaction
// then dies without any logical-undo record it is rolled back
// physically — and restoring the compaction's before image would wipe
// every byte later committed transactions wrote into the reorganised
// layout (the TestKVCrashRecoveryConcurrentMidWriteBack resurrection:
// a commit-timestamp stamp applied at the post-compaction cell offset
// vanished under the loser's before image).
func TestRecoverLoserRedoOnlyNotUndone(t *testing.T) {
	l, _ := newLog(t)
	disk, _ := storage.OpenDisk(storage.NewMemDevice())
	pid, _ := disk.Allocate()
	off := storage.HeaderSize

	writeAt(t, disk, pid, off, []byte("AAAA"), 0)
	// Txn 8 inserts, txn 9 reorganises the page (redo-only: content-
	// preserving, never undone), txn 8 stamps over the reorganised
	// layout and commits. Txn 9 is still in flight at the crash, with
	// no logical-undo records — a physical loser.
	_, _ = l.Append(&Record{Txn: 8, Type: RecBegin})
	_, _ = l.Append(&Record{Txn: 8, Type: RecUpdate, PageID: pid, Offset: uint16(off),
		Before: []byte("AAAA"), After: []byte("BBBB")})
	_, _ = l.Append(&Record{Txn: 9, Type: RecBegin})
	_, _ = l.Append(&Record{Txn: 9, Type: RecUpdate, PageID: pid, Offset: uint16(off),
		Before: []byte("BBBB"), After: []byte("CCCC"), Undo: UndoNone})
	_, _ = l.Append(&Record{Txn: 8, Type: RecUpdate, PageID: pid, Offset: uint16(off),
		Before: []byte("CCCC"), After: []byte("DDDD")})
	_, _ = l.Append(&Record{Txn: 8, Type: RecCommit})
	_ = l.Flush(l.NextLSN())

	st, err := Recover(l, disk)
	if err != nil {
		t.Fatal(err)
	}
	if st.Undone != 0 {
		t.Fatalf("stats = %+v, redo-only loser record must not be undone", st)
	}
	if got := readAt(t, disk, pid, off, 4); string(got) != "DDDD" {
		t.Fatalf("page = %q, want committed DDDD to survive the loser's rollback", got)
	}
}

func TestBeforeEvictHookFlushes(t *testing.T) {
	l, _ := newLog(t)
	hook := l.BeforeEvict()
	lsn, _ := l.Append(&Record{Txn: 1, Type: RecUpdate, PageID: 1, Offset: 32,
		Before: []byte("a"), After: []byte("b")})
	// Page stamped with this LSN: evicting it must flush the log first.
	if err := hook(1, uint64(lsn)); err != nil {
		t.Fatal(err)
	}
	if l.DurableBoundary() <= lsn {
		t.Fatalf("flushed = %d, want > %d", l.DurableBoundary(), lsn)
	}
	// Page with an old LSN does not force a flush.
	before := l.DurableBoundary()
	if err := hook(1, 0); err != nil {
		t.Fatal(err)
	}
	if l.DurableBoundary() != before {
		t.Fatal("hook must not flush for already-durable LSNs")
	}
}

func TestCheckpointBoundsRecoveryScan(t *testing.T) {
	dev := storage.NewMemDevice()
	l, _ := Open(dev)
	disk, _ := storage.OpenDisk(storage.NewMemDevice())
	pid, _ := disk.Allocate()
	off := storage.HeaderSize

	// Committed work before the checkpoint, applied to the page.
	_, _ = l.Append(&Record{Txn: 1, Type: RecBegin})
	lu, _ := l.Append(&Record{Txn: 1, Type: RecUpdate, PageID: pid, Offset: uint16(off),
		Before: []byte("AAAA"), After: []byte("BBBB")})
	_, _ = l.Append(&Record{Txn: 1, Type: RecCommit})
	writeAt(t, disk, pid, off, []byte("BBBB"), lu)

	ck, err := l.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if l.LastCheckpoint() != ck {
		t.Fatalf("LastCheckpoint = %d, want %d", l.LastCheckpoint(), ck)
	}

	// Post-checkpoint committed work that never reached the page.
	_, _ = l.Append(&Record{Txn: 2, Type: RecBegin})
	_, _ = l.Append(&Record{Txn: 2, Type: RecUpdate, PageID: pid, Offset: uint16(off),
		Before: []byte("BBBB"), After: []byte("CCCC")})
	_, _ = l.Append(&Record{Txn: 2, Type: RecCommit})
	_ = l.Flush(l.NextLSN())

	// Reopen (checkpoint LSN must persist in the header) and recover.
	l2, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	if l2.LastCheckpoint() != ck {
		t.Fatalf("checkpoint lost across reopen: %d", l2.LastCheckpoint())
	}
	st, err := Recover(l2, disk)
	if err != nil {
		t.Fatal(err)
	}
	// Analysis starts at the checkpoint: only txn 2's records scanned
	// (checkpoint record + 3), and only its update redone.
	if st.Scanned > 4 {
		t.Fatalf("scanned %d records, checkpoint not honoured", st.Scanned)
	}
	if st.Redone != 1 {
		t.Fatalf("redone = %d", st.Redone)
	}
	if got := readAt(t, disk, pid, off, 4); string(got) != "CCCC" {
		t.Fatalf("page = %q", got)
	}
}
