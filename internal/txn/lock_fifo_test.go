package txn

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLockFairnessXUnderSharedStream is the FIFO-admission regression:
// a sustained stream of overlapping shared holders must not starve an
// exclusive requester. With queued grants, the X request parks once and
// every S arriving after it queues BEHIND it, so the X is granted as
// soon as the holders present at enqueue time drain — a bounded number
// of S grants, not "whenever the stream happens to pause". The
// broadcast+rescan manager this replaces admitted every new S
// immediately and failed this test.
func TestLockFairnessXUnderSharedStream(t *testing.T) {
	lm := NewLockManager()
	ctx := context.Background()
	const readers = 4
	stop := make(chan struct{})
	var grantsAfterX atomic.Int64
	var xRequested atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		id := uint64(i + 10)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := lm.Acquire(ctx, id, "hot", Shared); err != nil {
					t.Errorf("reader %d: %v", id, err)
					return
				}
				if xRequested.Load() {
					grantsAfterX.Add(1)
				}
				time.Sleep(200 * time.Microsecond) // keep holds overlapping
				lm.ReleaseAll(id)
			}
		}()
	}
	time.Sleep(20 * time.Millisecond) // stream established
	xRequested.Store(true)
	done := make(chan error, 1)
	go func() { done <- lm.Acquire(ctx, 99, "hot", Exclusive) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("X acquire: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("X requester starved behind the shared stream")
	}
	granted := grantsAfterX.Load()
	lm.ReleaseAll(99)
	close(stop)
	wg.Wait()
	// Holders present when the X enqueued may still be granted (they
	// were admitted before it); anything past that is barging. The +2
	// covers readers that slipped between the flag store and the
	// enqueue.
	if granted > readers+2 {
		t.Fatalf("X waited behind %d shared grants, want <= %d (FIFO bound)", granted, readers+2)
	}
}

// TestLockFIFOOrderXWaiters: conflicting waiters are granted strictly
// in arrival order.
func TestLockFIFOOrderXWaiters(t *testing.T) {
	lm := NewLockManager()
	ctx := context.Background()
	if err := lm.Acquire(ctx, 1, "r", Exclusive); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var order []uint64
	var wg sync.WaitGroup
	for _, id := range []uint64{2, 3, 4} {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := lm.Acquire(ctx, id, "r", Exclusive); err != nil {
				t.Errorf("txn %d: %v", id, err)
				return
			}
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
			time.Sleep(5 * time.Millisecond)
			lm.ReleaseAll(id)
		}()
		// Space the enqueues out so arrival order is deterministic.
		for lm.Waiters("r") < int(id-1) {
			time.Sleep(time.Millisecond)
		}
	}
	lm.ReleaseAll(1)
	wg.Wait()
	if len(order) != 3 || order[0] != 2 || order[1] != 3 || order[2] != 4 {
		t.Fatalf("grant order = %v, want [2 3 4]", order)
	}
	if lm.Locked() != 0 {
		t.Fatal("locks leaked")
	}
}

// TestLockNoBargingSharedBehindExclusive: a shared request arriving
// while an exclusive request waits must queue behind it, even though it
// is compatible with the current shared holder.
func TestLockNoBargingSharedBehindExclusive(t *testing.T) {
	lm := NewLockManager()
	ctx := context.Background()
	if err := lm.Acquire(ctx, 1, "r", Shared); err != nil {
		t.Fatal(err)
	}
	xGot := make(chan error, 1)
	go func() { xGot <- lm.Acquire(ctx, 2, "r", Exclusive) }()
	for lm.Waiters("r") == 0 {
		time.Sleep(time.Millisecond)
	}
	sGot := make(chan error, 1)
	go func() { sGot <- lm.Acquire(ctx, 3, "r", Shared) }()
	select {
	case err := <-sGot:
		t.Fatalf("S barged past a waiting X: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	lm.ReleaseAll(1)
	select {
	case err := <-xGot:
		if err != nil {
			t.Fatalf("X grant: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("X never granted after holder released")
	}
	select {
	case err := <-sGot:
		t.Fatalf("S granted while X held: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	lm.ReleaseAll(2)
	select {
	case err := <-sGot:
		if err != nil {
			t.Fatalf("S grant: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued S never granted after X released")
	}
	lm.ReleaseAll(3)
	if lm.Locked() != 0 {
		t.Fatal("locks leaked")
	}
}

// TestTryAcquireSemantics: TryAcquire grants free and re-entrant
// requests, refuses conflicts, and — crucially for fairness — refuses
// requests that would barge past a queued waiter even when compatible
// with the holders.
func TestTryAcquireSemantics(t *testing.T) {
	lm := NewLockManager()
	ctx := context.Background()
	if !lm.TryAcquire(1, "r", Shared) {
		t.Fatal("free resource refused")
	}
	if !lm.TryAcquire(2, "r", Shared) {
		t.Fatal("compatible share refused")
	}
	if lm.TryAcquire(3, "r", Exclusive) {
		t.Fatal("conflicting X granted")
	}
	if !lm.TryAcquire(1, "r", Shared) {
		t.Fatal("re-entrant S refused")
	}
	// Park an X waiter, then probe with a compatible S.
	xGot := make(chan error, 1)
	go func() { xGot <- lm.Acquire(ctx, 3, "r", Exclusive) }()
	for lm.Waiters("r") == 0 {
		time.Sleep(time.Millisecond)
	}
	if lm.TryAcquire(4, "r", Shared) {
		t.Fatal("TryAcquire barged past a waiting X")
	}
	// Upgrade: refused while another holder remains, granted when sole.
	if lm.TryAcquire(1, "r", Exclusive) {
		t.Fatal("upgrade granted with a second holder present")
	}
	lm.ReleaseAll(2)
	lm.ReleaseAll(1)
	if err := <-xGot; err != nil {
		t.Fatal(err)
	}
	lm.ReleaseAll(3)
	if !lm.TryAcquire(5, "s", Shared) || !lm.TryAcquire(5, "s", Exclusive) {
		t.Fatal("solo upgrade via TryAcquire refused")
	}
	lm.ReleaseAll(5)
	if lm.Locked() != 0 {
		t.Fatal("locks leaked")
	}
}
