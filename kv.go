// Package sbdms is the public facade of the Service-Based Data
// Management System: it composes the storage, access, data and
// extension services of the paper's Figure 2 into a running database,
// at a selectable service granularity (monolithic, coarse, layered,
// fine) and over a selectable binding (in-process or TCP) — the exact
// experiment matrix the paper proposes as future work ("testing with
// different levels of service granularity will give us insights into
// the right tradeoff between service granularity and system
// performance", Section 5).
package sbdms

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/access"
	"repro/internal/buffer"
	"repro/internal/index"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

// KV errors.
var (
	// ErrKeyNotFound is returned by Get/Delete on absent keys.
	ErrKeyNotFound = errors.New("sbdms: key not found")
	// ErrBatchMismatch is returned by PutBatch when keys and values
	// have different lengths.
	ErrBatchMismatch = errors.New("sbdms: batch keys/values length mismatch")
	// ErrConflict is returned when an operation was chosen as a
	// deadlock victim and rolled back; the operation had no effect and
	// is safe to retry.
	ErrConflict = errors.New("sbdms: transaction conflict (deadlock victim, retry)")
)

// IsConflict reports whether err is a retryable transaction conflict.
// It matches by error string as well, because errors that crossed a
// service binding (gob) arrive flattened.
func IsConflict(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, ErrConflict) || strings.Contains(err.Error(), "sbdms: transaction conflict")
}

// kvCore is the native key-value engine: a heap file for values plus a
// unique B+tree index on keys. It is the workhorse behind the KV
// service at every granularity; what changes between profiles is how
// many service boundaries a call crosses before reaching it.
//
// Concurrency: there is no engine-wide lock. Callers run in parallel
// and serialise only per KEY, through strict two-phase locks from the
// shared lock manager (shared for point reads, exclusive for writes,
// held until the transaction's outcome is durable); page-level
// consistency below comes from the B+tree's latch crabbing and the
// heap's page latches. Deadlock victims abort with ErrConflict and can
// simply be retried. Scans take no key locks: they are non-transactional
// and may observe keys of concurrent not-yet-committed transactions
// (which can still abort), and keys inserted or deleted while the scan
// runs may or may not appear.
//
// Every mutation runs under a transaction (one per operation, one per
// batch) so the heap, the B+tree and — via the file manager's system
// transactions — the page directory are all WAL-logged: a kill -9 at
// any point recovers to a consistent store with exactly the committed
// operations applied. Heap record removal is deferred until the commit
// is durable (the transaction only unlinks the index entry), which is
// what keeps rollbacks of concurrent transactions from fighting over
// reused slots.
type kvCore struct {
	heap  *access.HeapFile
	idx   *index.BTree
	txns  *txn.Manager     // nil = unlogged (WAL disabled)
	locks *txn.LockManager // per-key 2PL; never nil
	ids   func() uint64    // lock-owner ids for non-transactional ops

	poisoned atomic.Bool // fast-path flag for failed != nil
	failedMu sync.Mutex
	failed   error // fatal engine fault; all further operations refused
}

func newKVCore(fm *storage.FileManager, pool *buffer.Manager, txns *txn.Manager, log *wal.Log, name string, recount bool) (*kvCore, error) {
	heap, err := access.OpenHeap(name, fm, pool)
	if err != nil {
		return nil, err
	}
	idx, err := openKVIndex(fm, pool, name+".meta")
	if err != nil {
		return nil, err
	}
	kv := &kvCore{heap: heap, idx: idx}
	idx.SetFreer(fm.FreePagesLogged)
	if txns != nil {
		kv.locks = txns.Locks()
		kv.ids = txns.ReserveID
	} else {
		lm := txn.NewLockManager()
		var ctr atomic.Uint64
		kv.locks = lm
		kv.ids = func() uint64 { return ctr.Add(1) }
	}
	if log != nil && txns != nil {
		heap.SetLog(log)
		idx.SetLog(log)
		heap.SetSystemTxns(txns.SystemHooks())
		// Trees hold every touched page latch across their structure
		// modifications, so their rollback must not re-latch.
		idx.SetSystemTxns(txns.SystemHooksHeldLatches())
		kv.txns = txns
		// Per-operation entry counts are not logged (they would
		// serialise every writer on the metadata page). Trust the
		// persisted count only when the previous shutdown synced it
		// (clean flag, consumed here); otherwise — or when recovery
		// repaired anything — rebuild it from the leaf chain.
		clean, err := idx.ConsumeCleanFlag()
		if err != nil {
			return nil, err
		}
		if recount || !clean {
			if err := idx.Recount(); err != nil {
				return nil, err
			}
		}
	}
	return kv, nil
}

// Close persists the in-memory index metadata (entry count) so a clean
// reopen needs no recount.
func (kv *kvCore) Close() error {
	if kv.poisoned.Load() {
		return nil
	}
	return kv.idx.SyncMeta()
}

// openKVIndex opens the KV B+tree, persisting its metadata page id in a
// one-page file so the index survives restarts.
func openKVIndex(fm *storage.FileManager, pool *buffer.Manager, metaFile string) (*index.BTree, error) {
	if fm.Exists(metaFile) {
		pid, err := fm.FirstPage(metaFile)
		if err != nil {
			return nil, err
		}
		f, err := pool.Pin(pid)
		if err != nil {
			return nil, err
		}
		metaID := storage.PageID(binary.LittleEndian.Uint64(f.Page().Payload()))
		if err := pool.Unpin(pid, false); err != nil {
			return nil, err
		}
		return index.Open(pool, metaID)
	}
	idx, metaID, err := index.Create(pool, true)
	if err != nil {
		return nil, err
	}
	if err := fm.Create(metaFile); err != nil {
		return nil, err
	}
	pid, err := fm.AppendPage(metaFile, storage.PageTypeRaw)
	if err != nil {
		return nil, err
	}
	f, err := pool.Pin(pid)
	if err != nil {
		return nil, err
	}
	binary.LittleEndian.PutUint64(f.Page().Payload(), uint64(metaID))
	if err := pool.Unpin(pid, true); err != nil {
		return nil, err
	}
	return idx, nil
}

func (kv *kvCore) key(k string) []byte { return access.EncodeKey(access.NewString(k)) }

// kvRes names a key's lock-manager resource.
func kvRes(k string) string { return "kv/" + k }

// --- record codec -------------------------------------------------------
//
// KV heap cells use a self-delimiting layout (u16 klen | key | u32 vlen
// | value) so that padded in-place updates — which keep the cell length
// and zero-fill the tail — decode cleanly: the undo of an in-place
// update (restore the old cell bytes) then always fits, no matter how
// concurrent transactions rearrange the rest of the page.

func encodeKV(k string, v []byte) []byte {
	out := make([]byte, 2+len(k)+4+len(v))
	binary.LittleEndian.PutUint16(out, uint16(len(k)))
	copy(out[2:], k)
	binary.LittleEndian.PutUint32(out[2+len(k):], uint32(len(v)))
	copy(out[2+len(k)+4:], v)
	return out
}

var errBadKVRecord = errors.New("sbdms: corrupt kv record")

func decodeKV(cell []byte) (string, []byte, error) {
	if len(cell) < 6 {
		return "", nil, errBadKVRecord
	}
	klen := int(binary.LittleEndian.Uint16(cell))
	if 2+klen+4 > len(cell) {
		return "", nil, errBadKVRecord
	}
	k := string(cell[2 : 2+klen])
	vlen := int(binary.LittleEndian.Uint32(cell[2+klen:]))
	if 2+klen+4+vlen > len(cell) {
		return "", nil, errBadKVRecord
	}
	return k, cell[2+klen+4 : 2+klen+4+vlen], nil
}

// --- failure guard ------------------------------------------------------

func (kv *kvCore) checkFailed() error {
	if !kv.poisoned.Load() {
		return nil
	}
	kv.failedMu.Lock()
	defer kv.failedMu.Unlock()
	return kv.failed
}

// poison takes the engine offline. A rollback or commit that itself
// fails (the device died mid-way) leaves the pool holding pages with
// unrecovered uncommitted bytes, and further commits would legitimise
// them in the log. Refusing all further operations keeps the WAL
// trustworthy, so a restart recovers exactly the committed state.
func (kv *kvCore) poison(err error) error {
	kv.failedMu.Lock()
	defer kv.failedMu.Unlock()
	if kv.failed == nil {
		kv.failed = err
		kv.poisoned.Store(true)
	}
	return kv.failed
}

// conflictWrap converts deadlock-victim errors into the retryable
// public form.
func conflictWrap(err error) error {
	if errors.Is(err, txn.ErrDeadlock) {
		return fmt.Errorf("%w: %v", ErrConflict, err)
	}
	return err
}

// lockKeys acquires exclusive key locks in sorted order (fewer
// deadlocks between multi-key batches; singles are unaffected).
func sortedUnique(keys []string) []string {
	if len(keys) <= 1 {
		return keys
	}
	out := append([]string(nil), keys...)
	sort.Strings(out)
	n := 0
	for i, k := range out {
		if i == 0 || out[n-1] != k {
			out[n] = k
			n++
		}
	}
	return out[:n]
}

// run executes op inside a fresh transaction holding exclusive locks on
// keys. A failed op is rolled back logically (inverse operations under
// page latches); a successful op commits through the group-commit path
// — concurrent committers coalesce into one log sync. Locks are
// released only once the outcome is durable (strict 2PL).
func (kv *kvCore) run(ctx context.Context, keys []string, op func(tx *txn.Txn) error) error {
	if err := kv.checkFailed(); err != nil {
		return err
	}
	if kv.txns == nil {
		// Unlogged: key locks still serialise conflicting operations,
		// there is just no undo or durability.
		id := kv.ids()
		defer kv.locks.ReleaseAll(id)
		for _, k := range sortedUnique(keys) {
			if err := kv.locks.Acquire(ctx, id, kvRes(k), txn.Exclusive); err != nil {
				return conflictWrap(err)
			}
		}
		return op(nil)
	}
	tx, err := kv.txns.Begin()
	if err != nil {
		return err
	}
	abort := func(cause error) error {
		if aerr := kv.txns.Abort(tx); aerr != nil {
			perr := kv.poison(fmt.Errorf("sbdms: kv engine offline after failed rollback: %w", aerr))
			return fmt.Errorf("%w (rollback: %v)", cause, perr)
		}
		return cause
	}
	for _, k := range sortedUnique(keys) {
		if err := tx.Lock(ctx, kvRes(k), txn.Exclusive); err != nil {
			return abort(conflictWrap(err))
		}
	}
	if err := op(tx); err != nil {
		return abort(err)
	}
	if err := kv.txns.Commit(tx); err != nil {
		return kv.poison(fmt.Errorf("sbdms: kv engine offline after failed commit: %w", err))
	}
	return nil
}

// txctx converts the concrete transaction into the access-layer hook,
// avoiding a typed-nil interface when tx is nil.
func txctx(tx *txn.Txn) access.TxnContext {
	if tx == nil {
		return nil
	}
	return tx
}

// putTx stores (or replaces) a key under tx; the caller holds the key's
// exclusive lock.
func (kv *kvCore) putTx(tx *txn.Txn, k string, v []byte) error {
	c := txctx(tx)
	rec := encodeKV(k, v)
	rids, err := kv.idx.Search(kv.key(k))
	if err != nil {
		return err
	}
	if len(rids) > 0 {
		old := rids[0]
		ok, err := kv.heap.UpdateInPlace(c, old, rec)
		if err != nil {
			return err
		}
		if ok {
			return nil
		}
		// The value outgrew its cell: write a fresh record, repoint the
		// index, and purge the old record once the commit is durable.
		nrid, err := kv.heap.Insert(c, rec)
		if err != nil {
			return err
		}
		if _, err := kv.idx.DeleteTx(c, kv.key(k), old); err != nil {
			return err
		}
		if err := kv.idx.InsertTx(c, kv.key(k), nrid); err != nil {
			return err
		}
		return kv.heap.DeleteDeferred(c, old)
	}
	rid, err := kv.heap.Insert(c, rec)
	if err != nil {
		return err
	}
	return kv.idx.InsertTx(c, kv.key(k), rid)
}

// deleteTx removes a key under tx; the caller holds the key's exclusive
// lock.
func (kv *kvCore) deleteTx(tx *txn.Txn, k string) error {
	c := txctx(tx)
	rids, err := kv.idx.Search(kv.key(k))
	if err != nil {
		return err
	}
	if len(rids) == 0 {
		return fmt.Errorf("%w: %q", ErrKeyNotFound, k)
	}
	if _, err := kv.idx.DeleteTx(c, kv.key(k), rids[0]); err != nil {
		return err
	}
	return kv.heap.DeleteDeferred(c, rids[0])
}

// Put stores (or replaces) a key, durably when the WAL is enabled.
func (kv *kvCore) Put(ctx context.Context, k string, v []byte) error {
	return kv.run(ctx, []string{k}, func(tx *txn.Txn) error { return kv.putTx(tx, k, v) })
}

// PutBatch stores several keys under one transaction: one WAL force
// for the whole batch, and after a crash either all of the batch's
// keys are recovered or none. Locks are acquired in sorted key order,
// so concurrent batches cannot deadlock each other. With the WAL
// disabled there is no undo, so a mid-batch failure leaves the earlier
// keys applied (unlogged mode trades the atomicity guarantee away
// along with durability).
func (kv *kvCore) PutBatch(ctx context.Context, keys []string, vals [][]byte) error {
	if len(keys) != len(vals) {
		return fmt.Errorf("%w: %d keys, %d values", ErrBatchMismatch, len(keys), len(vals))
	}
	return kv.run(ctx, keys, func(tx *txn.Txn) error {
		for i := range keys {
			if err := kv.putTx(tx, keys[i], vals[i]); err != nil {
				return err
			}
		}
		return nil
	})
}

// Get fetches a key's value under a shared key lock (blocking out a
// concurrent writer of the same key, and only of the same key). A
// poisoned engine refuses reads too: the pool may hold
// half-rolled-back bytes a failed rollback left behind.
func (kv *kvCore) Get(ctx context.Context, k string) ([]byte, error) {
	if err := kv.checkFailed(); err != nil {
		return nil, err
	}
	id := kv.ids()
	if err := kv.locks.Acquire(ctx, id, kvRes(k), txn.Shared); err != nil {
		return nil, conflictWrap(err)
	}
	defer kv.locks.ReleaseAll(id)
	rids, err := kv.idx.Search(kv.key(k))
	if err != nil {
		return nil, err
	}
	if len(rids) == 0 {
		return nil, fmt.Errorf("%w: %q", ErrKeyNotFound, k)
	}
	cell, err := kv.heap.Get(rids[0])
	if err != nil {
		return nil, err
	}
	_, v, err := decodeKV(cell)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), v...), nil
}

// Delete removes a key.
func (kv *kvCore) Delete(ctx context.Context, k string) error {
	// In logged mode, pre-check existence under a shared lock so a miss
	// stays a read-only operation instead of paying a begin/abort WAL
	// round trip. deleteTx re-checks under the exclusive lock.
	if kv.txns != nil {
		if err := kv.checkFailed(); err != nil {
			return err
		}
		id := kv.ids()
		rids, err := func() ([]access.RID, error) {
			if err := kv.locks.Acquire(ctx, id, kvRes(k), txn.Shared); err != nil {
				return nil, conflictWrap(err)
			}
			defer kv.locks.ReleaseAll(id)
			return kv.idx.Search(kv.key(k))
		}()
		if err == nil && len(rids) == 0 {
			return fmt.Errorf("%w: %q", ErrKeyNotFound, k)
		}
	}
	return kv.run(ctx, []string{k}, func(tx *txn.Txn) error { return kv.deleteTx(tx, k) })
}

// Scan returns up to n keys starting at (inclusive) the given key, in
// order. Scans take no key locks: they are non-transactional (keys of
// in-flight transactions may appear and later abort), skip records
// whose deferred removal lands mid-scan, and skip index entries whose
// slot was already reused by another key.
func (kv *kvCore) Scan(ctx context.Context, from string, n int) ([]string, error) {
	if err := kv.checkFailed(); err != nil {
		return nil, err
	}
	var out []string
	err := kv.idx.Range(kv.key(from), nil, func(key []byte, rid access.RID) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if len(out) >= n {
			return errStopScan
		}
		cell, err := kv.heap.Get(rid)
		if err != nil {
			if errors.Is(err, access.ErrNoSlot) {
				return nil // deleted under the scan: skip
			}
			return err
		}
		k, _, err := decodeKV(cell)
		if err != nil {
			return err
		}
		if !bytes.Equal(kv.key(k), key) {
			// The slot was purged and reused by another key between the
			// index read and the heap read: the index entry we followed
			// is gone. Skip it, exactly like the deleted-slot case.
			return nil
		}
		out = append(out, k)
		return nil
	})
	if err != nil && !errors.Is(err, errStopScan) {
		return nil, err
	}
	return out, nil
}

// Len returns the number of keys (0 when the engine is poisoned — the
// in-memory count is no more trustworthy than the pages then).
func (kv *kvCore) Len() uint64 {
	if kv.poisoned.Load() {
		return 0
	}
	return kv.idx.Len()
}

var errStopScan = errors.New("sbdms: stop scan")
