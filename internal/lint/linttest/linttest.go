// Package linttest is the golden-file test harness for the sbdmslint
// analyzers, in the spirit of go/analysis/analysistest: each analyzer
// has packages under internal/lint/testdata/src whose lines carry
// // want "regexp" comments naming the diagnostics the analyzer must
// produce there — no more, no less. The testdata directory is
// invisible to the go tool, so seeded violations never break the build;
// the harness type-checks those packages against the real engine
// packages so the analyzers' type-based matching is exercised for real.
package linttest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint"
)

var (
	loadOnce sync.Once
	loader   *lint.Loader
	loadErr  error
)

// sharedLoader returns a process-wide loader with the whole module
// (and its stdlib closure) already type-checked, so each golden
// package only pays for its own files.
func sharedLoader(t *testing.T) *lint.Loader {
	t.Helper()
	loadOnce.Do(func() {
		root, err := moduleRoot()
		if err != nil {
			loadErr = err
			return
		}
		loader = lint.NewLoader(root)
		_, loadErr = loader.Load("./...")
	})
	if loadErr != nil {
		t.Fatalf("linttest: loading module: %v", loadErr)
	}
	return loader
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("linttest: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// want is one expected diagnostic.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// LoadGolden type-checks the golden package at testdata/src/<rel>
// (relative to the module's internal/lint directory) against the
// shared loader's cache, for tests that assert on lint.Run output
// directly instead of through // want comments.
func LoadGolden(t *testing.T, rel string) *lint.Package {
	t.Helper()
	l := sharedLoader(t)
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "internal", "lint", "testdata", "src", filepath.FromSlash(rel))
	pkg, err := l.LoadDir(dir, "repro/internal/lint/testdata/"+rel)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	return pkg
}

// Run type-checks the golden package at testdata/src/<rel> (relative to
// the module's internal/lint directory) and applies the analyzers,
// comparing diagnostics against the package's // want comments.
func Run(t *testing.T, rel string, analyzers ...*lint.Analyzer) {
	t.Helper()
	pkg := LoadGolden(t, rel)

	wants := collectWants(t, pkg)
	diags, err := lint.Run([]*lint.Package{pkg}, analyzers)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}

	for _, d := range diags {
		p := pkg.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == p.Filename && w.line == p.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s: %s", filepath.Base(p.Filename), p.Line, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", filepath.Base(w.file), w.line, w.re)
		}
	}
}

// collectWants parses the // want "re" ["re"...] comments of a package.
func collectWants(t *testing.T, pkg *lint.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				body := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(body, "want ") {
					continue
				}
				rest := strings.TrimSpace(body[len("want "):])
				pos := pkg.Fset.Position(c.Pos())
				for rest != "" {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
					}
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: malformed want pattern %q", pos.Filename, pos.Line, q)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
					rest = strings.TrimSpace(rest[len(q):])
				}
			}
		}
	}
	return wants
}
