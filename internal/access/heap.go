package access

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/buffer"
	"repro/internal/storage"
	"repro/internal/wal"
)

// Heap file errors.
var (
	// ErrRecordTooLarge is returned when a record exceeds one page.
	ErrRecordTooLarge = errors.New("access: record too large for a page")
)

// RID identifies a record: page plus slot.
type RID struct {
	Page storage.PageID
	Slot uint16
}

// String implements fmt.Stringer.
func (r RID) String() string { return fmt.Sprintf("%d:%d", r.Page, r.Slot) }

// Less orders RIDs (page, then slot).
func (r RID) Less(o RID) bool {
	if r.Page != o.Page {
		return r.Page < o.Page
	}
	return r.Slot < o.Slot
}

// TxnContext is the minimal transactional hook a heap file needs: the
// transaction id for log records and a callback to register each update
// (for undo and LSN chaining). internal/txn provides the real
// implementation; nil means unlogged operation.
type TxnContext interface {
	// ID returns the transaction id.
	ID() uint64
	// LastLSN returns the transaction's most recent log record.
	LastLSN() wal.LSN
	// Record registers an appended update record with the transaction.
	Record(rec *wal.Record)
}

// HeapFile stores variable-length records in a chain of slotted pages
// managed by the file manager, cached by the buffer manager, and
// (optionally) logged to the WAL. It is the record-level storage
// service behind tables.
type HeapFile struct {
	name string
	fm   *storage.FileManager
	pool *buffer.Manager

	mu       sync.Mutex
	log      *wal.Log
	freeHint []storage.PageID // pages with reclaimed space
}

// OpenHeap opens the named heap file, creating it if absent.
func OpenHeap(name string, fm *storage.FileManager, pool *buffer.Manager) (*HeapFile, error) {
	if !fm.Exists(name) {
		if err := fm.Create(name); err != nil {
			return nil, err
		}
	}
	return &HeapFile{name: name, fm: fm, pool: pool}, nil
}

// SetLog attaches a write-ahead log; subsequent mutations through a
// non-nil TxnContext are logged with physical before/after images.
func (h *HeapFile) SetLog(l *wal.Log) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.log = l
}

// Name returns the file name.
func (h *HeapFile) Name() string { return h.name }

// MutatePage pins a page in pool, runs fn over it, and — when log and
// tx are both non-nil — appends one update record covering the page
// transition (the log decides between a minimal diff and a full page
// image per its full-page-write fence), stamps the page LSN, and
// registers the record with the transaction. It is the one WAL-logging
// protocol shared by every pool-based access method (heap files,
// B+trees).
func MutatePage(pool *buffer.Manager, log *wal.Log, tx TxnContext, pid storage.PageID, fn func(p *storage.Page) error) error {
	f, err := pool.Pin(pid)
	if err != nil {
		return err
	}
	page := f.Page()
	logging := log != nil && tx != nil
	var before []byte
	if logging {
		before = append([]byte(nil), page.Data...)
	}
	if err := fn(page); err != nil {
		_ = pool.Unpin(pid, false)
		return err
	}
	if logging {
		rec, err := log.AppendPageUpdate(tx.ID(), tx.LastLSN(), pid, before, page.Data)
		if err != nil {
			_ = pool.Unpin(pid, true)
			return err
		}
		if rec != nil {
			page.SetLSN(uint64(rec.LSN))
			tx.Record(rec)
		}
	}
	return pool.Unpin(pid, true)
}

// mutatePage applies fn to pid under the heap's pool and log.
func (h *HeapFile) mutatePage(tx TxnContext, pid storage.PageID, fn func(p *storage.Page) error) error {
	return MutatePage(h.pool, h.log, tx, pid, fn)
}

// Insert stores a record and returns its RID. With a non-nil tx the
// mutation is WAL-logged under that transaction.
func (h *HeapFile) Insert(tx TxnContext, rec []byte) (RID, error) {
	if len(rec) > maxRecordLen {
		return RID{}, fmt.Errorf("%w: %d bytes", ErrRecordTooLarge, len(rec))
	}
	h.mu.Lock()
	defer h.mu.Unlock()

	try := func(pid storage.PageID) (RID, bool, error) {
		var rid RID
		ok := false
		err := h.mutatePage(tx, pid, func(p *storage.Page) error {
			sp := Slotted(p)
			slot, err := sp.Insert(rec)
			if errors.Is(err, ErrPageFull) {
				return nil // not an error; just try elsewhere
			}
			if err != nil {
				return err
			}
			rid = RID{Page: pid, Slot: uint16(slot)}
			ok = true
			return nil
		})
		return rid, ok, err
	}

	// Pages with reclaimed space first, then the chain tail.
	for i := 0; i < len(h.freeHint); i++ {
		pid := h.freeHint[i]
		rid, ok, err := try(pid)
		if err != nil {
			return RID{}, err
		}
		if ok {
			return rid, nil
		}
		// Hint exhausted.
		h.freeHint = append(h.freeHint[:i], h.freeHint[i+1:]...)
		i--
	}
	if last, err := h.fm.LastPage(h.name); err == nil && last != storage.InvalidPageID {
		rid, ok, err := try(last)
		if err != nil {
			return RID{}, err
		}
		if ok {
			return rid, nil
		}
	}
	// Grow the file.
	pid, err := h.fm.AppendPage(h.name, storage.PageTypeHeap)
	if err != nil {
		return RID{}, err
	}
	var rid RID
	err = h.mutatePage(tx, pid, func(p *storage.Page) error {
		sp := InitSlotted(p)
		slot, err := sp.Insert(rec)
		if err != nil {
			return err
		}
		rid = RID{Page: pid, Slot: uint16(slot)}
		return nil
	})
	if err != nil {
		return RID{}, err
	}
	// The file manager WAL-logs the directory update and chain links of
	// the appended page under a system transaction, so recovery reaches
	// this page without any eager flush here.
	return rid, nil
}

// Get returns a copy of the record at rid.
func (h *HeapFile) Get(rid RID) ([]byte, error) {
	f, err := h.pool.Pin(rid.Page)
	if err != nil {
		return nil, err
	}
	defer h.pool.Unpin(rid.Page, false)
	sp := Slotted(f.Page())
	rec, err := sp.Get(int(rid.Slot))
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), rec...), nil
}

// Delete removes the record at rid.
func (h *HeapFile) Delete(tx TxnContext, rid RID) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	err := h.mutatePage(tx, rid.Page, func(p *storage.Page) error {
		return Slotted(p).Delete(int(rid.Slot))
	})
	if err != nil {
		return err
	}
	h.noteFreeLocked(rid.Page)
	return nil
}

func (h *HeapFile) noteFreeLocked(pid storage.PageID) {
	for _, f := range h.freeHint {
		if f == pid {
			return
		}
	}
	h.freeHint = append(h.freeHint, pid)
}

// Update replaces the record at rid. When the new record no longer fits
// its page, the record moves: the old slot is deleted and the new
// location returned.
func (h *HeapFile) Update(tx TxnContext, rid RID, rec []byte) (RID, error) {
	if len(rec) > maxRecordLen {
		return RID{}, fmt.Errorf("%w: %d bytes", ErrRecordTooLarge, len(rec))
	}
	h.mu.Lock()
	moved := false
	err := h.mutatePage(tx, rid.Page, func(p *storage.Page) error {
		err := Slotted(p).Update(int(rid.Slot), rec)
		if errors.Is(err, ErrPageFull) {
			moved = true
			return Slotted(p).Delete(int(rid.Slot))
		}
		return err
	})
	if err != nil {
		h.mu.Unlock()
		return RID{}, err
	}
	if !moved {
		h.mu.Unlock()
		return rid, nil
	}
	h.noteFreeLocked(rid.Page)
	h.mu.Unlock()
	return h.Insert(tx, rec)
}

// Scan iterates all records in chain order. The record slice passed to
// fn aliases the pinned page; fn must copy it to retain it.
func (h *HeapFile) Scan(fn func(rid RID, rec []byte) error) error {
	first, err := h.fm.FirstPage(h.name)
	if err != nil {
		return err
	}
	for pid := first; pid != storage.InvalidPageID; {
		f, err := h.pool.Pin(pid)
		if err != nil {
			return err
		}
		page := f.Page()
		sp := Slotted(page)
		next := page.Next()
		err = sp.Records(func(slot int, rec []byte) error {
			return fn(RID{Page: pid, Slot: uint16(slot)}, rec)
		})
		if uerr := h.pool.Unpin(pid, false); uerr != nil && err == nil {
			err = uerr
		}
		if err != nil {
			return err
		}
		pid = next
	}
	return nil
}

// Count returns the number of live records (full scan).
func (h *HeapFile) Count() (int, error) {
	n := 0
	err := h.Scan(func(RID, []byte) error { n++; return nil })
	return n, err
}

// Drop removes the heap file and its pages.
func (h *HeapFile) Drop() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.freeHint = nil
	return h.fm.Drop(h.name)
}
