package sbdms

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/netbind"
	"repro/internal/storage"
	"repro/internal/wal"
	"repro/internal/workload"
)

// KVMeasurement is one cell of the granularity study (experiment G1):
// throughput and tail latency of a KV workload at one (granularity,
// binding) configuration.
type KVMeasurement struct {
	Granularity Granularity
	Binding     string
	Ops         int
	Elapsed     time.Duration
	OpsPerSec   float64
	P50, P99    time.Duration
	Failures    int
}

// String renders the measurement as a result-table row.
func (m KVMeasurement) String() string {
	return fmt.Sprintf("%-11s %-8s ops=%-8d thr=%10.0f op/s  p50=%-10v p99=%-10v fail=%d",
		m.Granularity, m.Binding, m.Ops, m.OpsPerSec, m.P50, m.P99, m.Failures)
}

// MeasureKV drives a generated KV workload through the DB's configured
// service path and reports throughput and latency percentiles.
func MeasureKV(db *DB, gen *workload.KVGen, nops int) KVMeasurement {
	m := KVMeasurement{Granularity: db.Granularity(), Binding: "local", Ops: nops}
	if db.opts.Binding != nil {
		m.Binding = db.opts.Binding.Protocol()
	}
	lat := make([]time.Duration, 0, nops)
	start := time.Now()
	for i := 0; i < nops; i++ {
		op := gen.Next()
		t0 := time.Now()
		var err error
		switch op.Kind {
		case workload.OpRead:
			_, err = db.Get(op.Key)
			if err != nil && err.Error() != "" {
				// Reads of never-written keys are expected misses, not
				// failures, in a fresh store.
				if isNotFound(err) {
					err = nil
				}
			}
		case workload.OpWrite:
			err = db.Put(op.Key, op.Val)
		case workload.OpScan:
			_, err = db.ScanKeys(op.Key, op.ScanLen)
		}
		lat = append(lat, time.Since(t0))
		if err != nil {
			m.Failures++
		}
	}
	m.Elapsed = time.Since(start)
	m.OpsPerSec = float64(nops) / m.Elapsed.Seconds()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	if len(lat) > 0 {
		m.P50 = lat[len(lat)/2]
		m.P99 = lat[len(lat)*99/100]
	}
	return m
}

func isNotFound(err error) bool {
	for e := err; e != nil; {
		if e == ErrKeyNotFound {
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			// Remote errors arrive flattened to strings.
			return containsNotFound(err.Error())
		}
		e = u.Unwrap()
	}
	return false
}

func containsNotFound(s string) bool {
	const marker = "key not found"
	for i := 0; i+len(marker) <= len(s); i++ {
		if s[i:i+len(marker)] == marker {
			return true
		}
	}
	return false
}

// Preload inserts the full key space so that read-mostly mixes hit.
func Preload(db *DB, keys, valSize int) error {
	val := make([]byte, valSize)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	for i := 0; i < keys; i++ {
		if err := db.Put(workload.Key(i), val); err != nil {
			return err
		}
	}
	return nil
}

// ConcurrencyMeasurement is one cell of the G6 concurrency-scaling
// experiment: throughput of a read/write KV mix at a given goroutine
// count, against the latch-crabbed, per-key-locked engine.
type ConcurrencyMeasurement struct {
	Goroutines int
	ReadPct    int // percentage of Gets in the mix
	Ops        int
	Elapsed    time.Duration
	OpsPerSec  float64
	Conflicts  int // retryable deadlock-victim aborts (retried)
	Failures   int
}

// String renders the measurement as a result-table row.
func (m ConcurrencyMeasurement) String() string {
	return fmt.Sprintf("goroutines=%-3d read%%=%-3d ops=%-8d thr=%10.0f op/s  conflicts=%-4d fail=%d",
		m.Goroutines, m.ReadPct, m.Ops, m.OpsPerSec, m.Conflicts, m.Failures)
}

// ConcurrencyScaling drives nops operations split across g goroutines
// over a shared key space (readPct percent Gets, the rest Puts) and
// measures aggregate throughput. Deadlock-victim conflicts are retried
// once and counted. Preload the key space first so reads hit.
func ConcurrencyScaling(db *DB, g, keys, nops, readPct int, seed int64) ConcurrencyMeasurement {
	m := ConcurrencyMeasurement{Goroutines: g, ReadPct: readPct, Ops: nops}
	per := nops / g
	if per < 1 {
		per = 1
	}
	m.Ops = per * g
	var conflicts, failures int64
	val := []byte("concurrency-scaling-value-0123456789")
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < g; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			for i := 0; i < per; i++ {
				k := workload.Key(rng.Intn(keys))
				var err error
				if rng.Intn(100) < readPct {
					_, err = db.Get(k)
					if err != nil && isNotFound(err) {
						err = nil
					}
				} else {
					err = db.Put(k, val)
					if IsConflict(err) {
						atomic.AddInt64(&conflicts, 1)
						err = db.Put(k, val) // retryable by contract
					}
				}
				if err != nil {
					atomic.AddInt64(&failures, 1)
				}
			}
		}()
	}
	wg.Wait()
	m.Elapsed = time.Since(start)
	m.Conflicts = int(conflicts)
	m.Failures = int(failures)
	if m.Elapsed > 0 {
		m.OpsPerSec = float64(m.Ops) / m.Elapsed.Seconds()
	}
	return m
}

// ScanTaxMeasurement is one cell of the G7 serializable-scan-tax
// experiment: a mixed scan/write workload at one isolation level.
// WriteP99 is the fairness probe — a write's latency is dominated by
// how long its X (and gap) locks wait behind the scan stream's S locks,
// so a fair FIFO lock manager bounds it while a barging one lets it
// grow without bound. TornScans counts scans that observed one endpoint
// of an atomic batch but not the other: expected > 0 at
// read-committed, structurally 0 at serializable.
type ScanTaxMeasurement struct {
	Isolation ScanIsolation
	// SnapshotScans marks the MVCC row: scanners use ScanKeysSnapshot
	// (lock-free consistent cuts) instead of the locking scan path, so
	// writers never wait behind the scan stream at any isolation.
	SnapshotScans bool
	// ScanPace is the scanners' duty cycle (0 = back-to-back): each
	// scanner starts at most one scan per pace. Pacing holds the scan
	// load constant across rows, so the writer-latency delta isolates
	// lock interference instead of CPU saturation differences.
	ScanPace                  time.Duration
	Scanners                  int
	Writers                   int
	Scans                     int
	Writes                    int
	TornScans                 int
	Conflicts                 int // deadlock-victim retries (scans and writes)
	Failures                  int
	Elapsed                   time.Duration
	ScanP50, ScanP99          time.Duration
	WriteP50, WriteP99        time.Duration
	ScansPerSec, WritesPerSec float64
}

// String renders the measurement as a result-table row.
func (m ScanTaxMeasurement) String() string {
	label := string(m.Isolation)
	if m.SnapshotScans {
		label += "+snap"
	}
	return fmt.Sprintf("%-14s scan: %6d ops %8.0f/s p50=%-9v p99=%-9v  write: %6d ops %8.0f/s p50=%-9v p99=%-9v  torn=%-3d conflicts=%-4d fail=%d",
		label, m.Scans, m.ScansPerSec, m.ScanP50, m.ScanP99,
		m.Writes, m.WritesPerSec, m.WriteP50, m.WriteP99,
		m.TornScans, m.Conflicts, m.Failures)
}

func pctl(lat []time.Duration, p int) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return lat[len(lat)*p/100]
}

// ScanIsolationTax runs the G7 workload at one isolation level:
// `scanners` goroutines repeatedly scan a filler range while `writers`
// goroutines interleave single-key puts into that range with atomic
// two-endpoint batches across it (the phantom probe). It reports scan
// and write latency distributions, throughput, and how many scans saw
// a torn batch.
func ScanIsolationTax(iso ScanIsolation, scanners, writers, fillers, writesPer int, seed int64) (ScanTaxMeasurement, error) {
	return scanTax(iso, false, 0, scanners, writers, fillers, writesPer, seed)
}

// ScanIsolationTaxPaced is ScanIsolationTax with a scanner duty
// cycle: each scanner starts at most one scan per pace, modelling the
// motivating workload (a periodic long analytical scan over an OLTP
// write stream) and keeping the scan load identical across isolation
// rows so writer latencies compare like for like.
func ScanIsolationTaxPaced(iso ScanIsolation, pace time.Duration, scanners, writers, fillers, writesPer int, seed int64) (ScanTaxMeasurement, error) {
	return scanTax(iso, false, pace, scanners, writers, fillers, writesPer, seed)
}

// ScanSnapshotTax runs the G7 workload with the scanners moved onto
// the MVCC snapshot path (ScanKeysSnapshot): each scan reads one
// consistent commit-timestamp cut without touching the lock manager,
// so it can never tear a batch AND never queues a writer behind scan
// S locks — the interference the locked rows measure disappears.
// Writers keep per-key 2PL at the given isolation unchanged.
func ScanSnapshotTax(iso ScanIsolation, pace time.Duration, scanners, writers, fillers, writesPer int, seed int64) (ScanTaxMeasurement, error) {
	return scanTax(iso, true, pace, scanners, writers, fillers, writesPer, seed)
}

func scanTax(iso ScanIsolation, snapshot bool, pace time.Duration, scanners, writers, fillers, writesPer int, seed int64) (ScanTaxMeasurement, error) {
	m := ScanTaxMeasurement{Isolation: iso, SnapshotScans: snapshot, ScanPace: pace, Scanners: scanners, Writers: writers}
	db, err := Open(Options{
		Granularity:   Monolithic,
		BufferFrames:  2048,
		ScanIsolation: iso,
	})
	if err != nil {
		return m, err
	}
	defer db.Close(context.Background())
	for i := 0; i < fillers; i++ {
		if err := db.Put(fmt.Sprintf("g7-m-%06d", i), []byte("filler-value")); err != nil {
			return m, err
		}
	}

	var mu sync.Mutex
	var scanLat, writeLat []time.Duration
	var torn, conflicts, failures, scans, writes int64
	var writersLive atomic.Int64
	writersLive.Store(int64(writers))
	start := time.Now()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer writersLive.Add(-1)
			rng := rand.New(rand.NewSource(seed + int64(w)))
			val := []byte("g7-write-value-0123456789")
			for i := 0; i < writesPer; i++ {
				var err error
				t0 := time.Now()
				if i%4 == 0 {
					// Atomic batch spanning the scanned range: the
					// endpoints bracket every filler, so a torn view is
					// detectable by any scan.
					r := int64(w)*int64(writesPer) + int64(i)
					keys := []string{fmt.Sprintf("g7-a-%012d", r), fmt.Sprintf("g7-z-%012d", r)}
					err = db.PutBatch(keys, [][]byte{val, val})
				} else {
					err = db.Put(fmt.Sprintf("g7-m-%06d", rng.Intn(fillers)), val)
				}
				if IsConflict(err) {
					atomic.AddInt64(&conflicts, 1)
					i-- // retry the slot: conflicts are part of the tax, not lost work
					continue
				}
				d := time.Since(t0)
				if err != nil {
					atomic.AddInt64(&failures, 1)
					continue
				}
				atomic.AddInt64(&writes, 1)
				mu.Lock()
				writeLat = append(writeLat, d)
				mu.Unlock()
			}
		}()
	}
	for s := 0; s < scanners; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			paceSleep := func(cycle time.Time) {
				if pace > 0 {
					if rest := pace - time.Since(cycle); rest > 0 {
						time.Sleep(rest)
					}
				}
			}
			for writersLive.Load() > 0 {
				t0 := time.Now()
				var keys []string
				var err error
				if snapshot {
					keys, err = db.ScanKeysSnapshot("g7-", 1_000_000)
				} else {
					keys, err = db.ScanKeys("g7-", 1_000_000)
				}
				d := time.Since(t0)
				if IsConflict(err) {
					atomic.AddInt64(&conflicts, 1)
					paceSleep(t0)
					continue
				}
				if err != nil {
					atomic.AddInt64(&failures, 1)
					paceSleep(t0)
					continue
				}
				atomic.AddInt64(&scans, 1)
				// A batch is torn when exactly one endpoint is visible.
				seen := map[string]int{}
				for _, k := range keys {
					if strings.HasPrefix(k, "g7-a-") {
						seen[k[len("g7-a-"):]]++
					}
					if strings.HasPrefix(k, "g7-z-") {
						seen[k[len("g7-z-"):]]++
					}
				}
				for _, n := range seen {
					if n == 1 {
						atomic.AddInt64(&torn, 1)
						break
					}
				}
				mu.Lock()
				scanLat = append(scanLat, d)
				mu.Unlock()
				paceSleep(t0)
			}
		}()
	}
	wg.Wait()
	m.Elapsed = time.Since(start)
	m.Scans = int(scans)
	m.Writes = int(writes)
	m.TornScans = int(torn)
	m.Conflicts = int(conflicts)
	m.Failures = int(failures)
	m.ScanP50, m.ScanP99 = pctl(scanLat, 50), pctl(scanLat, 99)
	m.WriteP50, m.WriteP99 = pctl(writeLat, 50), pctl(writeLat, 99)
	if m.Elapsed > 0 {
		m.ScansPerSec = float64(m.Scans) / m.Elapsed.Seconds()
		m.WritesPerSec = float64(m.Writes) / m.Elapsed.Seconds()
	}
	return m, nil
}

// SoakConfig configures one run of the G9 write-path soak: a long
// mixed workload at serializable isolation with fuzzy checkpoints,
// segment truncation and MVCC vacuum running throughout, exercised
// once per write-path fix gate so BENCH_G9.json records before/after
// row pairs on the same host.
type SoakConfig struct {
	// Keys sizes the preloaded uniform key space (the g9-m- fillers the
	// mixed phase updates and scans).
	Keys int
	// Writers is the number of concurrent writer goroutines per phase.
	Writers int
	// AppendOps and MixedOps are the total committed writes of the
	// append-heavy and uniform-mixed phases.
	AppendOps, MixedOps int
	// ValSize is the value payload size.
	ValSize int
	// CheckpointEvery paces the explicit fuzzy-checkpoint ticker that
	// runs during both phases (0 = 50ms).
	CheckpointEvery time.Duration
	// VacuumEvery paces the background MVCC vacuum (0 = 100ms).
	VacuumEvery time.Duration
	Seed        int64

	// The three write-path fix gates. True/false/false is the fast
	// configuration; each fallback row of BENCH_G9.json flips one.
	OptimisticDescent     bool
	AppendDowngrade       bool
	InlineCheckpointFlush bool
}

func (c *SoakConfig) defaults() {
	if c.Keys <= 0 {
		c.Keys = 5000
	}
	if c.Writers <= 0 {
		c.Writers = 8
	}
	if c.AppendOps <= 0 {
		c.AppendOps = 8000
	}
	if c.MixedOps <= 0 {
		c.MixedOps = 8000
	}
	if c.ValSize <= 0 {
		c.ValSize = 64
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 50 * time.Millisecond
	}
	if c.VacuumEvery <= 0 {
		c.VacuumEvery = 100 * time.Millisecond
	}
}

// SoakMeasurement is one (config, phase) row of the G9 soak.
type SoakMeasurement struct {
	// Phase is "append-heavy" (fresh keys inserted past the right edge
	// of the index, all writers contending the end-of-index gap) or
	// "uniform-mixed" (Zipfian updates, scattered fresh inserts and
	// point reads over the preloaded key space).
	Phase string
	// Label names the fix gate this row belongs to in a before/after
	// pair, e.g. "append-downgrade=on".
	Label string
	// Gate settings of the run, recorded per row for honesty.
	OptimisticDescent, AppendDowngrade bool
	InlineCheckpointFlush              bool

	Writers             int
	Ops                 int // committed writes
	Elapsed             time.Duration
	OpsPerSec           float64
	P50, P99            time.Duration // writer-observed write latency
	Conflicts           int           // retryable deadlock-victim aborts (retried)
	Failures            int
	Scans               int // verifier scans completed
	TornScans           int // scans seeing one endpoint of an atomic pair: must be 0
	Anomalies           int // other isolation anomalies (duplicate keys in one scan): must be 0
	Checkpoints         int
	CkptP50, CkptP99    time.Duration // DB.Checkpoint caller stall
	DescentFallbacks    uint64        // optimistic descents that fell back to X-crab
	VacuumKeysReclaimed uint64
}

// String renders the measurement as a result-table row.
func (m SoakMeasurement) String() string {
	return fmt.Sprintf("%-13s %-25s writers=%-2d ops=%-7d thr=%9.0f op/s p50=%-9v p99=%-9v ckpt(n=%d p99=%v) torn=%d anom=%d conflicts=%d fail=%d fallbacks=%d",
		m.Phase, m.Label, m.Writers, m.Ops, m.OpsPerSec, m.P50, m.P99,
		m.Checkpoints, m.CkptP99, m.TornScans, m.Anomalies, m.Conflicts, m.Failures, m.DescentFallbacks)
}

// Soak runs the G9 write-path soak once at the given fix gates and
// returns one measurement per phase. The whole run happens on one DB
// instance: preload, then an append-heavy phase (every writer inserts
// globally increasing fresh keys, so at serializable isolation all of
// them take the end-of-index next-key gap lock), then a uniform-mixed
// phase (Zipfian updates of preloaded keys, uniformly scattered fresh
// inserts — the optimistic-descent showcase — and point reads). A
// checkpoint ticker and the background vacuum run throughout, so WAL
// truncation, opportunistic write-back and version reclamation all
// happen under load; a verifier goroutine continuously scans an
// atomic-pair probe range and counts torn pairs and duplicate-key
// anomalies, both of which must be zero at serializable isolation.
func Soak(cfg SoakConfig) ([]SoakMeasurement, error) {
	cfg.defaults()
	// File-backed data and WAL: the costs the three fixes remove —
	// holding a gap lock across a commit fsync, stalling the checkpoint
	// caller on a dirty-page flush — only exist when syncs are real.
	dir, err := os.MkdirTemp("", "sbdms-g9-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	dev, err := storage.OpenFileDevice(filepath.Join(dir, "data.db"))
	if err != nil {
		return nil, err
	}
	segs, err := wal.NewFileSegmentDir(filepath.Join(dir, "wal"))
	if err != nil {
		return nil, err
	}
	db, err := Open(Options{
		Device:                   dev,
		LogDir:                   segs,
		Granularity:              Monolithic,
		BufferFrames:             4096,
		ScanIsolation:            Serializable,
		WALSegmentBytes:          1 << 20,
		VacuumInterval:           cfg.VacuumEvery,
		DisableOptimisticDescent: !cfg.OptimisticDescent,
		DisableAppendDowngrade:   !cfg.AppendDowngrade,
		InlineCheckpointFlush:    cfg.InlineCheckpointFlush,
	})
	if err != nil {
		return nil, err
	}
	defer db.Close(context.Background())
	val := make([]byte, cfg.ValSize)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	for i := 0; i < cfg.Keys; i++ {
		if err := db.Put(fmt.Sprintf("g9-m-%08d", i), val); err != nil {
			return nil, err
		}
	}

	row := func(phase, label string) SoakMeasurement {
		return SoakMeasurement{
			Phase:                 phase,
			Label:                 label,
			OptimisticDescent:     cfg.OptimisticDescent,
			AppendDowngrade:       cfg.AppendDowngrade,
			InlineCheckpointFlush: cfg.InlineCheckpointFlush,
			Writers:               cfg.Writers,
		}
	}

	var appendCtr atomic.Int64 // globally increasing append suffix
	appendPhase := func(m *SoakMeasurement) error {
		return soakPhase(db, cfg, m, func(_ *rand.Rand, i int) error {
			// Fresh key past everything: "z" sorts after every other g9
			// prefix, so the insert's next-key gap is the end-of-index
			// sentinel — the lock the downgrade is about.
			return db.Put(fmt.Sprintf("g9-z-%016d", appendCtr.Add(1)), val)
		})
	}
	mixedPhase := func(m *SoakMeasurement) error {
		return soakPhase(db, cfg, m, func(rng *rand.Rand, i int) error {
			switch r := rng.Intn(10); {
			case r < 4: // Zipfian-ish update of a hot preloaded key
				hot := rng.Intn(cfg.Keys/8 + 1)
				return db.Put(fmt.Sprintf("g9-m-%08d", hot), val)
			case r < 7: // uniformly scattered fresh insert (descent showcase)
				return db.Put(fmt.Sprintf("g9-f-%08x", rng.Uint32()), val)
			case r < 9: // point read
				_, err := db.Get(fmt.Sprintf("g9-m-%08d", rng.Intn(cfg.Keys)))
				if err != nil && isNotFound(err) {
					return nil
				}
				return err
			default: // delete + reinsert churn feeding the vacuum
				k := fmt.Sprintf("g9-m-%08d", rng.Intn(cfg.Keys))
				if err := db.DeleteKey(k); err != nil && !isNotFound(err) {
					return err
				}
				return db.Put(k, val)
			}
		})
	}

	out := make([]SoakMeasurement, 0, 2)
	for _, ph := range []struct {
		name  string
		label string
		ops   int
		run   func(*SoakMeasurement) error
	}{
		{"append-heavy", "append-downgrade=" + onOff(cfg.AppendDowngrade), cfg.AppendOps, appendPhase},
		{"uniform-mixed", "optimistic-descent=" + onOff(cfg.OptimisticDescent) + " checkpoint-flush=" + flushMode(cfg.InlineCheckpointFlush), cfg.MixedOps, mixedPhase},
	} {
		m := row(ph.name, ph.label)
		m.Ops = ph.ops
		fb0 := db.kv.idx.DescentFallbacks()
		if err := ph.run(&m); err != nil {
			return nil, err
		}
		m.DescentFallbacks = db.kv.idx.DescentFallbacks() - fb0
		out = append(out, m)
	}
	stats, _, err := db.VacuumStatus()
	if err == nil {
		for i := range out {
			out[i].VacuumKeysReclaimed = uint64(stats.KeysRemoved)
		}
	}
	return out, nil
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

func flushMode(inline bool) string {
	if inline {
		return "inline"
	}
	return "background"
}

// soakPhase drives one measured soak phase: cfg.Writers goroutines
// split m.Ops writes of op between them while a checkpoint ticker, the
// pair prober and the torn-scan verifier run alongside. Writer latency
// percentiles, checkpoint-caller stalls and anomaly counters land in m.
func soakPhase(db *DB, cfg SoakConfig, m *SoakMeasurement, op func(rng *rand.Rand, i int) error) error {
	per := m.Ops / cfg.Writers
	if per < 1 {
		per = 1
	}
	m.Ops = per * cfg.Writers
	var mu sync.Mutex
	var wlat, clat []time.Duration
	var conflicts, failures, scans, torn, anomalies, ckpts int64
	var opErr error
	stop := make(chan struct{})

	var bg sync.WaitGroup
	// Checkpoint ticker: fuzzy checkpoints (and the truncation they
	// license) keep running under full write load; the recorded stall is
	// the caller-visible cost the background flusher is meant to remove.
	bg.Add(1)
	go func() {
		defer bg.Done()
		t := time.NewTicker(cfg.CheckpointEvery)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				t0 := time.Now()
				if _, err := db.Checkpoint(); err != nil {
					continue // busy device: next tick retries
				}
				d := time.Since(t0)
				atomic.AddInt64(&ckpts, 1)
				mu.Lock()
				clat = append(clat, d)
				mu.Unlock()
			}
		}
	}()
	// Pair prober: atomic two-key batches into a dedicated probe range.
	bg.Add(1)
	go func() {
		defer bg.Done()
		val := []byte("g9-pair")
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			keys := []string{fmt.Sprintf("g9-pa-%09d", i), fmt.Sprintf("g9-pb-%09d", i)}
			err := db.PutBatch(keys, [][]byte{val, val})
			if IsConflict(err) {
				continue
			}
			if err != nil {
				atomic.AddInt64(&failures, 1)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	// Verifier: serializable scans over the probe range; a pair with
	// exactly one visible endpoint is a torn batch, a duplicate key in
	// one scan is an anomaly. Both must stay zero.
	bg.Add(1)
	go func() {
		defer bg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			keys, err := db.ScanKeys("g9-pa-", 1_000_000)
			if IsConflict(err) {
				continue
			}
			if err != nil {
				atomic.AddInt64(&failures, 1)
				return
			}
			atomic.AddInt64(&scans, 1)
			seen := map[string]int{}
			dup := false
			prev := ""
			for _, k := range keys {
				if k == prev {
					dup = true
				}
				prev = k
				if strings.HasPrefix(k, "g9-pa-") {
					seen[k[len("g9-pa-"):]]++
				}
				if strings.HasPrefix(k, "g9-pb-") {
					seen[k[len("g9-pb-"):]]++
				}
			}
			for _, n := range seen {
				if n == 1 {
					atomic.AddInt64(&torn, 1)
					break
				}
			}
			if dup {
				atomic.AddInt64(&anomalies, 1)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
			for i := 0; i < per; i++ {
				t0 := time.Now()
				err := op(rng, w*per+i)
				if IsConflict(err) {
					atomic.AddInt64(&conflicts, 1)
					i-- // retry the slot: conflicts are tax, not lost work
					continue
				}
				d := time.Since(t0)
				if err != nil {
					atomic.AddInt64(&failures, 1)
					mu.Lock()
					if opErr == nil {
						opErr = err
					}
					mu.Unlock()
					return
				}
				mu.Lock()
				wlat = append(wlat, d)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	m.Elapsed = time.Since(start)
	close(stop)
	bg.Wait()

	if opErr != nil {
		return opErr
	}
	m.Conflicts = int(conflicts)
	m.Failures = int(failures)
	m.Scans = int(scans)
	m.TornScans = int(torn)
	m.Anomalies = int(anomalies)
	m.Checkpoints = int(ckpts)
	m.P50, m.P99 = pctl(wlat, 50), pctl(wlat, 99)
	m.CkptP50, m.CkptP99 = pctl(clat, 50), pctl(clat, 99)
	if m.Elapsed > 0 {
		m.OpsPerSec = float64(m.Ops) / m.Elapsed.Seconds()
	}
	return nil
}

// MeasureTCPRoundTrip measures the real cost of one service invocation
// over the TCP binding on loopback: an echo service is served via
// netbind and invoked n times. The granularity sweep uses this measured
// value as the per-hop delay of its "tcp" rows (a full multi-process
// decomposition is demonstrated separately in examples/distributed).
func MeasureTCPRoundTrip(n int) (time.Duration, error) {
	reg := core.NewRegistry(nil)
	svc := core.NewService("echo", &core.Contract{
		Interface:  "bench.Echo",
		Operations: []core.OpSpec{{Name: "echo", In: "string", Out: "string"}},
	})
	svc.Handle("echo", func(ctx context.Context, req any) (any, error) { return req, nil })
	if err := svc.Start(context.Background()); err != nil {
		return 0, err
	}
	if err := reg.RegisterService(svc, nil); err != nil {
		return 0, err
	}
	srv, err := netbind.Serve(reg, "")
	if err != nil {
		return 0, err
	}
	defer srv.Close()
	client := netbind.NewClient(srv.Addr())
	defer client.Close()
	ctx := context.Background()
	// Warm the connection.
	if _, err := client.Call(ctx, "echo", "echo", "warm"); err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, err := client.Call(ctx, "echo", "echo", "x"); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(n), nil
}

// SweepStorage carries the storage-concurrency knobs of a granularity
// sweep, so experiment G1 can ablate storage configuration (buffer
// sharding, WAL group commit) against service granularity instead of
// holding storage fixed.
type SweepStorage struct {
	// BufferFrames sizes the pool (0 = 512, the classic G1 setting).
	BufferFrames int
	// BufferShards overrides the pool's lock-stripe count (0 = auto).
	BufferShards int
	// EnableWAL turns logging on for the sweep; the WAL fields below
	// only apply when set. The classic G1 sweep runs unlogged.
	EnableWAL bool
	// WALGroupWindow, WALGroupBytes, WALCommitSiblings,
	// WALSegmentBytes and CheckpointInterval mirror the same fields of
	// Options.
	WALGroupWindow     time.Duration
	WALGroupBytes      int
	WALCommitSiblings  int
	WALSegmentBytes    int
	CheckpointInterval time.Duration
}

// GranularitySweep runs experiment G1: every granularity profile under
// the local binding and under a per-hop delay calibrated from the real
// TCP round-trip. Returns one measurement per cell.
func GranularitySweep(mix workload.Mix, keys, nops int, seed int64) ([]KVMeasurement, error) {
	return GranularitySweepStorage(mix, keys, nops, seed, SweepStorage{})
}

// GranularitySweepStorage is GranularitySweep with explicit storage
// knobs, crossing the paper's granularity axis with the storage
// concurrency axis (ROADMAP: "thread BufferShards/WAL knobs into the
// G1 sweeps").
func GranularitySweepStorage(mix workload.Mix, keys, nops int, seed int64, st SweepStorage) ([]KVMeasurement, error) {
	rtt, err := MeasureTCPRoundTrip(200)
	if err != nil {
		return nil, err
	}
	frames := st.BufferFrames
	if frames <= 0 {
		frames = 512
	}
	var out []KVMeasurement
	for _, binding := range []struct {
		name string
		bind core.Binding
	}{
		{"local", nil},
		{fmt.Sprintf("tcp(%v)", rtt.Round(time.Microsecond)), core.DelayBinding{Delay: rtt}},
	} {
		for _, g := range Granularities {
			db, err := Open(Options{
				Granularity:        g,
				BufferFrames:       frames,
				BufferShards:       st.BufferShards,
				Binding:            binding.bind,
				DisableWAL:         !st.EnableWAL,
				WALGroupWindow:     st.WALGroupWindow,
				WALGroupBytes:      st.WALGroupBytes,
				WALCommitSiblings:  st.WALCommitSiblings,
				WALSegmentBytes:    st.WALSegmentBytes,
				CheckpointInterval: st.CheckpointInterval,
			})
			if err != nil {
				return nil, err
			}
			if err := Preload(db, keys, 100); err != nil {
				return nil, err
			}
			gen := workload.NewKV(workload.KVConfig{Seed: seed, Keys: keys, Mix: mix, Zipfian: true})
			m := MeasureKV(db, gen, nops)
			m.Binding = binding.name
			out = append(out, m)
			if err := db.Close(context.Background()); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// BulkLoadConfig configures the G10 bulk-ingest study: time-to-load a
// large sorted-on-arrival-or-not key set through the Import fast path,
// compared against a chunked PutBatch loop and a per-key Put loop on
// identical fresh file-backed engines.
type BulkLoadConfig struct {
	// Keys is the total load size for the import and putBatch rows.
	Keys int
	// PutLoopKeys caps the per-key Put row (default min(Keys, 20000)):
	// one transaction and one commit force per key makes the full size
	// pointless to wait out — the per-key rate is what the row reports.
	PutLoopKeys int
	// BatchSize is the PutBatch chunk (default 10000 keys per call).
	BatchSize int
	// ValSize is the value payload size (default 64).
	ValSize int
	// CheckpointInterval paces background fuzzy checkpoints so the
	// on-disk WAL stays bounded during the load (default 200ms; WAL
	// byte counts come from LSN deltas and are unaffected by
	// truncation).
	CheckpointInterval time.Duration
	Seed               int64
}

func (c *BulkLoadConfig) defaults() {
	if c.Keys <= 0 {
		c.Keys = 200000
	}
	if c.PutLoopKeys <= 0 {
		c.PutLoopKeys = 20000
	}
	if c.PutLoopKeys > c.Keys {
		c.PutLoopKeys = c.Keys
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 10000
	}
	if c.ValSize <= 0 {
		c.ValSize = 64
	}
	if c.CheckpointInterval <= 0 {
		c.CheckpointInterval = 200 * time.Millisecond
	}
}

// BulkLoadMeasurement is one loader row of the G10 study.
type BulkLoadMeasurement struct {
	Method         string // import | putBatch-loop | put-loop
	Keys           int
	Elapsed        time.Duration
	KeysPerSec     float64
	WALBytes       uint64  // log bytes appended during the load (LSN delta)
	WALBytesPerKey float64 // the full-page-write economics headline
	Fallbacks      uint64  // import rows: must be 0 (fast path taken)
}

// String renders the measurement as a result-table row.
func (m BulkLoadMeasurement) String() string {
	return fmt.Sprintf("%-14s keys=%-8d elapsed=%-12v thr=%10.0f keys/s  wal=%8.1f MiB (%6.1f B/key)  fallbacks=%d",
		m.Method, m.Keys, m.Elapsed.Round(time.Millisecond), m.KeysPerSec,
		float64(m.WALBytes)/(1<<20), m.WALBytesPerKey, m.Fallbacks)
}

// bulkLoadData builds n random-order keys (Import sorts internally, so
// arrival order must not matter) with fixed-size values.
func bulkLoadData(n, valSize int, seed int64) ([]string, [][]byte) {
	keys := make([]string, n)
	vals := make([][]byte, n)
	val := make([]byte, valSize)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	for i := 0; i < n; i++ {
		keys[i] = fmt.Sprintf("g10-%09d", i)
		vals[i] = val
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(n, func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	return keys, vals
}

// BulkLoad runs one loader method on a fresh file-backed engine and
// returns its row. Every run verifies the loaded store (count plus
// sampled point reads) before the clock result counts.
func BulkLoad(cfg BulkLoadConfig, method string) (BulkLoadMeasurement, error) {
	cfg.defaults()
	m := BulkLoadMeasurement{Method: method, Keys: cfg.Keys}
	dir, err := os.MkdirTemp("", "sbdms-g10-")
	if err != nil {
		return m, err
	}
	defer os.RemoveAll(dir)
	dev, err := storage.OpenFileDevice(filepath.Join(dir, "data.db"))
	if err != nil {
		return m, err
	}
	segs, err := wal.NewFileSegmentDir(filepath.Join(dir, "wal"))
	if err != nil {
		return m, err
	}
	db, err := Open(Options{
		Device:             dev,
		LogDir:             segs,
		Granularity:        Monolithic,
		BufferFrames:       4096,
		WALSegmentBytes:    4 << 20,
		CheckpointInterval: cfg.CheckpointInterval,
	})
	if err != nil {
		return m, err
	}
	defer db.Close(context.Background())

	n := cfg.Keys
	if method == "put-loop" {
		n = cfg.PutLoopKeys
		m.Keys = n
	}
	keys, vals := bulkLoadData(n, cfg.ValSize, cfg.Seed)

	lsn0 := db.Log().NextLSN()
	start := time.Now()
	switch method {
	case "import":
		err = db.Import(keys, vals)
	case "putBatch-loop":
		for i := 0; i < n && err == nil; i += cfg.BatchSize {
			end := i + cfg.BatchSize
			if end > n {
				end = n
			}
			err = db.PutBatch(keys[i:end], vals[i:end])
		}
	case "put-loop":
		for i := 0; i < n && err == nil; i++ {
			err = db.Put(keys[i], vals[i])
		}
	default:
		err = fmt.Errorf("sbdms: unknown bulk-load method %q", method)
	}
	if err != nil {
		return m, err
	}
	m.Elapsed = time.Since(start)
	m.WALBytes = uint64(db.Log().NextLSN() - lsn0)
	m.Fallbacks = db.ImportFallbacks()
	if m.Elapsed > 0 {
		m.KeysPerSec = float64(n) / m.Elapsed.Seconds()
	}
	m.WALBytesPerKey = float64(m.WALBytes) / float64(n)

	// The clock only counts if the store actually holds the load.
	if got := db.KVLen(); got != uint64(n) {
		return m, fmt.Errorf("sbdms: %s loaded %d keys, want %d", method, got, n)
	}
	for i := 0; i < n; i += 1 + n/97 {
		v, err := db.Get(keys[i])
		if err != nil {
			return m, fmt.Errorf("sbdms: %s lost key %q: %w", method, keys[i], err)
		}
		if len(v) != cfg.ValSize {
			return m, fmt.Errorf("sbdms: %s key %q has %d-byte value, want %d", method, keys[i], len(v), cfg.ValSize)
		}
	}
	return m, nil
}
