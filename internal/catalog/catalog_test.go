package catalog

import (
	"errors"
	"testing"

	"repro/internal/access"
	"repro/internal/buffer"
	"repro/internal/storage"
)

func newCat(t *testing.T) (*Catalog, *storage.FileManager, *buffer.Manager) {
	t.Helper()
	d, err := storage.OpenDisk(storage.NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	pool := buffer.New(d, 32, buffer.NewLRU())
	fm, err := storage.OpenFileManager(pool)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Open(fm, pool)
	if err != nil {
		t.Fatal(err)
	}
	return c, fm, pool
}

func usersTable() *Table {
	return &Table{
		Name: "Users",
		Columns: []Column{
			{Name: "id", Type: access.TypeInt, NotNull: true},
			{Name: "name", Type: access.TypeString},
		},
	}
}

func TestCreateGetDropTable(t *testing.T) {
	c, _, _ := newCat(t)
	if err := c.CreateTable(usersTable()); err != nil {
		t.Fatal(err)
	}
	// Case-insensitive lookup.
	tbl, err := c.GetTable("users")
	if err != nil || tbl.Name != "Users" {
		t.Fatalf("GetTable = %v, %v", tbl, err)
	}
	if tbl.HeapFile == "" {
		t.Fatal("heap file must be assigned")
	}
	if err := c.CreateTable(usersTable()); !errors.Is(err, ErrTableExists) {
		t.Fatalf("err = %v", err)
	}
	if got := c.Tables(); len(got) != 1 || got[0] != "Users" {
		t.Fatalf("Tables = %v", got)
	}
	dropped, err := c.DropTable("USERS")
	if err != nil || dropped.Name != "Users" {
		t.Fatalf("Drop = %v, %v", dropped, err)
	}
	if _, err := c.GetTable("users"); !errors.Is(err, ErrNoTable) {
		t.Fatalf("err = %v", err)
	}
	if _, err := c.DropTable("users"); !errors.Is(err, ErrNoTable) {
		t.Fatalf("err = %v", err)
	}
}

func TestCreateTableValidation(t *testing.T) {
	c, _, _ := newCat(t)
	if err := c.CreateTable(&Table{Name: ""}); err == nil {
		t.Fatal("empty table must fail")
	}
	if err := c.CreateTable(&Table{Name: "t"}); err == nil {
		t.Fatal("no columns must fail")
	}
	dup := &Table{Name: "t", Columns: []Column{
		{Name: "a", Type: access.TypeInt}, {Name: "A", Type: access.TypeInt},
	}}
	if err := c.CreateTable(dup); err == nil {
		t.Fatal("duplicate column (case-insensitive) must fail")
	}
}

func TestColumnIndexAndIndexLookup(t *testing.T) {
	tbl := usersTable()
	if i, err := tbl.ColumnIndex("NAME"); err != nil || i != 1 {
		t.Fatalf("ColumnIndex = %d, %v", i, err)
	}
	if _, err := tbl.ColumnIndex("zzz"); !errors.Is(err, ErrNoColumn) {
		t.Fatalf("err = %v", err)
	}
	tbl.Indexes = []IndexDef{{Name: "idx", Column: "id", MetaPage: 9}}
	if ix, ok := tbl.Index("ID"); !ok || ix.MetaPage != 9 {
		t.Fatalf("Index = %+v, %v", ix, ok)
	}
	if _, ok := tbl.Index("name"); ok {
		t.Fatal("no index on name")
	}
}

func TestAddDropIndex(t *testing.T) {
	c, _, _ := newCat(t)
	if err := c.CreateTable(usersTable()); err != nil {
		t.Fatal(err)
	}
	def := IndexDef{Name: "idx_id", Column: "id", MetaPage: 7, Unique: true}
	if err := c.AddIndex("users", def); err != nil {
		t.Fatal(err)
	}
	if err := c.AddIndex("users", def); !errors.Is(err, ErrIndexExists) {
		t.Fatalf("err = %v", err)
	}
	if err := c.AddIndex("users", IndexDef{Name: "idx2", Column: "nope"}); !errors.Is(err, ErrNoColumn) {
		t.Fatalf("err = %v", err)
	}
	if err := c.AddIndex("ghost", def); !errors.Is(err, ErrNoTable) {
		t.Fatalf("err = %v", err)
	}
	got, table, err := c.DropIndex("IDX_ID")
	if err != nil || got.MetaPage != 7 || table != "Users" {
		t.Fatalf("DropIndex = %+v, %s, %v", got, table, err)
	}
	if _, _, err := c.DropIndex("idx_id"); !errors.Is(err, ErrNoIndex) {
		t.Fatalf("err = %v", err)
	}
}

func TestViews(t *testing.T) {
	c, _, _ := newCat(t)
	if err := c.CreateView(&View{Name: "v1", Query: "SELECT 1"}); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateView(&View{Name: "V1", Query: "SELECT 2"}); !errors.Is(err, ErrViewExists) {
		t.Fatalf("err = %v", err)
	}
	v, err := c.GetView("v1")
	if err != nil || v.Query != "SELECT 1" {
		t.Fatalf("GetView = %v, %v", v, err)
	}
	if got := c.Views(); len(got) != 1 {
		t.Fatalf("Views = %v", got)
	}
	if err := c.DropView("v1"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropView("v1"); !errors.Is(err, ErrNoView) {
		t.Fatalf("err = %v", err)
	}
}

func TestCatalogPersistence(t *testing.T) {
	d, _ := storage.OpenDisk(storage.NewMemDevice())
	pool := buffer.New(d, 32, buffer.NewLRU())
	fm, _ := storage.OpenFileManager(pool)
	c, err := Open(fm, pool)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable(usersTable()); err != nil {
		t.Fatal(err)
	}
	if err := c.AddIndex("users", IndexDef{Name: "idx", Column: "id", MetaPage: 3}); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateView(&View{Name: "v", Query: "SELECT id FROM users"}); err != nil {
		t.Fatal(err)
	}
	// Reopen over the same storage: everything must be back.
	c2, err := Open(fm, pool)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := c2.GetTable("users")
	if err != nil || len(tbl.Columns) != 2 || len(tbl.Indexes) != 1 {
		t.Fatalf("reloaded table = %+v, %v", tbl, err)
	}
	if tbl.Indexes[0].MetaPage != 3 {
		t.Fatalf("index meta lost: %+v", tbl.Indexes[0])
	}
	if _, err := c2.GetView("v"); err != nil {
		t.Fatal("view lost")
	}
	// Drops persist too.
	if _, err := c2.DropTable("users"); err != nil {
		t.Fatal(err)
	}
	c3, err := Open(fm, pool)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c3.GetTable("users"); !errors.Is(err, ErrNoTable) {
		t.Fatal("drop did not persist")
	}
	if _, err := c3.GetView("v"); err != nil {
		t.Fatal("view should survive the table drop")
	}
}
