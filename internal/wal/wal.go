// Package wal implements a write-ahead log for the SBDMS storage layer:
// length-prefixed, checksummed records appended to a byte device, with
// group-buffered appends, explicit flush, iteration, and redo/undo
// recovery over a storage.PageStore. The heap file access method logs
// record-level before/after images through this log, and the buffer
// manager's before-evict hook enforces the write-ahead rule.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"

	"repro/internal/storage"
)

// WAL errors.
var (
	// ErrCorrupt is returned when a log record fails its checksum or
	// framing; iteration stops at the last valid record.
	ErrCorrupt = errors.New("wal: corrupt record")
	// ErrTornTail indicates a partially written record at the log tail
	// (normal after a crash; recovery treats it as the end of log).
	ErrTornTail = errors.New("wal: torn tail")
)

// LSN is a log sequence number: the byte offset of a record in the log.
type LSN uint64

// ZeroLSN is the null LSN (no record).
const ZeroLSN LSN = 0

// RecType classifies log records.
type RecType uint8

// Log record types.
const (
	RecBegin      RecType = 1
	RecCommit     RecType = 2
	RecAbort      RecType = 3
	RecUpdate     RecType = 4
	RecCheckpoint RecType = 5
)

// String implements fmt.Stringer.
func (t RecType) String() string {
	switch t {
	case RecBegin:
		return "begin"
	case RecCommit:
		return "commit"
	case RecAbort:
		return "abort"
	case RecUpdate:
		return "update"
	case RecCheckpoint:
		return "checkpoint"
	default:
		return fmt.Sprintf("rectype(%d)", uint8(t))
	}
}

// Record is one log record. Update records carry a physical
// before/after image of a byte range within a page.
type Record struct {
	LSN     LSN // assigned by Append
	Txn     uint64
	Type    RecType
	PageID  storage.PageID
	Offset  uint16 // byte offset within the page
	Before  []byte
	After   []byte
	PrevLSN LSN // previous record of the same transaction
	// End is the offset one past this record on the device. It is set
	// when the record is read back via Iterate (not persisted); log
	// shippers use it as their resume watermark.
	End LSN
}

// The log begins with a fixed header (magic, checkpoint LSN, reserved)
// so that offset 0 is never a valid LSN.
const logHeaderSize = 24

const logMagic = 0x5342444d53574131 // "SBDMSWA1"

// Log is an append-only write-ahead log over a Device. Appends are
// buffered in memory; Flush persists them. Safe for concurrent use.
type Log struct {
	mu       sync.Mutex
	dev      storage.Device
	tailOff  uint64 // durable end of log
	buf      []byte // pending bytes not yet written
	bufStart uint64 // device offset of buf[0]
	flushed  LSN    // highest LSN durably on the device
	nextLSN  LSN
	checkpoint LSN // LSN of the last sharp checkpoint record
}

// Open opens (or initialises) a log on a device, scanning to find the
// durable tail. Torn tail records are truncated away.
func Open(dev storage.Device) (*Log, error) {
	size, err := dev.Size()
	if err != nil {
		return nil, err
	}
	l := &Log{dev: dev}
	if size == 0 {
		var hdr [logHeaderSize]byte
		binary.LittleEndian.PutUint64(hdr[:], logMagic)
		if _, err := dev.WriteAt(hdr[:], 0); err != nil {
			return nil, err
		}
		l.tailOff = logHeaderSize
	} else {
		if size < logHeaderSize {
			return nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
		}
		var hdr [logHeaderSize]byte
		if _, err := dev.ReadAt(hdr[:], 0); err != nil {
			return nil, fmt.Errorf("wal: reading header: %w", err)
		}
		if binary.LittleEndian.Uint64(hdr[:]) != logMagic {
			return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
		}
		l.checkpoint = LSN(binary.LittleEndian.Uint64(hdr[8:]))
		// Scan for the durable tail.
		off := uint64(logHeaderSize)
		for {
			rec, next, err := readRecordAt(dev, off, uint64(size))
			if err != nil {
				break // torn or corrupt tail: log ends here
			}
			_ = rec
			off = next
		}
		l.tailOff = off
		if err := dev.Truncate(int64(off)); err != nil {
			return nil, err
		}
	}
	l.bufStart = l.tailOff
	l.nextLSN = LSN(l.tailOff)
	l.flushed = LSN(l.tailOff) // nothing pending
	return l, nil
}

// encode appends the wire form of rec (excluding LSN assignment) to dst.
// Layout: u32 len | u32 crc | u64 txn | u8 type | u64 page | u16 off |
// u32 blen | before | u32 alen | after | u64 prevLSN. len covers
// everything after the len field itself.
func encode(dst []byte, rec *Record) []byte {
	body := make([]byte, 0, 35+len(rec.Before)+len(rec.After))
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], rec.Txn)
	body = append(body, tmp[:]...)
	body = append(body, byte(rec.Type))
	binary.LittleEndian.PutUint64(tmp[:], uint64(rec.PageID))
	body = append(body, tmp[:]...)
	binary.LittleEndian.PutUint16(tmp[:2], rec.Offset)
	body = append(body, tmp[:2]...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(rec.Before)))
	body = append(body, tmp[:4]...)
	body = append(body, rec.Before...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(rec.After)))
	body = append(body, tmp[:4]...)
	body = append(body, rec.After...)
	binary.LittleEndian.PutUint64(tmp[:], uint64(rec.PrevLSN))
	body = append(body, tmp[:]...)

	crc := crc32.Checksum(body, crcTable)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(body))+4) // len includes crc
	dst = append(dst, tmp[:4]...)
	binary.LittleEndian.PutUint32(tmp[:4], crc)
	dst = append(dst, tmp[:4]...)
	return append(dst, body...)
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// readRecordAt decodes the record at off; returns the record and the
// offset of the next record.
func readRecordAt(r io.ReaderAt, off, limit uint64) (*Record, uint64, error) {
	var lenBuf [4]byte
	if off+4 > limit {
		return nil, 0, ErrTornTail
	}
	if _, err := r.ReadAt(lenBuf[:], int64(off)); err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrTornTail, err)
	}
	total := binary.LittleEndian.Uint32(lenBuf[:])
	if total < 4+35 || off+4+uint64(total) > limit {
		return nil, 0, ErrTornTail
	}
	payload := make([]byte, total)
	if _, err := r.ReadAt(payload, int64(off+4)); err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrTornTail, err)
	}
	wantCRC := binary.LittleEndian.Uint32(payload)
	body := payload[4:]
	if crc32.Checksum(body, crcTable) != wantCRC {
		return nil, 0, ErrCorrupt
	}
	rec := &Record{LSN: LSN(off)}
	rec.Txn = binary.LittleEndian.Uint64(body)
	rec.Type = RecType(body[8])
	rec.PageID = storage.PageID(binary.LittleEndian.Uint64(body[9:]))
	rec.Offset = binary.LittleEndian.Uint16(body[17:])
	blen := binary.LittleEndian.Uint32(body[19:])
	p := 23
	if p+int(blen) > len(body) {
		return nil, 0, ErrCorrupt
	}
	rec.Before = append([]byte(nil), body[p:p+int(blen)]...)
	p += int(blen)
	if p+4 > len(body) {
		return nil, 0, ErrCorrupt
	}
	alen := binary.LittleEndian.Uint32(body[p:])
	p += 4
	if p+int(alen)+8 > len(body) {
		return nil, 0, ErrCorrupt
	}
	rec.After = append([]byte(nil), body[p:p+int(alen)]...)
	p += int(alen)
	rec.PrevLSN = LSN(binary.LittleEndian.Uint64(body[p:]))
	rec.End = LSN(off + 4 + uint64(total))
	return rec, off + 4 + uint64(total), nil
}

// Append buffers a record and returns its assigned LSN. The record is
// durable only after Flush covers the LSN.
func (l *Log) Append(rec *Record) (LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	lsn := l.nextLSN
	rec.LSN = lsn
	l.buf = encode(l.buf, rec)
	l.nextLSN = LSN(l.bufStart + uint64(len(l.buf)))
	return lsn, nil
}

// Flush persists all buffered records at or below upTo (in practice the
// whole buffer — group commit) and syncs the device.
func (l *Log) Flush(upTo LSN) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.flushed >= upTo && len(l.buf) == 0 {
		return nil
	}
	if len(l.buf) > 0 {
		if _, err := l.dev.WriteAt(l.buf, int64(l.bufStart)); err != nil {
			return fmt.Errorf("wal: flushing: %w", err)
		}
		l.bufStart += uint64(len(l.buf))
		l.buf = l.buf[:0]
		l.tailOff = l.bufStart
	}
	if err := l.dev.Sync(); err != nil {
		return err
	}
	l.flushed = LSN(l.tailOff)
	return nil
}

// FlushedLSN returns the first LSN that is NOT yet durable; records
// with LSN < FlushedLSN are safe on the device.
func (l *Log) FlushedLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushed
}

// NextLSN returns the LSN the next appended record will receive.
func (l *Log) NextLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// Iterate replays durable records with LSN >= from in log order. The
// callback may return io.EOF to stop early.
func (l *Log) Iterate(from LSN, fn func(*Record) error) error {
	l.mu.Lock()
	limit := l.tailOff
	l.mu.Unlock()
	off := uint64(from)
	if off < logHeaderSize {
		off = logHeaderSize
	}
	for off < limit {
		rec, next, err := readRecordAt(l.dev, off, limit)
		if err != nil {
			if errors.Is(err, ErrTornTail) {
				return nil
			}
			return err
		}
		if err := fn(rec); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		off = next
	}
	return nil
}

// Size returns the durable log size in bytes.
func (l *Log) Size() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tailOff
}

// Checkpoint appends a sharp checkpoint record, flushes the log, and
// persists the checkpoint LSN in the log header. A sharp checkpoint is
// only valid at a quiescent point: no in-flight transactions and all
// dirty pages flushed (the transaction manager's Checkpoint enforces
// this). Recovery then scans from the checkpoint instead of the log
// head.
func (l *Log) Checkpoint() (LSN, error) {
	lsn, err := l.Append(&Record{Type: RecCheckpoint})
	if err != nil {
		return ZeroLSN, err
	}
	if err := l.Flush(lsn + 1); err != nil {
		return ZeroLSN, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(lsn))
	if _, err := l.dev.WriteAt(buf[:], 8); err != nil {
		return ZeroLSN, fmt.Errorf("wal: persisting checkpoint: %w", err)
	}
	if err := l.dev.Sync(); err != nil {
		return ZeroLSN, err
	}
	l.checkpoint = lsn
	return lsn, nil
}

// LastCheckpoint returns the LSN of the most recent sharp checkpoint
// (ZeroLSN if none was ever taken).
func (l *Log) LastCheckpoint() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.checkpoint
}

// BeforeEvict returns a buffer-manager hook enforcing the write-ahead
// rule: a dirty page with page LSN >= FlushedLSN forces a log flush
// before the page may be written back.
func (l *Log) BeforeEvict() func(storage.PageID, uint64) error {
	return func(id storage.PageID, pageLSN uint64) error {
		if LSN(pageLSN) >= l.FlushedLSN() {
			return l.Flush(LSN(pageLSN) + 1)
		}
		return nil
	}
}
