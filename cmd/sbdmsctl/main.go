// Command sbdmsctl inspects and drives a running sbdms node over the
// TCP binding.
//
// Usage:
//
//	sbdmsctl -addr host:7070 services            # list registered services
//	sbdmsctl -addr host:7070 ping <service>      # liveness probe
//	sbdmsctl -addr host:7070 sql "SELECT ..."    # run SQL via the query service
//	sbdmsctl -addr host:7070 get <key>           # KV get via the kv service
//	sbdmsctl -addr host:7070 put <key> <value>   # KV put
//	sbdmsctl -addr host:7070 scan <from> [n]     # KV range scan (node's -scan-isolation applies)
//	sbdmsctl -addr host:7070 status              # coordinator status
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	sbdms "repro"
	"repro/internal/core"
	"repro/internal/netbind"
	"repro/internal/sql"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "node address")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: sbdmsctl [-addr host:port] services|ping|sql|get|put|scan|status ...")
		os.Exit(2)
	}
	if err := run(*addr, args); err != nil {
		fmt.Fprintln(os.Stderr, "sbdmsctl:", err)
		os.Exit(1)
	}
}

func run(addr string, args []string) error {
	ctx := context.Background()
	client := netbind.NewClient(addr)
	defer client.Close()

	switch args[0] {
	case "services":
		// A one-shot gossip exchange returns the remote registry
		// without registering anything of our own.
		local := core.NewRegistry(nil)
		if _, err := netbind.Sync(ctx, local, "ctl", client); err != nil {
			return err
		}
		for _, reg := range local.All() {
			fmt.Printf("%-24s %-28s quality=%s/%.3f\n", reg.Name, reg.Interface,
				reg.Contract.Quality.LatencyClass, reg.Contract.Quality.Availability)
		}
		return nil
	case "ping":
		if len(args) < 2 {
			return fmt.Errorf("ping needs a service name")
		}
		out, err := client.Call(ctx, args[1], core.PingOp, nil)
		if err != nil {
			return err
		}
		fmt.Println(out)
		return nil
	case "sql":
		if len(args) < 2 {
			return fmt.Errorf("sql needs a query")
		}
		out, err := client.Call(ctx, "query", "execute", strings.Join(args[1:], " "))
		if err != nil {
			return err
		}
		res, ok := out.(*sql.Result)
		if !ok {
			return fmt.Errorf("unexpected reply %T", out)
		}
		if len(res.Cols) > 0 {
			fmt.Println(strings.Join(res.Cols, "\t"))
			for _, row := range res.Rows {
				parts := make([]string, len(row))
				for i, v := range row {
					parts[i] = v.String()
				}
				fmt.Println(strings.Join(parts, "\t"))
			}
		}
		fmt.Printf("-- %d rows, %d affected\n", len(res.Rows), res.Affected)
		return nil
	case "get":
		if len(args) < 2 {
			return fmt.Errorf("get needs a key")
		}
		out, err := client.Call(ctx, "kv", "get", args[1])
		if err != nil {
			return err
		}
		fmt.Printf("%s\n", out)
		return nil
	case "put":
		if len(args) < 3 {
			return fmt.Errorf("put needs a key and a value")
		}
		if _, err := client.Call(ctx, "kv", "put", sbdms.KVPutRequest{Key: args[1], Val: []byte(args[2])}); err != nil {
			return err
		}
		fmt.Println("OK")
		return nil
	case "scan":
		if len(args) < 2 {
			return fmt.Errorf("scan needs a start key (\"\" for the beginning)")
		}
		n := 100
		if len(args) > 2 {
			if _, err := fmt.Sscanf(args[2], "%d", &n); err != nil {
				return fmt.Errorf("scan limit %q: %w", args[2], err)
			}
		}
		out, err := client.Call(ctx, "kv", "scan", sbdms.KVScanRequest{Key: args[1], N: n})
		if err != nil {
			return err
		}
		keys, ok := out.([]string)
		if !ok {
			return fmt.Errorf("unexpected reply %T", out)
		}
		for _, k := range keys {
			fmt.Println(k)
		}
		fmt.Printf("-- %d keys\n", len(keys))
		return nil
	case "status":
		out, err := client.Call(ctx, "coordinator", core.OpCoordStatus, nil)
		if err != nil {
			return err
		}
		st, ok := out.(core.CoordStatus)
		if !ok {
			return fmt.Errorf("unexpected reply %T", out)
		}
		fmt.Printf("managedRefs=%d requiredInterfaces=%v avoided=%v adaptations=%d switches=%d\n",
			st.ManagedRefs, st.RequiredIfcs, st.AvoidedSvcs, st.Adaptations, st.Switches)
		return nil
	}
	return fmt.Errorf("unknown command %q", args[0])
}
