package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/storage"
)

// LoserTxn is one in-flight transaction whose records carry logical
// undo descriptors. Recover cannot roll it back itself — the inverse
// operations live in the access layer — so it returns the records (in
// log order) for the transaction manager to undo through the registered
// undo handler once the access methods are open.
type LoserTxn struct {
	ID      uint64
	Records []*Record // update records in log order
}

// RecoveryStats reports what recovery did.
type RecoveryStats struct {
	Scanned   int
	Redone    int
	Undone    int
	Rebuilt   int // pages reconstructed from scratch (torn or lost writes)
	Committed int
	InFlight  int // transactions rolled back
	ScanFrom  LSN // where analysis started (the recovery-begin LSN)
	// FreeImages counts durable records of finished transactions that
	// mark a page free (a free-typed image starting at byte 0). Their
	// presence means the allocator's eager free-list links may diverge
	// from the logged markings, so the opener should rebuild the free
	// list even when redo itself had nothing to repair.
	FreeImages int
	// Losers holds the in-flight transactions that logged logical undo
	// descriptors. Their updates were redone (repeating history); the
	// caller must finish the rollback with Manager.UndoLosers after the
	// heap/index layer is available.
	Losers []LoserTxn
	// MaxTxnID is the highest transaction id the scan saw. The opener
	// seeds the transaction-id allocator above it so crashed ids are
	// never reused (a reuse would let a later recovery misclassify the
	// old incarnation's records under the new incarnation's status).
	MaxTxnID uint64
	// MaxCommitTS is the highest commit timestamp the scan saw — from
	// commit records carrying a stamped timestamp and from checkpoint
	// records' oracle clock (which covers commits the checkpoint
	// licensed truncating out of the scan range). The opener seeds the
	// timestamp oracle above it so no version on disk can outrank a
	// post-recovery commit.
	MaxCommitTS uint64
}

// Changed reports whether recovery had to repair anything — callers use
// it to decide whether crash-only follow-up work (free-list rebuild) is
// warranted.
func (st RecoveryStats) Changed() bool {
	return st.Redone > 0 || st.Undone > 0 || st.Rebuilt > 0 || len(st.Losers) > 0
}

// pageExtender is implemented by stores (the disk manager) that can
// extend themselves so a page id becomes valid. Recovery needs it when
// a crash lost the allocation metadata for pages the WAL references.
type pageExtender interface {
	EnsureAllocated(storage.PageID) error
}

// readPageForRecovery reads a page, tolerating crash damage: a page id
// beyond the store's allocation metadata extends the store, and a torn
// or never-completed page write (checksum mismatch, short device) is
// returned as a zeroed page. The zeroed page is sound because of the
// full-page-write discipline: the first record for any page inside the
// replayed range is a full page image — either the page's first-ever
// record (prior image LSN 0), or the full image AppendPageUpdate logs
// on the page's first mutation after each checkpoint's fence. The
// recovery-begin LSN never exceeds a fence, so replaying the range in
// log order rebuilds the page completely even after older segments
// were truncated; diff records that precede the page's full image land
// on garbage and are then overwritten by it.
func readPageForRecovery(store storage.PageStore, id storage.PageID, buf []byte, st *RecoveryStats) error {
	err := store.ReadPage(id, buf)
	if err == nil {
		return nil
	}
	if errors.Is(err, storage.ErrOutOfRange) {
		if ext, ok := store.(pageExtender); ok {
			if eerr := ext.EnsureAllocated(id); eerr != nil {
				return eerr
			}
			if err = store.ReadPage(id, buf); err == nil {
				return nil
			}
		}
	}
	if errors.Is(err, storage.ErrChecksum) || errors.Is(err, io.EOF) {
		for i := range buf {
			buf[i] = 0
		}
		st.Rebuilt++
		return nil
	}
	return err
}

// Recover brings a page store to a consistent state after a crash:
//
//  1. Analysis: a scan from the manifest's recovery-begin LSN (the
//     minimum of the last checkpoint's fence, its dirty-page recLSNs
//     and the first LSN of its oldest in-flight transaction — so every
//     record that could still matter is inside the scan) classifies
//     transactions as committed, aborted, or in-flight, and collects
//     update records.
//  2. Redo repeats history: EVERY update is reapplied in log order
//     wherever the page LSN shows the write never reached the page
//     (page.LSN < record.LSN) — including updates of in-flight losers,
//     so that the logical undo in step 3 operates on exactly the page
//     state the crashed transactions left behind. An aborted
//     transaction is safe to replay because the transaction manager
//     appends RecAbort only after logging a compensation record for
//     every undone update — replaying updates then compensations in
//     order nets out to the rollback, without re-applying stale before
//     images over bytes later transactions may have rewritten.
//  3. Undo: in-flight transactions whose records are all physically
//     undoable (system transactions: file-directory maintenance, index
//     structure modifications — their page records never interleave
//     with other transactions') are reverted here in reverse log order
//     using before images. Transactions with logical-undo records
//     (per-key heap and index operations, which DO interleave on
//     shared pages under fine-grained locking) are returned in
//     Losers for Manager.UndoLosers to roll back through the access
//     methods once they are open — each inverse operation is logged as
//     a redo-only compensation and the transaction closed with a
//     RecAbort, so a crash during recovery reruns to the same state.
//
// Pages touched by undo/redo are stamped with the record's LSN so that
// recovery is idempotent: running it twice is a no-op.
func Recover(l *Log, store storage.PageStore) (RecoveryStats, error) {
	var st RecoveryStats
	st.ScanFrom = l.RecoveryBegin()
	status := make(map[uint64]RecType) // txn -> final state seen
	var updates []*Record
	err := l.Iterate(st.ScanFrom, func(rec *Record) error {
		st.Scanned++
		if rec.Txn > st.MaxTxnID {
			st.MaxTxnID = rec.Txn
		}
		switch rec.Type {
		case RecBegin:
			status[rec.Txn] = RecBegin
		case RecCommit:
			status[rec.Txn] = RecCommit
			if len(rec.After) >= 8 {
				if ts := binary.LittleEndian.Uint64(rec.After); ts > st.MaxCommitTS {
					st.MaxCommitTS = ts
				}
			}
		case RecAbort:
			status[rec.Txn] = RecAbort
		case RecUpdate:
			updates = append(updates, rec)
			if _, ok := status[rec.Txn]; !ok {
				status[rec.Txn] = RecBegin
			}
		case RecCheckpoint:
			if d, derr := DecodeCheckpoint(rec.After); derr == nil && d.Clock > st.MaxCommitTS {
				st.MaxCommitTS = d.Clock
			}
		}
		return nil
	})
	if err != nil {
		return st, fmt.Errorf("wal: analysis: %w", err)
	}
	logical := make(map[uint64]bool) // loser txns needing logical undo
	for _, rec := range updates {
		if status[rec.Txn] == RecBegin && rec.LogicalUndo() {
			logical[rec.Txn] = true
		}
	}
	for _, s := range status {
		switch s {
		case RecCommit:
			st.Committed++
		case RecBegin:
			st.InFlight++
		}
	}

	buf := make([]byte, storage.PageSize)
	apply := func(rec *Record, image []byte) error {
		if err := readPageForRecovery(store, rec.PageID, buf, &st); err != nil {
			return err
		}
		p := storage.WrapPage(rec.PageID, buf)
		copy(p.Data[rec.Offset:int(rec.Offset)+len(image)], image)
		p.SetLSN(uint64(rec.LSN))
		return store.WritePage(rec.PageID, p.Data)
	}

	// Redo in log order, repeating history for every transaction.
	for _, rec := range updates {
		if err := readPageForRecovery(store, rec.PageID, buf, &st); err != nil {
			return st, fmt.Errorf("wal: redo read page %d: %w", rec.PageID, err)
		}
		p := storage.WrapPage(rec.PageID, buf)
		if p.LSN() >= uint64(rec.LSN) {
			continue // already on the page
		}
		if s := status[rec.Txn]; (s == RecCommit || s == RecAbort) &&
			rec.Offset == 0 && len(rec.After) > 0 && storage.PageType(rec.After[0]) == storage.PageTypeFree {
			// A free marking the crash actually lost had to be
			// replayed; only then is the allocator's list suspect
			// (counted here, after the already-applied check, so clean
			// reopens never pay the free-list rebuild).
			st.FreeImages++
		}
		copy(p.Data[rec.Offset:int(rec.Offset)+len(rec.After)], rec.After)
		p.SetLSN(uint64(rec.LSN))
		if err := store.WritePage(rec.PageID, p.Data); err != nil {
			return st, fmt.Errorf("wal: redo: %w", err)
		}
		st.Redone++
	}

	// Physically undo in-flight losers without logical records, in
	// reverse log order.
	losers := updates[:0:0]
	for _, rec := range updates {
		if status[rec.Txn] == RecBegin && !logical[rec.Txn] {
			losers = append(losers, rec)
		}
	}
	sort.Slice(losers, func(i, j int) bool { return losers[i].LSN > losers[j].LSN })
	for _, rec := range losers {
		if rec.RedoOnly() {
			// Never undone — not even physically. A redo-only record is
			// either a compensation (its effect IS an undo) or a
			// content-preserving reorganisation (a slotted-page
			// compaction logged by a failed insert attempt) on a page
			// other transactions kept writing: restoring its before
			// image would wipe their later committed bytes. The live
			// rollback path skips these for the same reason.
			continue
		}
		if err := apply(rec, rec.Before); err != nil {
			return st, fmt.Errorf("wal: undo: %w", err)
		}
		st.Undone++
	}

	// Hand logical losers back for access-layer rollback, records in
	// log order per transaction.
	if len(logical) > 0 {
		byTxn := make(map[uint64]*LoserTxn, len(logical))
		var order []uint64
		for _, rec := range updates {
			if !logical[rec.Txn] {
				continue
			}
			lt := byTxn[rec.Txn]
			if lt == nil {
				lt = &LoserTxn{ID: rec.Txn}
				byTxn[rec.Txn] = lt
				order = append(order, rec.Txn)
			}
			lt.Records = append(lt.Records, rec)
		}
		for _, id := range order {
			st.Losers = append(st.Losers, *byTxn[id])
		}
	}
	if err := store.Sync(); err != nil {
		return st, err
	}
	return st, nil
}
