// Golden package for the pinpaired analyzer: every Pin/PinLatched/
// NewPage/NewPageLatched must have a matching Unpin on all return
// paths, including error returns.
package pinpaired

import (
	"repro/internal/buffer"
	"repro/internal/storage"
)

// leakOnSecondPinError: the classic leak — the second Pin's error
// return abandons the first frame.
func leakOnSecondPinError(pool *buffer.Manager, a, b storage.PageID) error {
	fa, err := pool.Pin(a) // want `frame pinned by Pin may not be unpinned on every return path`
	if err != nil {
		return err
	}
	fb, err := pool.Pin(b)
	if err != nil {
		return err // fa is still pinned here
	}
	_ = fa.Data
	_ = fb.Data
	_ = pool.Unpin(fb.ID, false)
	return pool.Unpin(fa.ID, false)
}

// pairedOnSecondPinError is the fixed shape: the error path unpins
// what it already holds.
func pairedOnSecondPinError(pool *buffer.Manager, a, b storage.PageID) error {
	fa, err := pool.Pin(a)
	if err != nil {
		return err
	}
	fb, err := pool.Pin(b)
	if err != nil {
		_ = pool.Unpin(fa.ID, false)
		return err
	}
	_ = fb.Data
	_ = pool.Unpin(fb.ID, false)
	return pool.Unpin(fa.ID, false)
}

// leakOnEarlyReturn: one branch returns without releasing.
func leakOnEarlyReturn(pool *buffer.Manager, id storage.PageID, skip bool) error {
	f, err := pool.Pin(id) // want `frame pinned by Pin may not be unpinned on every return path`
	if err != nil {
		return err
	}
	if skip {
		return nil // leaks f
	}
	return pool.Unpin(f.ID, false)
}

// deferredUnpin is the idiomatic safe shape: released on every path.
func deferredUnpin(pool *buffer.Manager, id storage.PageID) ([]byte, error) {
	f, err := pool.Pin(id)
	if err != nil {
		return nil, err
	}
	defer func() { _ = pool.Unpin(f.ID, false) }()
	return append([]byte(nil), f.Data...), nil
}

// discardedNewPage: a NewPage frame bound to nothing can never be
// named for Unpin.
func discardedNewPage(pool *buffer.Manager) {
	pool.NewPage(storage.PageTypeRaw) // want `frame pinned by NewPage is discarded and can never be unpinned`
}

// blankNewPage: same through a blank assignment.
func blankNewPage(pool *buffer.Manager) {
	_, _ = pool.NewPage(storage.PageTypeRaw) // want `frame pinned by NewPage is discarded and can never be unpinned`
}

// pinByID: a blank frame var is fine when the page id can name the
// frame for Unpin.
func pinByID(pool *buffer.Manager, id storage.PageID) error {
	if _, err := pool.Pin(id); err != nil {
		return err
	}
	return pool.Unpin(id, false)
}

// escapesToCaller: a returned frame is managed by the caller, not a
// leak here.
func escapesToCaller(pool *buffer.Manager, id storage.PageID) (*buffer.Frame, error) {
	f, err := pool.Pin(id)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// aliasedID: an id copied out of the frame still pairs the Unpin.
func aliasedID(pool *buffer.Manager, id storage.PageID) error {
	f, err := pool.Pin(id)
	if err != nil {
		return err
	}
	fid := f.ID
	_ = f.Data
	return pool.Unpin(fid, false)
}

// suppressedLeak: the analyzer accepts a justified //lint:ignore on
// the line above the pin.
func suppressedLeak(pool *buffer.Manager, id storage.PageID) error {
	//lint:ignore pinpaired the warm-up path wedges this frame on purpose so the eviction test has a victim
	f, err := pool.Pin(id)
	if err != nil {
		return err
	}
	_ = f.Data
	return nil
}
