package workload

import (
	"math/rand"
	"testing"
)

func TestKVGenDeterministic(t *testing.T) {
	g1 := NewKV(KVConfig{Seed: 42, Keys: 100, Mix: MixA})
	g2 := NewKV(KVConfig{Seed: 42, Keys: 100, Mix: MixA})
	for i := 0; i < 1000; i++ {
		a, b := g1.Next(), g2.Next()
		if a.Kind != b.Kind || a.Key != b.Key {
			t.Fatalf("op %d diverged: %+v vs %+v", i, a, b)
		}
	}
}

func TestKVGenMixProportions(t *testing.T) {
	g := NewKV(KVConfig{Seed: 7, Keys: 100, Mix: MixB})
	reads, writes := 0, 0
	const n = 10000
	for i := 0; i < n; i++ {
		switch g.Next().Kind {
		case OpRead:
			reads++
		case OpWrite:
			writes++
		}
	}
	if float64(reads)/n < 0.9 || float64(reads)/n > 0.99 {
		t.Fatalf("read fraction = %.3f, want ~0.95", float64(reads)/n)
	}
	if writes == 0 {
		t.Fatal("no writes in YCSB-B")
	}
}

func TestKVGenScanMix(t *testing.T) {
	g := NewKV(KVConfig{Seed: 7, Keys: 100, Mix: MixE})
	scans := 0
	for i := 0; i < 1000; i++ {
		op := g.Next()
		if op.Kind == OpScan {
			scans++
			if op.ScanLen < 1 || op.ScanLen > 100 {
				t.Fatalf("scan len = %d", op.ScanLen)
			}
		}
	}
	if scans < 900 {
		t.Fatalf("scans = %d, want ~95%%", scans)
	}
}

func TestZipfianSkew(t *testing.T) {
	g := NewKV(KVConfig{Seed: 3, Keys: 1000, Mix: MixC, Zipfian: true})
	counts := map[string]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[g.Next().Key]++
	}
	// The hottest key must be far above uniform (20 per key).
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 200 {
		t.Fatalf("hottest key hit %d times; zipfian skew missing", max)
	}
	// Uniform, by contrast, stays near 20.
	u := NewKV(KVConfig{Seed: 3, Keys: 1000, Mix: MixC})
	counts = map[string]int{}
	for i := 0; i < n; i++ {
		counts[u.Next().Key]++
	}
	max = 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max > 100 {
		t.Fatalf("uniform hottest key hit %d times", max)
	}
}

func TestKVGenDefaults(t *testing.T) {
	g := NewKV(KVConfig{})
	if g.Keys() != 1000 {
		t.Fatalf("default keys = %d", g.Keys())
	}
	op := g.Next()
	if op.Kind == OpWrite && len(op.Val) != 100 {
		t.Fatalf("default val size = %d", len(op.Val))
	}
	ops := g.Ops(50)
	if len(ops) != 50 {
		t.Fatal("Ops length")
	}
}

func TestRowGenerators(t *testing.T) {
	users := UserRows(1, 100)
	if len(users) != 100 || users[5][0].Int != 5 {
		t.Fatalf("users = %d rows", len(users))
	}
	// Deterministic.
	again := UserRows(1, 100)
	for i := range users {
		if users[i][1].Str != again[i][1].Str {
			t.Fatal("UserRows not deterministic")
		}
	}
	orders := OrderRows(2, 50, 100)
	for _, o := range orders {
		if o[1].Int < 0 || o[1].Int >= 100 {
			t.Fatalf("order user_id out of range: %v", o)
		}
		if o[2].Float < 0 {
			t.Fatalf("negative total: %v", o)
		}
	}
	sensors := SensorRows(3, 50, 4)
	for _, s := range sensors {
		if s[0].Int < 0 || s[0].Int >= 4 {
			t.Fatalf("sensor id out of range: %v", s)
		}
	}
}

func TestZipfHelper(t *testing.T) {
	z := NewZipf(rand.New(rand.NewSource(1)), 0.5, 100) // s<=1 clamps
	for i := 0; i < 100; i++ {
		if v := z.Next(); v < 0 || v >= 100 {
			t.Fatalf("zipf out of range: %d", v)
		}
	}
}

func TestKeyFormat(t *testing.T) {
	if Key(42) != "user00000042" {
		t.Fatalf("Key = %s", Key(42))
	}
}
