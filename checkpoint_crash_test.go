package sbdms

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/storage"
	"repro/internal/wal"
)

// --- WAL-side crash injection ------------------------------------------

// crashGate is a write budget shared by every device of a fault
// segment dir: once exhausted, the whole log "loses power" — the
// crashing write is dropped (or torn), and every later access fails.
type crashGate struct {
	mu      sync.Mutex
	arm     int64 // writes still allowed; -1 = disarmed
	tear    int   // bytes of the crashing write to apply
	crashed bool
}

func (g *crashGate) allowWrite() (tear int, crashNow, dead bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.crashed {
		return 0, false, true
	}
	if g.arm == 0 {
		g.crashed = true
		return g.tear, true, false
	}
	if g.arm > 0 {
		g.arm--
	}
	return 0, false, false
}

func (g *crashGate) dead() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.crashed
}

// gatedDevice routes a device through a shared crashGate.
type gatedDevice struct {
	inner storage.Device
	g     *crashGate
}

func (d *gatedDevice) ReadAt(p []byte, off int64) (int, error) {
	if d.g.dead() {
		return 0, storage.ErrInjectedCrash
	}
	return d.inner.ReadAt(p, off)
}

func (d *gatedDevice) WriteAt(p []byte, off int64) (int, error) {
	tear, crashNow, dead := d.g.allowWrite()
	if dead {
		return 0, storage.ErrInjectedCrash
	}
	if crashNow {
		if tear > 0 {
			if tear > len(p) {
				tear = len(p)
			}
			_, _ = d.inner.WriteAt(p[:tear], off)
		}
		return 0, storage.ErrInjectedCrash
	}
	return d.inner.WriteAt(p, off)
}

func (d *gatedDevice) Size() (int64, error) {
	if d.g.dead() {
		return 0, storage.ErrInjectedCrash
	}
	return d.inner.Size()
}

func (d *gatedDevice) Truncate(size int64) error {
	if d.g.dead() {
		return storage.ErrInjectedCrash
	}
	return d.inner.Truncate(size)
}

func (d *gatedDevice) Sync() error {
	if d.g.dead() {
		return storage.ErrInjectedCrash
	}
	return d.inner.Sync()
}

func (d *gatedDevice) Close() error { return nil }

// faultSegmentDir wraps a MemSegmentDir so that every segment and
// manifest device shares one crash gate: arming the gate kills the
// whole WAL mid-write — including mid-rollover, where the new segment's
// header write is the victim.
type faultSegmentDir struct {
	inner *wal.MemSegmentDir
	g     *crashGate
}

func (d *faultSegmentDir) OpenSegment(seq uint64) (storage.Device, error) {
	if d.g.dead() {
		return nil, storage.ErrInjectedCrash
	}
	dev, err := d.inner.OpenSegment(seq)
	if err != nil {
		return nil, err
	}
	return &gatedDevice{inner: dev, g: d.g}, nil
}

func (d *faultSegmentDir) RemoveSegment(seq uint64) error {
	if d.g.dead() {
		return storage.ErrInjectedCrash
	}
	return d.inner.RemoveSegment(seq)
}

func (d *faultSegmentDir) ListSegments() ([]uint64, error) { return d.inner.ListSegments() }

func (d *faultSegmentDir) OpenManifest() (storage.Device, error) {
	dev, err := d.inner.OpenManifest()
	if err != nil {
		return nil, err
	}
	return &gatedDevice{inner: dev, g: d.g}, nil
}

func (d *faultSegmentDir) Sync() error {
	if d.g.dead() {
		return storage.ErrInjectedCrash
	}
	return d.inner.Sync()
}

// --- helpers ------------------------------------------------------------

// openSegmentedCrashDB opens a DB over a segmented WAL with a tiny
// buffer pool and tiny segments, so write-back and segment rollover
// both happen constantly mid-workload.
func openSegmentedCrashDB(t *testing.T, dataDev storage.Device, logDir wal.SegmentDir) *DB {
	t.Helper()
	db, err := Open(Options{
		Device:          dataDev,
		LogDir:          logDir,
		Granularity:     Monolithic,
		BufferFrames:    8,
		WALSegmentBytes: 2 * storage.PageSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// verifySegmentedRecovered reopens a segmented-log store and checks the
// committed state key by key.
func verifySegmentedRecovered(t *testing.T, dataDev storage.Device, logDir wal.SegmentDir, st *crashState) {
	t.Helper()
	db, err := Open(Options{
		Device:          dataDev,
		LogDir:          logDir,
		Granularity:     Monolithic,
		BufferFrames:    64,
		WALSegmentBytes: 2 * storage.PageSize,
	})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer db.Close(context.Background())
	for k, want := range st.live {
		got, err := db.Get(k)
		if err != nil {
			t.Fatalf("committed key %q lost after recovery: %v", k, err)
		}
		if string(got) != want {
			t.Fatalf("committed key %q = %q, want %q", k, got, want)
		}
	}
	for k := range st.deleted {
		if _, err := db.Get(k); err == nil {
			t.Fatalf("committed delete of %q resurrected after recovery", k)
		} else if !isNotFound(err) {
			t.Fatalf("Get(%q) after committed delete: %v", k, err)
		}
	}
	if got, want := db.KVLen(), uint64(len(st.live)); got != want {
		t.Fatalf("KVLen after recovery = %d, want %d", got, want)
	}
}

// tornPageOnDevice scans the raw data device for a page that fails its
// checksum — evidence the crash really tore a page write.
func tornPageOnDevice(t *testing.T, dev storage.Device) bool {
	t.Helper()
	size, err := dev.Size()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, storage.PageSize)
	for off := int64(storage.PageSize); off+storage.PageSize <= size; off += storage.PageSize {
		if _, err := dev.ReadAt(buf, off); err != nil {
			return true // short page at the tail: also torn
		}
		if !storage.WrapPage(storage.PageID(off/storage.PageSize), buf).VerifyChecksum() {
			return true
		}
	}
	return false
}

// --- scenarios ----------------------------------------------------------

// TestKVCrashRecoveryMidFuzzyCheckpoint kills the data device while a
// fuzzy checkpoint is flushing its dirty-page snapshot, at several
// crash points. The manifest is only advanced after the snapshot is
// durably flushed, so recovery falls back to the previous checkpoint
// and every committed operation survives.
func TestKVCrashRecoveryMidFuzzyCheckpoint(t *testing.T) {
	for _, crashAfter := range []int{0, 2, 5, 9} {
		for _, tear := range []int{0, storage.PageSize / 2} {
			t.Run(fmt.Sprintf("crashAfter=%d/tear=%d", crashAfter, tear), func(t *testing.T) {
				inner := storage.NewMemDevice()
				fault := storage.NewFaultDevice(inner)
				logDir := wal.NewMemSegmentDir()
				db := openSegmentedCrashDB(t, fault, logDir)

				// Phase 1: committed traffic plus a clean checkpoint, so
				// the crashing checkpoint has a predecessor to fall back
				// to and truncation is already in play.
				st := runKVCrashWorkload(db, 250, 80, int64(crashAfter)+7, nil)
				if _, err := db.CheckpointSync(); err != nil {
					t.Fatalf("baseline checkpoint: %v", err)
				}
				st2 := runKVCrashWorkload(db, 250, 80, int64(crashAfter)+13, nil)
				for k, v := range st2.live {
					st.live[k] = v
					delete(st.deleted, k)
				}
				for k := range st2.deleted {
					if _, ok := st2.live[k]; !ok {
						delete(st.live, k)
						st.deleted[k] = true
					}
				}

				// Phase 2: the data device dies during the checkpoint's
				// dirty-page flush.
				fault.CrashAfterWrites(crashAfter, tear)
				if _, err := db.CheckpointSync(); err == nil && fault.Crashed() {
					t.Fatal("checkpoint reported success on a dead device")
				}
				abandon(db)
				verifySegmentedRecovered(t, inner, logDir, st)
			})
		}
	}
}

// TestKVCrashRecoveryTornPageAfterTruncation is the acceptance
// scenario for full-page-writes: checkpoints truncate old WAL segments
// (provably — the oldest live segment advances and segment files are
// deleted), then a dirty page's in-flight write-back is torn by the
// crash. The page's original full image is gone with the truncated
// segments; recovery must rebuild it from the full page image logged on
// its first post-checkpoint mutation.
func TestKVCrashRecoveryTornPageAfterTruncation(t *testing.T) {
	dataDev := storage.NewMemDevice()
	logDir := wal.NewMemSegmentDir()
	db := openSegmentedCrashDB(t, dataDev, logDir)

	// Build history across several segments, checkpoint, and prove the
	// old segments (with the pages' original first-touch full images)
	// are gone.
	st := runKVCrashWorkload(db, 400, 100, 31, nil)
	if _, err := db.CheckpointSync(); err != nil {
		t.Fatal(err)
	}
	if db.Log().OldestSegment() == 1 {
		t.Fatalf("no truncation happened (oldest segment still 1 of %d)", db.Log().SegmentCount())
	}
	if logDir.Removed() == 0 {
		t.Fatal("no segment files were deleted")
	}

	// More committed traffic dirties pages again; each dirty page's
	// first post-checkpoint mutation logged a full image above the
	// fence.
	st2 := runKVCrashWorkload(db, 200, 100, 37, nil)
	for k, v := range st2.live {
		st.live[k] = v
		delete(st.deleted, k)
	}
	for k := range st2.deleted {
		if _, ok := st2.live[k]; !ok {
			delete(st.live, k)
			st.deleted[k] = true
		}
	}

	// Pick a page that is dirty with logged post-checkpoint records:
	// its write-back is "in flight" at the crash.
	dirty := db.Pool().DirtyPages()
	var victim storage.PageID
	for _, d := range dirty {
		if d.RecLSN > 0 {
			victim = d.ID
			break
		}
	}
	if victim == storage.InvalidPageID {
		t.Fatalf("no dirty logged page to tear (dirty table: %+v)", dirty)
	}
	abandon(db)

	// Tear the victim's on-disk image: the in-flight write applied only
	// garbage over its second half.
	junk := make([]byte, storage.PageSize/2)
	for i := range junk {
		junk[i] = 0xA5
	}
	if _, err := dataDev.WriteAt(junk, int64(victim)*storage.PageSize+storage.PageSize/2); err != nil {
		t.Fatal(err)
	}
	if !tornPageOnDevice(t, dataDev) {
		t.Fatal("victim page still verifies; the tear did nothing")
	}

	// Recovery must rebuild the torn page from the post-checkpoint full
	// image — the pre-checkpoint history it would otherwise need was
	// truncated away.
	verifySegmentedRecovered(t, dataDev, logDir, st)
}

// TestKVCrashRecoveryMidSegmentRollover kills the WAL itself at many
// write points while tiny segments force constant rollover: some crash
// points land exactly on a new segment's header write. Reopening over
// the surviving segment files must find the durable tail (dropping a
// header-less rollover victim) and recover every acknowledged
// operation.
func TestKVCrashRecoveryMidSegmentRollover(t *testing.T) {
	for _, crashAfter := range []int{3, 10, 22, 45, 80} {
		t.Run(fmt.Sprintf("crashAfter=%d", crashAfter), func(t *testing.T) {
			dataDev := storage.NewMemDevice()
			innerDir := wal.NewMemSegmentDir()
			gate := &crashGate{arm: -1}
			db := openSegmentedCrashDB(t, dataDev, &faultSegmentDir{inner: innerDir, g: gate})

			gate.mu.Lock()
			gate.arm = int64(crashAfter)
			gate.mu.Unlock()

			st := runKVCrashWorkloadWAL(db, 600, 100, int64(crashAfter)+53, gate)
			abandon(db)
			verifySegmentedRecovered(t, dataDev, innerDir, st)
		})
	}
}

// runKVCrashWorkloadWAL mirrors runKVCrashWorkload with the crash
// signal coming from the WAL's gate instead of the data device.
func runKVCrashWorkloadWAL(db *DB, nops, keySpace int, seed int64, gate *crashGate) *crashState {
	st := &crashState{live: map[string]string{}, deleted: map[string]bool{}}
	rng := rand.New(rand.NewSource(seed))
	pad := strings.Repeat("x", 80)
	afterCrash := 0
	for i := 0; i < nops; i++ {
		if gate.dead() {
			afterCrash++
			if afterCrash > 20 {
				break
			}
		}
		k := fmt.Sprintf("key-%04d", rng.Intn(keySpace))
		if rng.Intn(10) < 7 || !st.deleted[k] && st.live[k] == "" {
			v := fmt.Sprintf("val-%d-%s", i, pad)
			if err := db.Put(k, []byte(v)); err == nil {
				st.live[k] = v
				delete(st.deleted, k)
			}
		} else if _, ok := st.live[k]; ok {
			if err := db.DeleteKey(k); err == nil {
				delete(st.live, k)
				st.deleted[k] = true
			}
		}
	}
	return st
}

// TestFuzzyCheckpointUnderConcurrentTraffic races fuzzy checkpoints,
// log iteration (a shipper) and multi-goroutine KV traffic against
// each other — run under -race in the checkpoint-crash suite, it pins
// the pin-drain wait in FlushPages and the locked segment-end snapshot
// in Iterate.
func TestFuzzyCheckpointUnderConcurrentTraffic(t *testing.T) {
	dataDev := storage.NewMemDevice()
	logDir := wal.NewMemSegmentDir()
	db, err := Open(Options{
		Device:          dataDev,
		LogDir:          logDir,
		Granularity:     Monolithic,
		BufferFrames:    32,
		WALSegmentBytes: 4 * storage.PageSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := fmt.Sprintf("w%d-key-%03d", w, i%50)
				if err := db.Put(k, []byte(fmt.Sprintf("v-%d", i))); err != nil {
					t.Errorf("put under checkpoints: %v", err)
					return
				}
			}
		}(w)
	}
	// A shipper iterating the live log while segments roll and truncate.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			from := db.Log().OldestLSN()
			_ = db.Log().Iterate(from, func(r *wal.Record) error { return nil })
		}
	}()
	for i := 0; i < 10; i++ {
		if _, err := db.CheckpointSync(); err != nil {
			t.Errorf("checkpoint %d under traffic: %v", i, err)
			break
		}
	}
	close(stop)
	wg.Wait()
	if db.Log().OldestSegment() == 1 {
		t.Fatal("checkpoints under traffic never truncated")
	}
	if err := db.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestKVWALBoundedBySegmentTruncation is the bounded-size acceptance
// test at the engine level: a long KV workload with periodic fuzzy
// checkpoints keeps the total WAL footprint bounded, provably deleting
// old segments while every committed operation stays recoverable.
func TestKVWALBoundedBySegmentTruncation(t *testing.T) {
	dataDev := storage.NewMemDevice()
	logDir := wal.NewMemSegmentDir()
	db, err := Open(Options{
		Device:          dataDev,
		LogDir:          logDir,
		Granularity:     Monolithic,
		BufferFrames:    32,
		WALSegmentBytes: 4 * storage.PageSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := &crashState{live: map[string]string{}, deleted: map[string]bool{}}
	var maxSegments, maxSize uint64
	for round := 0; round < 30; round++ {
		part := runKVCrashWorkload(db, 120, 150, int64(round)+101, nil)
		for k, v := range part.live {
			st.live[k] = v
			delete(st.deleted, k)
		}
		for k := range part.deleted {
			if _, ok := part.live[k]; !ok {
				delete(st.live, k)
				st.deleted[k] = true
			}
		}
		if _, err := db.CheckpointSync(); err != nil {
			t.Fatalf("checkpoint round %d: %v", round, err)
		}
		if n := uint64(db.Log().SegmentCount()); n > maxSegments {
			maxSegments = n
		}
		if s := db.Log().Size(); s > maxSize {
			maxSize = s
		}
	}
	if logDir.Removed() == 0 {
		t.Fatal("long workload with checkpoints never deleted a segment")
	}
	if db.Log().OldestSegment() == 1 {
		t.Fatal("oldest segment never advanced")
	}
	// The live window must stay small: at most about two rounds of
	// history (pages dirtied early in a round hold the recovery-begin
	// LSN back until that round's checkpoint flushes them). Without
	// truncation, 30 rounds of full-page-write traffic would pile up
	// hundreds of segments.
	if created := db.Log().Rolls() + 1; created < 60 {
		t.Fatalf("only %d segments ever created; the workload is too small to prove bounding", created)
	}
	if maxSegments > 48 {
		t.Fatalf("live segments peaked at %d; truncation is not keeping up", maxSegments)
	}
	if limit := uint64(48 * 5 * storage.PageSize); maxSize > limit {
		t.Fatalf("WAL footprint peaked at %d bytes (limit %d)", maxSize, limit)
	}
	// And the bounded log still recovers the full committed state.
	abandon(db)
	verifySegmentedRecovered(t, dataDev, logDir, st)
}

// mergeCrashState folds a later workload's outcome into st.
func mergeCrashState(st, part *crashState) {
	for k, v := range part.live {
		st.live[k] = v
		delete(st.deleted, k)
	}
	for k := range part.deleted {
		if _, ok := part.live[k]; !ok {
			delete(st.live, k)
			st.deleted[k] = true
		}
	}
}

// TestKVCrashRecoveryBackgroundWritebackBeforeCheckpoint crashes inside
// the window the background checkpoint flusher opens: cold dirty pages
// are written back opportunistically between checkpoints, then the
// system dies BEFORE any checkpoint record covers them. The write-back
// shares eviction's write-ahead hook, so every persisted page's log
// records are durable first, and the dirty-page table forgets a page
// (clearing its recLSN) only after its bytes land — a checkpoint
// snapshotted after the write-back can therefore never advance
// recovery-begin past a mutation that exists only in the log. Here no
// such checkpoint ever runs: the manifest still names the baseline
// checkpoint, and recovery must replay the whole suffix across the
// written-back pages — including one whose in-flight write the crash
// tore in half.
func TestKVCrashRecoveryBackgroundWritebackBeforeCheckpoint(t *testing.T) {
	dataDev := storage.NewMemDevice()
	logDir := wal.NewMemSegmentDir()
	db := openSegmentedCrashDB(t, dataDev, logDir)

	// History plus a clean baseline checkpoint, so recovery has a fence
	// to fall back to and truncation has already discarded old segments.
	st := runKVCrashWorkload(db, 300, 80, 61, nil)
	if _, err := db.CheckpointSync(); err != nil {
		t.Fatalf("baseline checkpoint: %v", err)
	}
	st2 := runKVCrashWorkload(db, 200, 80, 67, nil)
	mergeCrashState(st, st2)

	// The flusher's opportunistic pass, forced deterministically: every
	// cold (unpinned) dirty frame is written back.
	before := db.Pool().DirtyPages()
	if len(before) == 0 {
		t.Fatal("workload left no dirty pages to write back")
	}
	n, err := db.Pool().WriteBackCold(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("cold write-back wrote nothing")
	}

	// Pick a page the pass wrote back (dirty before, clean after): its
	// write is "in flight" at the crash and gets torn below.
	stillDirty := map[storage.PageID]bool{}
	for _, d := range db.Pool().DirtyPages() {
		stillDirty[d.ID] = true
	}
	victim := storage.InvalidPageID
	for _, d := range before {
		if d.RecLSN > 0 && !stillDirty[d.ID] {
			victim = d.ID
			break
		}
	}
	abandon(db)
	if victim != storage.InvalidPageID {
		junk := make([]byte, storage.PageSize/2)
		for i := range junk {
			junk[i] = 0x5A
		}
		if _, err := dataDev.WriteAt(junk, int64(victim)*storage.PageSize+storage.PageSize/2); err != nil {
			t.Fatal(err)
		}
		if !tornPageOnDevice(t, dataDev) {
			t.Fatal("victim page still verifies; the tear did nothing")
		}
	}

	// Recovery replays from the baseline checkpoint's recovery-begin:
	// the suffix's full page images rebuild the torn victim, redo is
	// idempotent over the pages the write-back already persisted, and
	// nothing committed is lost.
	verifySegmentedRecovered(t, dataDev, logDir, st)
}

// TestKVCrashRecoveryAsyncCheckpointWithoutCompletion covers the other
// edge of the background window: an asynchronous checkpoint's record is
// durable in the log and the call has returned, but the device dies
// before the background flusher can flush the dirty-page snapshot.
// CompleteCheckpoint never runs, so the manifest must NOT advance past
// a snapshot that never became durable, truncation must not discard the
// history recovery still needs, and reopening falls back to the
// previous checkpoint.
func TestKVCrashRecoveryAsyncCheckpointWithoutCompletion(t *testing.T) {
	inner := storage.NewMemDevice()
	fault := storage.NewFaultDevice(inner)
	logDir := wal.NewMemSegmentDir()
	db := openSegmentedCrashDB(t, fault, logDir)

	st := runKVCrashWorkload(db, 250, 80, 71, nil)
	if _, err := db.CheckpointSync(); err != nil {
		t.Fatalf("baseline checkpoint: %v", err)
	}
	oldest := db.Log().OldestSegment()
	st2 := runKVCrashWorkload(db, 200, 80, 73, nil)
	mergeCrashState(st, st2)
	if len(db.Pool().DirtyPages()) == 0 {
		t.Fatal("workload left no dirty pages; the checkpoint has nothing to flush")
	}

	// The data device dies, then an async checkpoint is requested: its
	// records land in the (healthy) log and the call returns success,
	// but the background flush of the snapshot hits the dead device.
	fault.CrashAfterWrites(0, 0)
	if _, err := db.Checkpoint(); err != nil {
		t.Fatalf("async checkpoint enqueue: %v", err)
	}
	abandon(db) // drains the flusher; its completion fails on the dead device
	if got := db.Log().OldestSegment(); got != oldest {
		t.Fatalf("truncation advanced (%d -> %d) on a checkpoint whose snapshot never flushed", oldest, got)
	}
	verifySegmentedRecovered(t, inner, logDir, st)
}
