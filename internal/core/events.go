package core

import (
	"sync"
	"time"
)

// EventType classifies kernel events. Coordinator services subscribe to
// the event bus and react to architectural changes (Section 3.3:
// "coordinator services monitor architectural changes and service
// properties").
type EventType string

// Kernel event types.
const (
	EventServiceRegistered   EventType = "service.registered"
	EventServiceDeregistered EventType = "service.deregistered"
	EventServiceFailed       EventType = "service.failed"
	EventServiceDegraded     EventType = "service.degraded"
	EventServiceRecovered    EventType = "service.recovered"
	EventLowResources        EventType = "resource.low"
	EventResourcesReleased   EventType = "resource.released"
	EventAdaptorCreated      EventType = "adaptor.created"
	EventReconfigured        EventType = "architecture.reconfigured"
	EventPropertyChanged     EventType = "property.changed"
	EventComponentDeployed   EventType = "component.deployed"
	EventComponentUndeployed EventType = "component.undeployed"
	EventWorkflowSwitched    EventType = "workflow.switched"
)

// Event is a notification flowing through the kernel's event bus.
type Event struct {
	Type    EventType
	Subject string            // service/component/resource name
	Detail  string            // human-readable detail
	Attrs   map[string]string // machine-readable attributes
	Time    time.Time
}

// EventBus is a lightweight publish/subscribe bus. Subscribers receive
// events asynchronously on their own buffered channels; a slow
// subscriber drops its oldest pending events rather than blocking
// publishers, because kernel progress must never depend on observers.
type EventBus struct {
	mu     sync.RWMutex
	subs   map[int]*busSub
	nextID int
	hist   []Event
	histN  int
}

type busSub struct {
	ch     chan Event
	filter func(Event) bool
}

// NewEventBus creates a bus retaining the last histN events for late
// subscribers and diagnostics (0 keeps no history).
func NewEventBus(histN int) *EventBus {
	return &EventBus{subs: make(map[int]*busSub), histN: histN}
}

// Publish delivers an event to all matching subscribers. The event time
// is stamped if unset.
func (b *EventBus) Publish(ev Event) {
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	b.mu.Lock()
	if b.histN > 0 {
		b.hist = append(b.hist, ev)
		if len(b.hist) > b.histN {
			b.hist = b.hist[len(b.hist)-b.histN:]
		}
	}
	subs := make([]*busSub, 0, len(b.subs))
	for _, s := range b.subs {
		subs = append(subs, s)
	}
	b.mu.Unlock()

	for _, s := range subs {
		if s.filter != nil && !s.filter(ev) {
			continue
		}
		select {
		case s.ch <- ev:
		default:
			// Drop the oldest pending event to make room; observers
			// must never stall the kernel.
			select {
			case <-s.ch:
			default:
			}
			select {
			case s.ch <- ev:
			default:
			}
		}
	}
}

// Subscribe registers a subscriber with an optional filter. The
// returned cancel function removes the subscription and closes the
// channel.
func (b *EventBus) Subscribe(buf int, filter func(Event) bool) (<-chan Event, func()) {
	if buf <= 0 {
		buf = 64
	}
	s := &busSub{ch: make(chan Event, buf), filter: filter}
	b.mu.Lock()
	id := b.nextID
	b.nextID++
	b.subs[id] = s
	b.mu.Unlock()
	cancel := func() {
		b.mu.Lock()
		if _, ok := b.subs[id]; ok {
			delete(b.subs, id)
			close(s.ch)
		}
		b.mu.Unlock()
	}
	return s.ch, cancel
}

// SubscribeTypes is a convenience wrapper filtering by event types.
func (b *EventBus) SubscribeTypes(buf int, types ...EventType) (<-chan Event, func()) {
	set := make(map[EventType]bool, len(types))
	for _, t := range types {
		set[t] = true
	}
	return b.Subscribe(buf, func(ev Event) bool { return len(set) == 0 || set[ev.Type] })
}

// History returns a copy of the retained event history.
func (b *EventBus) History() []Event {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return append([]Event(nil), b.hist...)
}

// CountByType tallies retained history events by type; used by tests
// and the experiment harness to assert reconfiguration behaviour.
func (b *EventBus) CountByType() map[EventType]int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make(map[EventType]int)
	for _, ev := range b.hist {
		out[ev.Type]++
	}
	return out
}
