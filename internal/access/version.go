package access

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/storage"
)

// Version-chained records (MVCC).
//
// A versioned heap cell is an ordinary record prefixed with a fixed
// 20-byte version header:
//
//	u64 begin | u64 prevPage | u16 prevSlot | u16 flags | record...
//
// begin is either a commit timestamp (the version is committed and
// visible to snapshots reading at or above it) or, while the writing
// transaction is still in flight, VersionMark|txnID — the mark bit
// keeps uncommitted versions above every real timestamp, so the
// visibility test is a single comparison. prev links to the version
// this one superseded (InvalidPageID = no predecessor); chains run
// newest-to-oldest, and begin timestamps strictly decrease along a
// chain. flags bit 0 marks a tombstone: a deletion recorded as a
// version so snapshot readers older than the delete still see the
// value below it.
const (
	// VersionHdrSize is the fixed header length prepended to a record.
	VersionHdrSize = 20
	// VersionMark flags an uncommitted begin field: the low 63 bits
	// are the writing transaction's id, not a timestamp. Commit stamps
	// the real timestamp over it; rollback removes the version.
	VersionMark uint64 = 1 << 63
	// VersionTombstone (flags bit 0) marks a deletion version.
	VersionTombstone uint16 = 1

	// VersionBeginOff / VersionPrevOff locate the stampable header
	// fields for StampBytes: commit stamps 8 bytes of begin at
	// VersionBeginOff; the vacuum severs a chain by stamping 10 bytes
	// (page+slot) of prev at VersionPrevOff.
	VersionBeginOff = 0
	VersionPrevOff  = 8
)

// ErrBadVersion is returned for cells too short to carry a header.
var ErrBadVersion = errors.New("access: short version cell")

// VersionMeta is a decoded version header.
type VersionMeta struct {
	Begin uint64
	Prev  RID
	Flags uint16
}

// Committed reports whether the version carries a real commit
// timestamp (its writer's commit record is durable, or being forced).
func (m VersionMeta) Committed() bool { return m.Begin&VersionMark == 0 }

// TxnID returns the writing transaction's id for an uncommitted
// version (meaningless on committed ones).
func (m VersionMeta) TxnID() uint64 { return m.Begin &^ VersionMark }

// Tombstone reports whether the version records a deletion.
func (m VersionMeta) Tombstone() bool { return m.Flags&VersionTombstone != 0 }

// HasPrev reports whether the version links to a predecessor.
func (m VersionMeta) HasPrev() bool { return m.Prev.Page != storage.InvalidPageID }

// VisibleAt reports whether a snapshot reading at readTS sees this
// version: committed, at or below the read timestamp.
func (m VersionMeta) VisibleAt(readTS uint64) bool {
	return m.Committed() && m.Begin <= readTS
}

// EncodeVersion prepends a version header to rec.
func EncodeVersion(m VersionMeta, rec []byte) []byte {
	out := make([]byte, VersionHdrSize+len(rec))
	binary.LittleEndian.PutUint64(out[VersionBeginOff:], m.Begin)
	binary.LittleEndian.PutUint64(out[VersionPrevOff:], uint64(m.Prev.Page))
	binary.LittleEndian.PutUint16(out[VersionPrevOff+8:], m.Prev.Slot)
	binary.LittleEndian.PutUint16(out[18:], m.Flags)
	copy(out[VersionHdrSize:], rec)
	return out
}

// EncodePrevRID serialises a predecessor link in the header's wire
// form (u64 page | u16 slot) — the byte string StampBytes writes at
// VersionPrevOff when the vacuum severs a chain.
func EncodePrevRID(rid RID) []byte {
	var b [10]byte
	binary.LittleEndian.PutUint64(b[:], uint64(rid.Page))
	binary.LittleEndian.PutUint16(b[8:], rid.Slot)
	return b[:]
}

// EncodeBeginTS serialises a begin timestamp in the header's wire form
// — the byte string commit stamping writes at VersionBeginOff.
func EncodeBeginTS(ts uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], ts)
	return b[:]
}

// DecodeVersion splits a versioned cell into its header and record.
// The returned record aliases cell.
func DecodeVersion(cell []byte) (VersionMeta, []byte, error) {
	if len(cell) < VersionHdrSize {
		return VersionMeta{}, nil, fmt.Errorf("%w: %d bytes", ErrBadVersion, len(cell))
	}
	m := VersionMeta{
		Begin: binary.LittleEndian.Uint64(cell[VersionBeginOff:]),
		Prev: RID{
			Page: storage.PageID(binary.LittleEndian.Uint64(cell[VersionPrevOff:])),
			Slot: binary.LittleEndian.Uint16(cell[VersionPrevOff+8:]),
		},
		Flags: binary.LittleEndian.Uint16(cell[18:]),
	}
	return m, cell[VersionHdrSize:], nil
}
