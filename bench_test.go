package sbdms

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
	"repro/internal/workload"
)

// The benchmarks below regenerate every experiment in EXPERIMENTS.md;
// cmd/sbench prints the same numbers as formatted tables. Names follow
// the experiment index in DESIGN.md (F* = paper figures, G* = the
// future-work studies the paper proposes).

func benchDB(b *testing.B, g Granularity, binding core.Binding) *DB {
	b.Helper()
	db, err := Open(Options{
		Granularity:  g,
		BufferFrames: 512,
		Binding:      binding,
		DisableWAL:   true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = db.Close(context.Background()) })
	return db
}

func runKVMix(b *testing.B, db *DB, mix workload.Mix) {
	b.Helper()
	const keys = 2000
	if err := Preload(db, keys, 100); err != nil {
		b.Fatal(err)
	}
	gen := workload.NewKV(workload.KVConfig{Seed: 1, Keys: keys, Mix: mix, Zipfian: true})
	ops := gen.Ops(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := ops[i%len(ops)]
		switch op.Kind {
		case workload.OpRead:
			if _, err := db.Get(op.Key); err != nil && !isNotFound(err) {
				b.Fatal(err)
			}
		case workload.OpWrite:
			if err := db.Put(op.Key, op.Val); err != nil {
				b.Fatal(err)
			}
		case workload.OpScan:
			if _, err := db.ScanKeys(op.Key, op.ScanLen); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- F1: Figure 1, architecture evolution ------------------------------
// The same KV engine reached as a monolith (direct calls), as a
// statically wired component system (coarse service, resolved ref), and
// as the late-bound service architecture.

func BenchmarkF1_ArchitectureEvolution_Monolithic(b *testing.B) {
	runKVMix(b, benchDB(b, Monolithic, nil), workload.MixB)
}

func BenchmarkF1_ArchitectureEvolution_Component(b *testing.B) {
	runKVMix(b, benchDB(b, Coarse, nil), workload.MixB)
}

func BenchmarkF1_ArchitectureEvolution_ServiceBased(b *testing.B) {
	runKVMix(b, benchDB(b, Layered, nil), workload.MixB)
}

// --- F2: Figure 2, layered composition end to end ----------------------
// SQL through the Data Service layer, exercising all four layers.

func BenchmarkF2_LayeredComposition_SQL(b *testing.B) {
	ctx := context.Background()
	db := benchDB(b, Layered, nil)
	if _, err := db.Exec(ctx, "CREATE TABLE users (id INT, name TEXT, age INT)"); err != nil {
		b.Fatal(err)
	}
	for i, row := range workload.UserRows(7, 2000) {
		q := fmt.Sprintf("INSERT INTO users VALUES (%d, '%s', %d)", row[0].Int, row[1].Str, row[2].Int)
		if _, err := db.Exec(ctx, q); err != nil {
			b.Fatalf("row %d: %v", i, err)
		}
	}
	if _, err := db.Exec(ctx, "CREATE INDEX idx_age ON users (age)"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		age := 18 + i%60
		res, err := db.Exec(ctx, fmt.Sprintf("SELECT COUNT(*) FROM users WHERE age = %d", age))
		if err != nil || len(res.Rows) != 1 {
			b.Fatal(err)
		}
	}
}

// --- F3/F4: Figures 3-4, SCA component and composite wiring ------------

func BenchmarkF3F4_CompositeWiring(b *testing.B) {
	ctx := context.Background()
	impl := func(name string) core.Implementation {
		return core.ImplementationFunc(func(props *core.Properties, refs map[string]*core.Ref) (core.Service, error) {
			s := core.NewService(name, &core.Contract{
				Interface:  "bench.Component",
				Operations: []core.OpSpec{{Name: "noop", In: "nil", Out: "nil"}},
			})
			s.Handle("noop", func(ctx context.Context, req any) (any, error) { return nil, nil })
			return s, nil
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := core.NewKernel(core.WithCoordinatorConfig(core.CoordinatorConfig{ProbePeriod: 0}))
		// A recursive composite of 3 nested levels x 4 components.
		root := core.NewComposite("root")
		for l := 0; l < 3; l++ {
			child := core.NewComposite(fmt.Sprintf("level%d", l))
			for c := 0; c < 4; c++ {
				name := fmt.Sprintf("c%d-%d-%d", i, l, c)
				child.Add(&core.Component{
					Name:       name,
					Impl:       impl(name),
					Properties: map[string]string{"tier": fmt.Sprint(l)},
				})
			}
			root.AddComposite(child)
		}
		if err := k.Deploy(ctx, root); err != nil {
			b.Fatal(err)
		}
		if err := k.Stop(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// --- F5/F6/F7: the flexibility scenarios --------------------------------

func BenchmarkF5_Extension(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		db := benchDB(b, Coarse, nil)
		b.StartTimer()
		res, err := ScenarioExtension(ctx, db, 200)
		if err != nil {
			b.Fatal(err)
		}
		if res.Failures != 0 {
			b.Fatalf("failures: %d", res.Failures)
		}
		b.StopTimer()
		_ = db.Close(ctx)
		b.StartTimer()
	}
}

func BenchmarkF6_Selection(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		db := benchDB(b, Coarse, nil)
		b.StartTimer()
		res, err := ScenarioSelection(ctx, db, 200)
		if err != nil {
			b.Fatal(err)
		}
		if res.Failures != 0 {
			b.Fatalf("failures: %d", res.Failures)
		}
		b.StopTimer()
		_ = db.Close(ctx)
		b.StartTimer()
	}
}

func BenchmarkF7_Adaptation(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		db := benchDB(b, Coarse, nil)
		b.StartTimer()
		res, err := ScenarioAdaptation(ctx, db, 200)
		if err != nil {
			b.Fatal(err)
		}
		if res.OpsAfter == 0 {
			b.Fatal("system stopped operating")
		}
		b.StopTimer()
		_ = db.Close(ctx)
		b.StartTimer()
	}
}

// --- G1: granularity sweep (the paper's future-work study) -------------

func benchGranularity(b *testing.B, g Granularity, mix workload.Mix) {
	runKVMix(b, benchDB(b, g, nil), mix)
}

func BenchmarkG1_Granularity_Monolithic_ReadMostly(b *testing.B) {
	benchGranularity(b, Monolithic, workload.MixB)
}

func BenchmarkG1_Granularity_Coarse_ReadMostly(b *testing.B) {
	benchGranularity(b, Coarse, workload.MixB)
}

func BenchmarkG1_Granularity_Layered_ReadMostly(b *testing.B) {
	benchGranularity(b, Layered, workload.MixB)
}

func BenchmarkG1_Granularity_Fine_ReadMostly(b *testing.B) {
	benchGranularity(b, Fine, workload.MixB)
}

func BenchmarkG1_Granularity_Monolithic_UpdateHeavy(b *testing.B) {
	benchGranularity(b, Monolithic, workload.MixA)
}

func BenchmarkG1_Granularity_Coarse_UpdateHeavy(b *testing.B) {
	benchGranularity(b, Coarse, workload.MixA)
}

func BenchmarkG1_Granularity_Layered_UpdateHeavy(b *testing.B) {
	benchGranularity(b, Layered, workload.MixA)
}

func BenchmarkG1_Granularity_Fine_UpdateHeavy(b *testing.B) {
	benchGranularity(b, Fine, workload.MixA)
}

// TCP-calibrated per-hop cost (see MeasureTCPRoundTrip).

func BenchmarkG1_Granularity_Coarse_TCPHop(b *testing.B) {
	rtt, err := MeasureTCPRoundTrip(100)
	if err != nil {
		b.Fatal(err)
	}
	runKVMix(b, benchDB(b, Coarse, core.DelayBinding{Delay: rtt}), workload.MixB)
}

func BenchmarkG1_Granularity_Layered_TCPHop(b *testing.B) {
	rtt, err := MeasureTCPRoundTrip(100)
	if err != nil {
		b.Fatal(err)
	}
	runKVMix(b, benchDB(b, Layered, core.DelayBinding{Delay: rtt}), workload.MixB)
}

// --- G2: embedded / small-footprint profile ----------------------------

func BenchmarkG2_Embedded_SmallPool(b *testing.B) {
	db, err := Open(Options{
		Granularity:  Coarse,
		BufferFrames: 8, // embedded-scale memory
		DisableWAL:   true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = db.Close(context.Background()) })
	runKVMix(b, db, workload.MixB)
}

// --- G3: client-proximity selection -------------------------------------

func BenchmarkG3_Proximity_NearSelection(b *testing.B) {
	benchProximity(b, true)
}

func BenchmarkG3_Proximity_NoSelection(b *testing.B) {
	benchProximity(b, false)
}

// benchProximity registers a near (fast) and far (slow) provider; with
// proximity selection on, the tag-aware selector finds the near one.
func benchProximity(b *testing.B, selectNear bool) {
	ctx := context.Background()
	reg := core.NewRegistry(nil)
	mk := func(name, node string, delay time.Duration) {
		s := core.NewService(name, &core.Contract{
			Interface:  "bench.Store",
			Operations: []core.OpSpec{{Name: "get", In: "string", Out: "string"}},
		})
		s.Handle("get", func(ctx context.Context, req any) (any, error) {
			if delay > 0 {
				time.Sleep(delay)
			}
			return "v", nil
		})
		_ = s.Start(ctx)
		if err := reg.RegisterService(s, map[string]string{"node": node}); err != nil {
			b.Fatal(err)
		}
	}
	mk("a-far-store", "far", 200*time.Microsecond)
	mk("b-near-store", "near", 0)
	var sel core.Selector
	if selectNear {
		sel = core.SelectByTag("node", "near", nil)
	}
	ref := core.NewRef(reg, "bench.Store", sel)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ref.Invoke(ctx, "get", "k"); err != nil {
			b.Fatal(err)
		}
	}
}

// --- G4: late binding and adaptor overhead ablation ---------------------

func BenchmarkG4_DirectCall(b *testing.B) {
	ctx := context.Background()
	svc := newNoopService(b, "direct")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Invoke(ctx, "noop", nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkG4_CachedRef(b *testing.B) {
	ctx := context.Background()
	reg := core.NewRegistry(nil)
	svc := newNoopService(b, "svc")
	if err := reg.RegisterService(svc, nil); err != nil {
		b.Fatal(err)
	}
	ref := core.NewRef(reg, "bench.Noop", nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ref.Invoke(ctx, "noop", nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkG4_UncachedRef(b *testing.B) {
	ctx := context.Background()
	reg := core.NewRegistry(nil)
	svc := newNoopService(b, "svc")
	if err := reg.RegisterService(svc, nil); err != nil {
		b.Fatal(err)
	}
	ref := core.NewUncachedRef(reg, "bench.Noop", nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ref.Invoke(ctx, "noop", nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkG4_AdaptorCall(b *testing.B) {
	ctx := context.Background()
	svc := newNoopService(b, "svc")
	required := &core.Contract{
		Interface:  "bench.Other",
		Operations: []core.OpSpec{{Name: "doIt", In: "nil", Out: "nil", Semantic: "bench.noop"}},
	}
	ad, err := core.GenerateAdaptor("ad", required, svc.Contract(), svc, core.NewRepository())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ad.Invoke(ctx, "doIt", nil); err != nil {
			b.Fatal(err)
		}
	}
}

func newNoopService(b *testing.B, name string) *core.BaseService {
	b.Helper()
	s := core.NewService(name, &core.Contract{
		Interface:  "bench.Noop",
		Operations: []core.OpSpec{{Name: "noop", In: "nil", Out: "nil", Semantic: "bench.noop"}},
	})
	s.Handle("noop", func(ctx context.Context, req any) (any, error) { return nil, nil })
	if err := s.Start(context.Background()); err != nil {
		b.Fatal(err)
	}
	return s
}

// --- ablation: buffer replacement policies under zipfian KV -------------

func benchPolicy(b *testing.B, policy string) {
	db, err := Open(Options{
		Granularity:  Monolithic,
		BufferFrames: 32, // small pool so policy matters
		BufferPolicy: policy,
		DisableWAL:   true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = db.Close(context.Background()) })
	runKVMix(b, db, workload.MixB)
}

func BenchmarkAblation_BufferPolicy_LRU(b *testing.B)   { benchPolicy(b, "lru") }
func BenchmarkAblation_BufferPolicy_Clock(b *testing.B) { benchPolicy(b, "clock") }
func BenchmarkAblation_BufferPolicy_TwoQ(b *testing.B)  { benchPolicy(b, "2q") }

// --- contended buffer pool: sharded vs single-mutex baseline -----------
// Parallel Pin/Unpin from a fixed number of goroutines over a page set
// larger than the pool, so the pool mutex (or shard mutexes) sit on the
// hot path of both hits and miss-driven evictions.

func benchBufferContention(b *testing.B, nshards, workers int) {
	disk, err := storage.OpenDisk(storage.NewMemDevice())
	if err != nil {
		b.Fatal(err)
	}
	pool := buffer.NewSharded(disk, 512, nshards, "lru")
	const npages = 2048
	ids := make([]storage.PageID, npages)
	for i := range ids {
		if ids[i], err = disk.Allocate(); err != nil {
			b.Fatal(err)
		}
	}
	per := b.N/workers + 1
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				id := ids[rng.Intn(npages)]
				if _, err := pool.Pin(id); err != nil {
					b.Error(err)
					return
				}
				if err := pool.Unpin(id, false); err != nil {
					b.Error(err)
					return
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
}

func BenchmarkBufferContention_SingleLock_G1(b *testing.B)  { benchBufferContention(b, 1, 1) }
func BenchmarkBufferContention_SingleLock_G4(b *testing.B)  { benchBufferContention(b, 1, 4) }
func BenchmarkBufferContention_SingleLock_G16(b *testing.B) { benchBufferContention(b, 1, 16) }
func BenchmarkBufferContention_Sharded_G1(b *testing.B)     { benchBufferContention(b, 8, 1) }
func BenchmarkBufferContention_Sharded_G4(b *testing.B)     { benchBufferContention(b, 8, 4) }
func BenchmarkBufferContention_Sharded_G16(b *testing.B)    { benchBufferContention(b, 8, 16) }

// --- contended WAL commit: group commit vs fsync-per-commit ------------
// N committers run begin/commit transactions against a file-backed log
// (real fsync). Group commit lets concurrent committers share one sync;
// the baseline issues one sync per flush.

func benchWALCommit(b *testing.B, syncEveryFlush bool, committers int) {
	dev, err := storage.OpenFileDevice(filepath.Join(b.TempDir(), "bench.wal"))
	if err != nil {
		b.Fatal(err)
	}
	defer dev.Close()
	l, err := wal.Open(dev)
	if err != nil {
		b.Fatal(err)
	}
	l.SetSyncEveryFlush(syncEveryFlush)
	mgr := txn.NewManager(l, nil)
	per := b.N/committers + 1
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < committers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				t, err := mgr.Begin()
				if err != nil {
					b.Error(err)
					return
				}
				if err := mgr.Commit(t); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	commits := float64(per * committers)
	b.ReportMetric(float64(l.Syncs())/commits, "syncs/commit")
}

func BenchmarkWALCommit_FsyncPerCommit_C1(b *testing.B)  { benchWALCommit(b, true, 1) }
func BenchmarkWALCommit_FsyncPerCommit_C4(b *testing.B)  { benchWALCommit(b, true, 4) }
func BenchmarkWALCommit_FsyncPerCommit_C16(b *testing.B) { benchWALCommit(b, true, 16) }
func BenchmarkWALCommit_GroupCommit_C1(b *testing.B)     { benchWALCommit(b, false, 1) }
func BenchmarkWALCommit_GroupCommit_C4(b *testing.B)     { benchWALCommit(b, false, 4) }
func BenchmarkWALCommit_GroupCommit_C16(b *testing.B)    { benchWALCommit(b, false, 16) }
