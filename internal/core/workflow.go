package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Workflow errors.
var (
	// ErrNoWorkflow is returned when no runnable workflow exists for a
	// task.
	ErrNoWorkflow = errors.New("core: no runnable workflow")
)

// Step is one service invocation within a workflow: call Op on any
// provider of Interface, feeding it the previous step's output (or the
// workflow input for the first step). Transform, when set, reshapes the
// value before invocation.
type Step struct {
	Interface string
	Op        string
	Transform TransformFunc
}

// Workflow is an ordered service composition accomplishing a task
// (Section 3.3: "services are composed dynamically at run time").
// Workflows are data, not code: coordinators store alternates and
// switch between them when the architecture changes.
type Workflow struct {
	// Name identifies the workflow variant.
	Name string
	// Task is the logical task this workflow accomplishes; several
	// workflows may share a task (flexibility by selection).
	Task string
	// Priority orders alternates; lower runs first when runnable.
	Priority int
	Steps    []Step
}

// Runnable reports whether every step has at least one live provider in
// the registry.
func (w *Workflow) Runnable(reg *Registry) bool {
	for _, s := range w.Steps {
		if len(reg.Discover(s.Interface)) == 0 {
			return false
		}
	}
	return true
}

// Run executes the workflow against the registry, threading the value
// through the steps with late-bound per-step resolution.
func (w *Workflow) Run(ctx context.Context, reg *Registry, sel Selector, input any) (any, error) {
	if sel == nil {
		sel = SelectFirst
	}
	v := input
	for i, s := range w.Steps {
		if s.Transform != nil {
			var err error
			v, err = s.Transform(v)
			if err != nil {
				return nil, fmt.Errorf("workflow %s step %d: transform: %w", w.Name, i, err)
			}
		}
		cands := reg.Discover(s.Interface)
		prov := sel(cands)
		if prov == nil {
			return nil, fmt.Errorf("workflow %s step %d: %w: interface %s", w.Name, i, ErrNotFound, s.Interface)
		}
		out, err := prov.Invoker.Invoke(ctx, s.Op, v)
		if err != nil {
			return nil, fmt.Errorf("workflow %s step %d (%s.%s on %s): %w",
				w.Name, i, s.Interface, s.Op, prov.Name, err)
		}
		v = out
	}
	return v, nil
}

// WorkflowSet stores alternate workflows per task and picks the best
// runnable one. Coordinator services consult it when the architecture
// changes ("resource management services find alternate workflows to
// manage the new situation", Section 3.3).
type WorkflowSet struct {
	mu    sync.RWMutex
	byTsk map[string][]*Workflow
}

// NewWorkflowSet creates an empty workflow set.
func NewWorkflowSet() *WorkflowSet {
	return &WorkflowSet{byTsk: make(map[string][]*Workflow)}
}

// Add registers a workflow under its task, keeping alternates ordered
// by priority then name.
func (ws *WorkflowSet) Add(w *Workflow) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	list := append(ws.byTsk[w.Task], w)
	sort.Slice(list, func(i, j int) bool {
		if list[i].Priority != list[j].Priority {
			return list[i].Priority < list[j].Priority
		}
		return list[i].Name < list[j].Name
	})
	ws.byTsk[w.Task] = list
}

// Alternates returns all workflows registered for a task, in priority
// order.
func (ws *WorkflowSet) Alternates(task string) []*Workflow {
	ws.mu.RLock()
	defer ws.mu.RUnlock()
	return append([]*Workflow(nil), ws.byTsk[task]...)
}

// Pick returns the highest-priority runnable workflow for the task.
func (ws *WorkflowSet) Pick(task string, reg *Registry) (*Workflow, error) {
	for _, w := range ws.Alternates(task) {
		if w.Runnable(reg) {
			return w, nil
		}
	}
	return nil, fmt.Errorf("%w: task %s", ErrNoWorkflow, task)
}

// Run picks and executes the best runnable workflow for the task.
func (ws *WorkflowSet) Run(ctx context.Context, task string, reg *Registry, sel Selector, input any) (any, error) {
	w, err := ws.Pick(task, reg)
	if err != nil {
		return nil, err
	}
	return w.Run(ctx, reg, sel, input)
}

// Tasks returns the sorted list of known tasks.
func (ws *WorkflowSet) Tasks() []string {
	ws.mu.RLock()
	defer ws.mu.RUnlock()
	out := make([]string, 0, len(ws.byTsk))
	for t := range ws.byTsk {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
