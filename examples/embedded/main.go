// Embedded: the small-footprint scenario of Section 4 — a device with a
// tiny buffer pool and a simulated battery. When the battery runs low,
// the monitoring service raises a low-resource alert and the
// coordinator redirects the workload to a standby service so "the
// system [stays] operational".
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	sbdms "repro"
	"repro/internal/core"
	"repro/internal/monitor"
)

func main() {
	ctx := context.Background()

	// Small footprint: 8 buffer frames, no WAL, coarse decomposition.
	db, err := sbdms.Open(sbdms.Options{
		Granularity:  sbdms.Coarse,
		BufferFrames: 8,
		DisableWAL:   true,
		Coordinator: core.CoordinatorConfig{
			ProbePeriod:  20 * time.Millisecond,
			ProbeTimeout: 100 * time.Millisecond,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close(ctx)
	fmt.Printf("embedded profile: %d services, %d buffer frames\n",
		db.Kernel().Registry().Len(), db.Pool().PoolSize())

	// A standby KV service on "another device" (in-memory stand-in).
	standby := newMemStore()
	if err := deployStandby(ctx, db, standby); err != nil {
		log.Fatal(err)
	}

	// The simulated device: 300 battery units, alert at 25% remaining.
	// On alert, a monitoring service publishes a low-resource event
	// attributed to the primary kv service; the kernel coordinator
	// steers the workload away (Figure 6 machinery, Section 4 trigger).
	dev := monitor.NewDevice(monitor.DeviceConfig{
		Name: "edge-device", BatteryCap: 300, OpCost: 1, LowWater: 0.25,
		OnLow: func(resource string, remaining float64) {
			fmt.Printf("!! low %s alert at %.0f%% — redirecting workload\n", resource, remaining*100)
			db.Kernel().Bus().Publish(core.Event{
				Type:    core.EventLowResources,
				Subject: resource,
				Attrs:   map[string]string{"service": "kv"},
			})
		},
	})

	// Drive a workload; every op drains the battery.
	lat := monitor.NewLatencyRecorder(4096)
	served := map[string]int{}
	for i := 0; i < 400; i++ {
		if !dev.DoOp() {
			fmt.Println("battery exhausted — halting local ops")
			break
		}
		key := fmt.Sprintf("reading-%03d", i%64)
		start := time.Now()
		err := db.Put(key, []byte(fmt.Sprintf("%d", i)))
		lat.Record(time.Since(start))
		if err != nil {
			log.Fatalf("op %d: %v", i, err)
		}
		served[currentProvider(db)]++
		time.Sleep(200 * time.Microsecond) // let the coordinator breathe
	}
	remaining, capn := dev.Battery()
	fmt.Printf("battery: %.0f/%.0f units left after %d ops\n", remaining, capn, dev.Ops())
	fmt.Printf("ops served by provider: %v\n", served)
	fmt.Printf("latency: %v\n", lat.Summarize())
	if served["kv-standby"] == 0 {
		log.Fatal("expected the standby to take over after the alert")
	}
	fmt.Println("workload redirected successfully — system stayed operational")
}

// currentProvider asks the coordinator which providers are avoided to
// infer who serves (simplified introspection for the demo).
func currentProvider(db *sbdms.DB) string {
	st := db.Kernel().Coordinator().Status()
	for _, avoided := range st.AvoidedSvcs {
		if avoided == "kv" {
			return "kv-standby"
		}
	}
	return "kv"
}

// memStore is the standby device's trivial KV backend.
type memStore struct{ m map[string][]byte }

func newMemStore() *memStore { return &memStore{m: map[string][]byte{}} }

func (s *memStore) Put(_ context.Context, k string, v []byte) error { s.m[k] = v; return nil }
func (s *memStore) PutBatch(_ context.Context, keys []string, vals [][]byte) error {
	if len(keys) != len(vals) {
		return fmt.Errorf("embedded: %d keys, %d values", len(keys), len(vals))
	}
	for i, k := range keys {
		s.m[k] = vals[i]
	}
	return nil
}
func (s *memStore) Import(ctx context.Context, keys []string, vals [][]byte) error {
	return s.PutBatch(ctx, keys, vals)
}
func (s *memStore) Get(_ context.Context, k string) ([]byte, error) {
	if v, ok := s.m[k]; ok {
		return v, nil
	}
	return nil, fmt.Errorf("not found: %s", k)
}
func (s *memStore) Delete(_ context.Context, k string) error { delete(s.m, k); return nil }
func (s *memStore) Scan(_ context.Context, from string, n int) ([]string, error) {
	var out []string
	for k := range s.m {
		if k >= from && len(out) < n {
			out = append(out, k)
		}
	}
	return out, nil
}

// The standby holds one version per key, so snapshot reads degrade to
// the plain operations.
func (s *memStore) GetSnapshot(ctx context.Context, k string) ([]byte, error) { return s.Get(ctx, k) }
func (s *memStore) ScanKeysSnapshot(ctx context.Context, from string, n int) ([]string, error) {
	return s.Scan(ctx, from, n)
}

func (s *memStore) Len() uint64 { return uint64(len(s.m)) }

func deployStandby(ctx context.Context, db *sbdms.DB, backend *memStore) error {
	svc := sbdms.NewKVService("kv-standby", backend)
	if err := svc.Start(ctx); err != nil {
		return err
	}
	return db.Kernel().Registry().RegisterService(svc, map[string]string{"node": "standby-device"})
}
