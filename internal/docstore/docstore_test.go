package docstore

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/buffer"
	"repro/internal/storage"
)

const catalogXML = `
<library city="zurich">
  <book id="1" genre="db">
    <title>Component Database Systems</title>
    <year>2001</year>
  </book>
  <book id="2" genre="db">
    <title>Readings in Database Systems</title>
    <year>1988</year>
  </book>
  <book id="3" genre="se">
    <title>Software Architecture in Practice</title>
    <year>1998</year>
  </book>
</library>`

func TestParseXML(t *testing.T) {
	doc, err := ParseXML(strings.NewReader(catalogXML))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Name != "library" || doc.Attrs["city"] != "zurich" {
		t.Fatalf("root = %+v", doc)
	}
	if len(doc.Children) != 3 {
		t.Fatalf("children = %d", len(doc.Children))
	}
	title := doc.Children[0].Children[0]
	if title.Name != "title" || title.Text != "Component Database Systems" {
		t.Fatalf("title = %+v", title)
	}
}

func TestParseXMLErrors(t *testing.T) {
	bad := []string{
		"",
		"<a><b></a></b>",
		"<a></a><b></b>",
		"<unclosed>",
	}
	for _, s := range bad {
		if _, err := ParseXML(strings.NewReader(s)); err == nil {
			t.Errorf("ParseXML(%q) should fail", s)
		}
	}
}

func TestXMLRoundTrip(t *testing.T) {
	doc, err := ParseXML(strings.NewReader(catalogXML))
	if err != nil {
		t.Fatal(err)
	}
	out := doc.XML()
	back, err := ParseXML(strings.NewReader(out))
	if err != nil {
		t.Fatalf("re-parsing rendered XML: %v\n%s", err, out)
	}
	if len(back.Children) != 3 || back.Attrs["city"] != "zurich" {
		t.Fatalf("round trip lost structure: %s", out)
	}
}

func TestSelectPaths(t *testing.T) {
	doc, _ := ParseXML(strings.NewReader(catalogXML))
	books, err := doc.Select("/library/book")
	if err != nil || len(books) != 3 {
		t.Fatalf("books = %d, %v", len(books), err)
	}
	db, err := doc.Select("/library/book[@genre='db']")
	if err != nil || len(db) != 2 {
		t.Fatalf("db books = %d, %v", len(db), err)
	}
	titles, err := doc.Select("/library/book[@genre='se']/title")
	if err != nil || len(titles) != 1 || titles[0].Text != "Software Architecture in Practice" {
		t.Fatalf("titles = %v, %v", titles, err)
	}
	// Wildcard step.
	all, err := doc.Select("/library/*")
	if err != nil || len(all) != 3 {
		t.Fatalf("wildcard = %d, %v", len(all), err)
	}
	// Non-matching root.
	none, err := doc.Select("/nothing/book")
	if err != nil || len(none) != 0 {
		t.Fatalf("none = %v", none)
	}
}

func TestBadPaths(t *testing.T) {
	doc, _ := ParseXML(strings.NewReader(catalogXML))
	for _, p := range []string{"library", "/", "//x", "/a[genre='db']", "/a[@k]", "/a[@k='v'"} {
		if _, err := doc.Select(p); !errors.Is(err, ErrBadPath) {
			t.Errorf("Select(%q) err = %v", p, err)
		}
	}
}

func newStore(t *testing.T) (*Store, *storage.FileManager, *buffer.Manager) {
	t.Helper()
	d, err := storage.OpenDisk(storage.NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	pool := buffer.New(d, 32, buffer.NewLRU())
	fm, err := storage.OpenFileManager(pool)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(fm, pool)
	if err != nil {
		t.Fatal(err)
	}
	return s, fm, pool
}

func TestStorePutGetQuery(t *testing.T) {
	s, _, _ := newStore(t)
	if err := s.PutXML("catalog", catalogXML); err != nil {
		t.Fatal(err)
	}
	doc, err := s.Get("catalog")
	if err != nil || doc.Name != "library" {
		t.Fatalf("Get = %v, %v", doc, err)
	}
	nodes, err := s.Query("catalog", "/library/book[@id='2']/title")
	if err != nil || len(nodes) != 1 || nodes[0].Text != "Readings in Database Systems" {
		t.Fatalf("Query = %v, %v", nodes, err)
	}
	if _, err := s.Get("zzz"); !errors.Is(err, ErrNoDoc) {
		t.Fatalf("err = %v", err)
	}
	if got := s.List(); len(got) != 1 || got[0] != "catalog" {
		t.Fatalf("List = %v", got)
	}
	// Replace and delete.
	if err := s.PutXML("catalog", "<library/>"); err != nil {
		t.Fatal(err)
	}
	doc, _ = s.Get("catalog")
	if len(doc.Children) != 0 {
		t.Fatal("replace failed")
	}
	if err := s.Delete("catalog"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("catalog"); !errors.Is(err, ErrNoDoc) {
		t.Fatalf("err = %v", err)
	}
}

func TestStorePersistence(t *testing.T) {
	d, _ := storage.OpenDisk(storage.NewMemDevice())
	pool := buffer.New(d, 32, buffer.NewLRU())
	fm, _ := storage.OpenFileManager(pool)
	s, err := Open(fm, pool)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutXML("doc", catalogXML); err != nil {
		t.Fatal(err)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Reopen over the same pool/fm.
	s2, err := Open(fm, pool)
	if err != nil {
		t.Fatal(err)
	}
	nodes, err := s2.Query("doc", "/library/book")
	if err != nil || len(nodes) != 3 {
		t.Fatalf("reopened query = %v, %v", nodes, err)
	}
}
