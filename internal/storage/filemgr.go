package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// File manager errors.
var (
	// ErrFileExists is returned when creating a file that already
	// exists.
	ErrFileExists = errors.New("storage: file exists")
	// ErrFileNotFound is returned for operations on unknown files.
	ErrFileNotFound = errors.New("storage: file not found")
	// ErrBadDirectory is returned when the on-disk directory is
	// corrupt.
	ErrBadDirectory = errors.New("storage: corrupt file directory")
)

// fileEntry is the directory record of one named file.
type fileEntry struct {
	name      string
	firstPage PageID
	lastPage  PageID
	pageCount uint64
}

// FileManager organises pages of a PageStore into named doubly-linked
// page chains ("files"), with a directory persisted in a dedicated page
// chain rooted at the first page of the store. It corresponds to the
// File Manager service of Figures 5-7 and underlies heap files and the
// catalog.
type FileManager struct {
	mu      sync.Mutex
	store   PageStore
	files   map[string]*fileEntry
	dirRoot PageID
	dirLen  int // number of directory chain pages currently in use
}

// DirectoryRootPage is the fixed page id of the directory chain root;
// it is the first page allocated on a fresh store.
const DirectoryRootPage PageID = 1

// OpenFileManager opens (or initialises) a file manager over a page
// store. On a fresh store it claims the first page for its directory.
func OpenFileManager(store PageStore) (*FileManager, error) {
	fm := &FileManager{store: store, files: make(map[string]*fileEntry)}
	if store.NumPages() == 0 {
		id, err := store.Allocate()
		if err != nil {
			return nil, err
		}
		if id != DirectoryRootPage {
			return nil, fmt.Errorf("%w: directory root allocated as page %d", ErrBadDirectory, id)
		}
		fm.dirRoot = id
		fm.dirLen = 1
		if err := fm.persistLocked(); err != nil {
			return nil, err
		}
		return fm, nil
	}
	fm.dirRoot = DirectoryRootPage
	if err := fm.loadLocked(); err != nil {
		return nil, err
	}
	return fm, nil
}

// encode layout: u32 blobLen | blob, where blob is
// u32 fileCount { u16 nameLen | name | u64 first | u64 last | u64 count }*
func (fm *FileManager) encodeLocked() []byte {
	names := make([]string, 0, len(fm.files))
	for n := range fm.files {
		names = append(names, n)
	}
	sort.Strings(names)
	blob := make([]byte, 4)
	binary.LittleEndian.PutUint32(blob, uint32(len(names)))
	for _, n := range names {
		e := fm.files[n]
		var rec [2]byte
		binary.LittleEndian.PutUint16(rec[:], uint16(len(n)))
		blob = append(blob, rec[:]...)
		blob = append(blob, n...)
		var nums [24]byte
		binary.LittleEndian.PutUint64(nums[0:], uint64(e.firstPage))
		binary.LittleEndian.PutUint64(nums[8:], uint64(e.lastPage))
		binary.LittleEndian.PutUint64(nums[16:], e.pageCount)
		blob = append(blob, nums[:]...)
	}
	out := make([]byte, 4+len(blob))
	binary.LittleEndian.PutUint32(out, uint32(len(blob)))
	copy(out[4:], blob)
	return out
}

func (fm *FileManager) decodeLocked(raw []byte) error {
	if len(raw) < 4 {
		return fmt.Errorf("%w: truncated header", ErrBadDirectory)
	}
	blobLen := binary.LittleEndian.Uint32(raw)
	if int(blobLen) > len(raw)-4 {
		return fmt.Errorf("%w: blob length %d exceeds data", ErrBadDirectory, blobLen)
	}
	blob := raw[4 : 4+blobLen]
	if len(blob) < 4 {
		return fmt.Errorf("%w: truncated blob", ErrBadDirectory)
	}
	count := binary.LittleEndian.Uint32(blob)
	blob = blob[4:]
	files := make(map[string]*fileEntry, count)
	for i := uint32(0); i < count; i++ {
		if len(blob) < 2 {
			return fmt.Errorf("%w: truncated entry", ErrBadDirectory)
		}
		nameLen := int(binary.LittleEndian.Uint16(blob))
		blob = blob[2:]
		if len(blob) < nameLen+24 {
			return fmt.Errorf("%w: truncated entry body", ErrBadDirectory)
		}
		name := string(blob[:nameLen])
		blob = blob[nameLen:]
		e := &fileEntry{
			name:      name,
			firstPage: PageID(binary.LittleEndian.Uint64(blob[0:])),
			lastPage:  PageID(binary.LittleEndian.Uint64(blob[8:])),
			pageCount: binary.LittleEndian.Uint64(blob[16:]),
		}
		blob = blob[24:]
		files[name] = e
	}
	fm.files = files
	return nil
}

// persistLocked writes the directory blob across the directory chain,
// growing or shrinking it as needed.
func (fm *FileManager) persistLocked() error {
	raw := fm.encodeLocked()
	needPages := (len(raw) + PayloadSize - 1) / PayloadSize
	if needPages == 0 {
		needPages = 1
	}
	// Walk existing chain, writing chunks; extend or free as needed.
	buf := make([]byte, PageSize)
	cur := fm.dirRoot
	prev := InvalidPageID
	written := 0
	for i := 0; i < needPages; i++ {
		if cur == InvalidPageID {
			id, err := fm.store.Allocate()
			if err != nil {
				return err
			}
			// Link from prev.
			if err := fm.store.ReadPage(prev, buf); err != nil {
				return err
			}
			WrapPage(prev, buf).SetNext(id)
			if err := fm.store.WritePage(prev, buf); err != nil {
				return err
			}
			cur = id
			// Fresh page buffer.
			for j := range buf {
				buf[j] = 0
			}
			WrapPage(cur, buf).SetPrev(prev)
		} else if err := fm.store.ReadPage(cur, buf); err != nil {
			return err
		}
		p := WrapPage(cur, buf)
		p.SetType(PageTypeDirectory)
		chunk := raw[written:min(written+PayloadSize, len(raw))]
		payload := p.Payload()
		copy(payload, chunk)
		for j := len(chunk); j < PayloadSize; j++ {
			payload[j] = 0
		}
		written += len(chunk)
		next := p.Next()
		if i == needPages-1 && next != InvalidPageID {
			p.SetNext(InvalidPageID)
			if err := fm.store.WritePage(cur, buf); err != nil {
				return err
			}
			// Free the surplus tail of the chain.
			if err := fm.freeChainLocked(next); err != nil {
				return err
			}
		} else {
			if err := fm.store.WritePage(cur, buf); err != nil {
				return err
			}
		}
		prev = cur
		cur = next
	}
	fm.dirLen = needPages
	return nil
}

func (fm *FileManager) freeChainLocked(from PageID) error {
	buf := make([]byte, PageSize)
	for id := from; id != InvalidPageID; {
		if err := fm.store.ReadPage(id, buf); err != nil {
			return err
		}
		next := WrapPage(id, buf).Next()
		if err := fm.store.Deallocate(id); err != nil {
			return err
		}
		id = next
	}
	return nil
}

// loadLocked reads the directory chain and decodes the blob.
func (fm *FileManager) loadLocked() error {
	var raw []byte
	buf := make([]byte, PageSize)
	n := 0
	for id := fm.dirRoot; id != InvalidPageID; {
		if err := fm.store.ReadPage(id, buf); err != nil {
			return err
		}
		p := WrapPage(id, buf)
		if p.Type() != PageTypeDirectory {
			return fmt.Errorf("%w: page %d has type %d", ErrBadDirectory, id, p.Type())
		}
		raw = append(raw, p.Payload()...)
		id = p.Next()
		n++
		if n > 1<<20 {
			return fmt.Errorf("%w: directory chain cycle", ErrBadDirectory)
		}
	}
	fm.dirLen = n
	return fm.decodeLocked(raw)
}

// Create registers a new empty file.
func (fm *FileManager) Create(name string) error {
	if name == "" {
		return fmt.Errorf("storage: empty file name")
	}
	fm.mu.Lock()
	defer fm.mu.Unlock()
	if _, ok := fm.files[name]; ok {
		return fmt.Errorf("%w: %s", ErrFileExists, name)
	}
	fm.files[name] = &fileEntry{name: name}
	return fm.persistLocked()
}

// Drop removes a file and returns all its pages to the store.
func (fm *FileManager) Drop(name string) error {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	e, ok := fm.files[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrFileNotFound, name)
	}
	if e.firstPage != InvalidPageID {
		if err := fm.freeChainLocked(e.firstPage); err != nil {
			return err
		}
	}
	delete(fm.files, name)
	return fm.persistLocked()
}

// Exists reports whether the file exists.
func (fm *FileManager) Exists(name string) bool {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	_, ok := fm.files[name]
	return ok
}

// List returns the sorted names of all files.
func (fm *FileManager) List() []string {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	out := make([]string, 0, len(fm.files))
	for n := range fm.files {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// FirstPage returns the first page of the file's chain
// (InvalidPageID for an empty file).
func (fm *FileManager) FirstPage(name string) (PageID, error) {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	e, ok := fm.files[name]
	if !ok {
		return InvalidPageID, fmt.Errorf("%w: %s", ErrFileNotFound, name)
	}
	return e.firstPage, nil
}

// LastPage returns the last page of the file's chain.
func (fm *FileManager) LastPage(name string) (PageID, error) {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	e, ok := fm.files[name]
	if !ok {
		return InvalidPageID, fmt.Errorf("%w: %s", ErrFileNotFound, name)
	}
	return e.lastPage, nil
}

// PageCount returns the number of pages in the file.
func (fm *FileManager) PageCount(name string) (uint64, error) {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	e, ok := fm.files[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrFileNotFound, name)
	}
	return e.pageCount, nil
}

// AppendPage allocates a fresh page, links it at the end of the file's
// chain, and returns its id. The page is typed t.
func (fm *FileManager) AppendPage(name string, t PageType) (PageID, error) {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	e, ok := fm.files[name]
	if !ok {
		return InvalidPageID, fmt.Errorf("%w: %s", ErrFileNotFound, name)
	}
	id, err := fm.store.Allocate()
	if err != nil {
		return InvalidPageID, err
	}
	buf := make([]byte, PageSize)
	p := WrapPage(id, buf)
	p.SetType(t)
	p.SetPrev(e.lastPage)
	if err := fm.store.WritePage(id, buf); err != nil {
		return InvalidPageID, err
	}
	if e.lastPage != InvalidPageID {
		last := make([]byte, PageSize)
		if err := fm.store.ReadPage(e.lastPage, last); err != nil {
			return InvalidPageID, err
		}
		WrapPage(e.lastPage, last).SetNext(id)
		if err := fm.store.WritePage(e.lastPage, last); err != nil {
			return InvalidPageID, err
		}
	} else {
		e.firstPage = id
	}
	e.lastPage = id
	e.pageCount++
	if err := fm.persistLocked(); err != nil {
		return InvalidPageID, err
	}
	return id, nil
}

// NextPage follows the chain pointer of a page.
func (fm *FileManager) NextPage(id PageID) (PageID, error) {
	buf := make([]byte, PageSize)
	if err := fm.store.ReadPage(id, buf); err != nil {
		return InvalidPageID, err
	}
	return WrapPage(id, buf).Next(), nil
}

// Pages returns all page ids of a file in chain order.
func (fm *FileManager) Pages(name string) ([]PageID, error) {
	first, err := fm.FirstPage(name)
	if err != nil {
		return nil, err
	}
	var out []PageID
	buf := make([]byte, PageSize)
	for id := first; id != InvalidPageID; {
		out = append(out, id)
		if err := fm.store.ReadPage(id, buf); err != nil {
			return nil, err
		}
		id = WrapPage(id, buf).Next()
	}
	return out, nil
}
