package sbdms

import (
	"testing"
	"time"

	"repro/internal/workload"
)

func TestMeasureKVReportsSaneNumbers(t *testing.T) {
	db := openDB(t, Coarse)
	if err := Preload(db, 100, 50); err != nil {
		t.Fatal(err)
	}
	gen := workload.NewKV(workload.KVConfig{Seed: 1, Keys: 100, Mix: workload.MixA})
	m := MeasureKV(db, gen, 500)
	if m.Ops != 500 || m.Failures != 0 {
		t.Fatalf("measurement = %+v", m)
	}
	if m.OpsPerSec <= 0 || m.P50 <= 0 || m.P99 < m.P50 {
		t.Fatalf("stats broken: %+v", m)
	}
	if m.Granularity != Coarse || m.Binding != "local" {
		t.Fatalf("labels = %+v", m)
	}
	if m.String() == "" {
		t.Fatal("String")
	}
}

func TestMeasureKVCountsMissesNotFailures(t *testing.T) {
	// A read-only mix over an empty store: every read misses, none may
	// count as a failure.
	db := openDB(t, Monolithic)
	gen := workload.NewKV(workload.KVConfig{Seed: 2, Keys: 50, Mix: workload.MixC})
	m := MeasureKV(db, gen, 200)
	if m.Failures != 0 {
		t.Fatalf("misses counted as failures: %+v", m)
	}
}

func TestMeasureTCPRoundTrip(t *testing.T) {
	rtt, err := MeasureTCPRoundTrip(50)
	if err != nil {
		t.Fatal(err)
	}
	if rtt <= 0 || rtt > 100*time.Millisecond {
		t.Fatalf("rtt = %v, implausible for loopback", rtt)
	}
}

func TestGranularitySweepSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep opens 8 databases")
	}
	ms, err := GranularitySweep(workload.MixB, 200, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2*len(Granularities) {
		t.Fatalf("cells = %d", len(ms))
	}
	// Local cells must be much faster than delay-bound cells for any
	// service-based profile.
	byKey := map[string]KVMeasurement{}
	for _, m := range ms {
		key := string(m.Granularity)
		if m.Binding == "local" {
			byKey["local/"+key] = m
		} else {
			byKey["tcp/"+key] = m
		}
	}
	for _, g := range []Granularity{Coarse, Layered, Fine} {
		local, tcp := byKey["local/"+string(g)], byKey["tcp/"+string(g)]
		if local.OpsPerSec <= tcp.OpsPerSec {
			t.Fatalf("%s: local %.0f <= tcp %.0f op/s", g, local.OpsPerSec, tcp.OpsPerSec)
		}
	}
	// Monolithic must beat layered under the TCP binding (the paper's
	// granularity tradeoff).
	if byKey["tcp/monolithic"].OpsPerSec <= byKey["tcp/layered"].OpsPerSec {
		t.Fatal("granularity tradeoff shape missing under TCP binding")
	}
}
