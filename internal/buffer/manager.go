package buffer

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"repro/internal/storage"
)

// Buffer manager errors.
var (
	// ErrPoolExhausted is returned when every frame is pinned and a new
	// page must be brought in.
	ErrPoolExhausted = errors.New("buffer: all frames pinned")
	// ErrNotPinned is returned by Unpin on a page that has no pins.
	ErrNotPinned = errors.New("buffer: page not pinned")
	// ErrPinned is returned when freeing a page that is still pinned.
	ErrPinned = errors.New("buffer: page still pinned")
)

// Frame is a pinned page in the buffer pool. The Data slice aliases the
// pool frame; it is valid until Unpin. Callers that modify Data must
// pass dirty=true to Unpin.
type Frame struct {
	ID   storage.PageID
	Data []byte
}

// Page returns a typed page view over the frame.
func (f *Frame) Page() *storage.Page { return storage.WrapPage(f.ID, f.Data) }

// Stats are cumulative buffer pool counters.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Flushes   uint64
}

// HitRate returns hits / (hits+misses), or 0 with no traffic.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

func (s *Stats) add(o Stats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.Flushes += o.Flushes
}

type frame struct {
	id    storage.PageID
	data  []byte
	pins  int
	dirty bool
	valid bool
	// latch is the page latch: short-term physical mutual exclusion
	// over the frame bytes, acquired AFTER pinning (a pinned page
	// cannot be evicted, so the latch pointer stays bound to the page
	// for the whole hold). Shared for readers, exclusive for mutators;
	// the access layer crabs these latches down B+tree descents. A
	// pointer so that frame structs can be moved by Resize while a
	// latch is held on a pinned frame.
	latch *sync.RWMutex
	// recLSN is the LSN of the first log record that dirtied the page
	// since it was last clean (0 until the first logged mutation, or
	// when the dirt is unlogged). Fuzzy checkpoints snapshot it into
	// the dirty-page table; the minimum recLSN bounds how far back a
	// recovery scan must reach, and therefore how much of the WAL may
	// be truncated.
	recLSN uint64
}

// shard is one lock stripe of the pool: its own mutex, frames, page
// table, free list, replacement-policy instance and counters. Pages map
// to shards by a fixed hash of their PageID, so two operations contend
// only when they touch pages of the same stripe.
type shard struct {
	mu     sync.Mutex
	store  storage.PageStore
	frames []frame
	table  map[storage.PageID]int
	free   []int
	policy Policy
	stats  Stats

	// beforeEvict, when set, is called with (pageID, pageLSN) before a
	// dirty page is written back; the WAL uses it to enforce
	// write-ahead ordering.
	beforeEvict func(storage.PageID, uint64) error

	// retired is set (under mu) when a Resize re-sharded the pool and
	// this stripe no longer owns any frames: a caller that resolved
	// the stripe through an older shardSet must drop the lock and
	// re-resolve through the current one.
	retired bool

	// hand is the clock position of WriteBackCold's opportunistic
	// write-back sweep: successive calls resume where the last one
	// stopped, so cold dirty frames are drained round-robin instead of
	// the same prefix being rewritten every pass.
	hand int
}

// shardStride rounds each shard up to a whole number of cache lines
// PLUS one extra full line of trailing padding, so that adjacent shards
// in the pool's contiguous shard array never share a line even when the
// allocator hands back a base that is only 8-byte aligned (Go
// guarantees natural alignment, not line alignment): with >= one whole
// line between the end of one shard's live fields and the start of the
// next, no base offset can fold them onto the same line. One stripe's
// mutex traffic must not invalidate its neighbour's (the ROADMAP
// false-sharing audit).
const (
	cacheLine   = 64
	shardStride = (int(unsafe.Sizeof(shard{}))/cacheLine + 2) * cacheLine
)

// paddedShard is a shard padded out to shardStride bytes.
type paddedShard struct {
	shard
	_ [shardStride - int(unsafe.Sizeof(shard{}))]byte
}

// ShardStride returns the per-shard footprint in bytes of the pool's
// contiguous shard array (a whole multiple of the cache line), for
// benchmarks that record the stripe layout.
func ShardStride() int { return shardStride }

// shardSet is one immutable generation of the pool's stripe layout:
// the shard array and the page-to-shard mask. Resize may replace the
// whole set (re-sharding); readers resolve pages through an atomic
// pointer and re-resolve when they catch a retired stripe.
type shardSet struct {
	shards []*shard
	mask   uint64 // len(shards)-1; shard count is a power of two
}

// Manager is the buffer manager service: a bounded cache of page
// frames over a storage.PageStore, partitioned into lock-striped
// shards so that independent pages can be pinned and unpinned without
// contending on one global mutex. It itself implements
// storage.PageStore so that file managers and access methods can be
// stacked over it transparently (services composed over services).
type Manager struct {
	store      storage.PageStore
	policyName string
	set        atomic.Pointer[shardSet]

	// hookMu guards hook, the write-ahead callback that re-sharding
	// must copy onto freshly built stripes.
	hookMu sync.Mutex
	hook   func(storage.PageID, uint64) error

	// resizeMu serialises Resize calls (each locks every stripe of the
	// current generation; two interleaved would deadlock).
	resizeMu sync.Mutex
}

// Shard-count defaults: one stripe per minFramesPerShard frames, so
// tiny pools (embedded profile, unit tests) keep the exact semantics
// of a single-lock pool while server-scale pools stripe out.
const (
	minFramesPerShard = 64
	maxDefaultShards  = 16
)

// defaultShards picks the shard count for a pool of nframes frames:
// the largest power of two <= nframes/minFramesPerShard, clamped to
// [1, maxDefaultShards].
func defaultShards(nframes int) int {
	s := nframes / minFramesPerShard
	if s < 1 {
		return 1
	}
	if s > maxDefaultShards {
		s = maxDefaultShards
	}
	return floorPow2(s)
}

func floorPow2(n int) int {
	p := 1
	for p*2 <= n {
		p *= 2
	}
	return p
}

// New creates a buffer manager with nframes frames over store, with an
// automatically chosen shard count. The supplied policy instance is
// used for the first shard; additional shards get fresh instances of
// the same named policy. A custom Policy implementation that NewPolicy
// cannot reconstruct by name keeps the pool at a single shard, so the
// supplied instance governs every frame exactly as before sharding
// (note Resize still resets policy state via NewPolicy, as it always
// has).
func New(store storage.PageStore, nframes int, policy Policy) *Manager {
	if policy == nil {
		policy = NewLRU()
	}
	if nframes < 1 {
		nframes = 1
	}
	nshards := defaultShards(nframes)
	if !knownPolicy(policy.Name()) {
		nshards = 1
	}
	m := newManager(store, nframes, nshards, policy.Name())
	m.policyName = policy.Name()
	m.set.Load().shards[0].policy = policy
	return m
}

// NewSharded creates a buffer manager with an explicit shard count
// (rounded down to a power of two and clamped to [1, nframes]) and a
// replacement policy selected by name for every shard. nshards=1 is
// the single-mutex baseline.
func NewSharded(store storage.PageStore, nframes, nshards int, policyName string) *Manager {
	if nframes < 1 {
		nframes = 1
	}
	if nshards < 1 {
		nshards = 1
	}
	if nshards > nframes {
		nshards = nframes
	}
	return newManager(store, nframes, floorPow2(nshards), policyName)
}

func newManager(store storage.PageStore, nframes, nshards int, policyName string) *Manager {
	m := &Manager{
		store:      store,
		policyName: NewPolicy(policyName).Name(),
	}
	// One contiguous allocation at a fixed line-multiple stride with a
	// spare line of padding per shard, so stripes never false-share
	// regardless of the base address alignment and the layout is
	// reproducible for the contention benchmarks.
	backing := make([]paddedShard, nshards)
	set := &shardSet{shards: make([]*shard, nshards), mask: uint64(nshards - 1)}
	base, rem := nframes/nshards, nframes%nshards
	for i := range set.shards {
		n := base
		if i < rem {
			n++
		}
		s := &backing[i].shard
		s.store = store
		s.frames = make([]frame, n)
		s.table = make(map[storage.PageID]int, n)
		s.policy = NewPolicy(m.policyName)
		for fi := range s.frames {
			s.frames[fi].data = make([]byte, storage.PageSize)
			s.frames[fi].latch = new(sync.RWMutex)
			s.free = append(s.free, fi)
		}
		set.shards[i] = s
	}
	m.set.Store(set)
	return m
}

// shardFor maps a page to its stripe (in the current generation) with
// a Fibonacci hash, so that sequentially allocated pages spread across
// shards. The result is only stable under the stripe's own lock with
// retired unset — mutating callers go through lockShard.
func (m *Manager) shardFor(id storage.PageID) *shard {
	set := m.set.Load()
	return set.shards[shardIdx(id, set.mask)]
}

// shardIdx maps a page to a stripe index under the given mask with a
// Fibonacci hash, so that sequentially allocated pages spread evenly.
func shardIdx(id storage.PageID, mask uint64) uint64 {
	h := uint64(id) * 0x9e3779b97f4a7c15
	return (h >> 32) & mask
}

// lockShard returns the stripe owning id, locked. When a concurrent
// Resize retired the stripe between the lookup and the lock, the
// lookup retries against the new generation.
func (m *Manager) lockShard(id storage.PageID) *shard {
	for {
		s := m.shardFor(id)
		s.mu.Lock()
		if !s.retired {
			return s
		}
		s.mu.Unlock()
	}
}

// eachShardLocked runs fn over every stripe of the live generation,
// locking each in turn. When a Resize retires the generation
// mid-walk, the walk restarts over the new one — reset (optional)
// runs before each attempt so accumulating callers can start over.
func (m *Manager) eachShardLocked(reset func(), fn func(s *shard) error) error {
retry:
	for {
		set := m.set.Load()
		if reset != nil {
			reset()
		}
		for _, s := range set.shards {
			s.mu.Lock()
			if s.retired {
				s.mu.Unlock()
				continue retry
			}
			err := fn(s)
			s.mu.Unlock()
			if err != nil {
				return err
			}
		}
		return nil
	}
}

// SetBeforeEvict installs the write-ahead hook invoked before dirty
// write-back. Re-sharding carries it onto new stripes.
func (m *Manager) SetBeforeEvict(f func(storage.PageID, uint64) error) {
	m.hookMu.Lock()
	m.hook = f
	m.hookMu.Unlock()
	_ = m.eachShardLocked(nil, func(s *shard) error {
		s.beforeEvict = f
		return nil
	})
}

// PolicyName reports the active replacement policy.
func (m *Manager) PolicyName() string { return m.policyName }

// NumShards returns the number of lock stripes.
func (m *Manager) NumShards() int { return len(m.set.Load().shards) }

// PoolSize returns the total number of frames across all shards.
func (m *Manager) PoolSize() int {
	total := 0
	_ = m.eachShardLocked(func() { total = 0 }, func(s *shard) error {
		total += len(s.frames)
		return nil
	})
	return total
}

// Stats returns a snapshot of the pool counters, aggregated over all
// shards.
func (m *Manager) Stats() Stats {
	var agg Stats
	_ = m.eachShardLocked(func() { agg = Stats{} }, func(s *shard) error {
		agg.add(s.stats)
		return nil
	})
	return agg
}

// ShardStats returns a per-shard snapshot of the pool counters, for
// monitoring stripe balance. After a re-sharding Resize the counters
// of dissolved stripes live on, aggregated into stripe 0 of the new
// layout.
func (m *Manager) ShardStats() []Stats {
	var out []Stats
	_ = m.eachShardLocked(func() { out = out[:0] }, func(s *shard) error {
		out = append(out, s.stats)
		return nil
	})
	return out
}

// Pin brings the page into the pool (loading it if absent), increments
// its pin count and returns a frame handle.
func (m *Manager) Pin(id storage.PageID) (*Frame, error) {
	s := m.lockShard(id)
	defer s.mu.Unlock()
	if fi, ok := s.table[id]; ok {
		f := &s.frames[fi]
		f.pins++
		s.stats.Hits++
		s.policy.Touched(fi)
		return &Frame{ID: id, Data: f.data}, nil
	}
	s.stats.Misses++
	fi, err := s.obtainFrameLocked()
	if err != nil {
		return nil, err
	}
	f := &s.frames[fi]
	if err := s.store.ReadPage(id, f.data); err != nil {
		s.free = append(s.free, fi)
		return nil, err
	}
	f.id = id
	f.pins = 1
	f.dirty = false
	f.valid = true
	f.recLSN = 0
	s.table[id] = fi
	s.policy.Inserted(fi)
	return &Frame{ID: id, Data: f.data}, nil
}

// NewPage allocates a page in the store and returns it pinned, typed t.
func (m *Manager) NewPage(t storage.PageType) (*Frame, error) {
	id, err := m.store.Allocate()
	if err != nil {
		return nil, err
	}
	s := m.lockShard(id)
	defer s.mu.Unlock()
	fi, err := s.obtainFrameLocked()
	if err != nil {
		return nil, err
	}
	f := &s.frames[fi]
	for i := range f.data {
		f.data[i] = 0
	}
	storage.WrapPage(id, f.data).SetType(t)
	f.id = id
	f.pins = 1
	f.dirty = true
	f.valid = true
	f.recLSN = 0 // the page's first logged mutation sets it at Unpin
	s.table[id] = fi
	s.policy.Inserted(fi)
	return &Frame{ID: id, Data: f.data}, nil
}

// obtainFrameLocked returns a free frame index, evicting if necessary.
func (s *shard) obtainFrameLocked() (int, error) {
	if n := len(s.free); n > 0 {
		fi := s.free[n-1]
		s.free = s.free[:n-1]
		return fi, nil
	}
	fi := s.policy.Victim(func(i int) bool {
		return s.frames[i].valid && s.frames[i].pins == 0
	})
	if fi < 0 {
		return 0, fmt.Errorf("%w (%d frames in shard)", ErrPoolExhausted, len(s.frames))
	}
	f := &s.frames[fi]
	if f.dirty {
		if err := s.flushFrameLocked(fi); err != nil {
			return 0, err
		}
	}
	delete(s.table, f.id)
	s.policy.Removed(fi)
	f.valid = false
	s.stats.Evictions++
	return fi, nil
}

func (s *shard) flushFrameLocked(fi int) error {
	f := &s.frames[fi]
	if s.beforeEvict != nil {
		lsn := storage.WrapPage(f.id, f.data).LSN()
		if err := s.beforeEvict(f.id, lsn); err != nil {
			return fmt.Errorf("buffer: write-ahead hook for page %d: %w", f.id, err)
		}
	}
	if err := s.store.WritePage(f.id, f.data); err != nil {
		return err
	}
	f.dirty = false
	f.recLSN = 0
	s.stats.Flushes++
	return nil
}

// Unpin decrements the pin count, recording whether the caller dirtied
// the page.
func (m *Manager) Unpin(id storage.PageID, dirty bool) error {
	s := m.lockShard(id)
	defer s.mu.Unlock()
	fi, ok := s.table[id]
	if !ok || s.frames[fi].pins == 0 {
		return fmt.Errorf("%w: page %d", ErrNotPinned, id)
	}
	f := &s.frames[fi]
	f.pins--
	if dirty {
		f.dirty = true
		if f.recLSN == 0 {
			// First dirtying since the frame was last clean. The access
			// layer appends exactly one record per pin-mutate-unpin
			// round and stamps its LSN on the page before unpinning, so
			// the page LSN here IS the first record of this dirty
			// episode. Unlogged writers leave the stamp unchanged; a
			// stale (already durable) or zero LSN only makes the
			// checkpoint's recovery-begin computation conservative.
			f.recLSN = storage.WrapPage(f.id, f.data).LSN()
		}
	}
	return nil
}

// PinLatched pins the page and acquires its page latch — shared when
// exclusive is false, exclusive otherwise. The latch is taken outside
// the shard mutex (blocking on a latch must not stall unrelated pages
// of the same stripe); the pin taken first keeps the frame, and
// therefore the latch identity, stable while we wait. Release with
// UnpinLatched.
func (m *Manager) PinLatched(id storage.PageID, exclusive bool) (*Frame, error) {
	f, latch, err := m.pinWithLatch(id)
	if err != nil {
		return nil, err
	}
	if exclusive {
		latch.Lock()
	} else {
		latch.RLock()
	}
	return f, nil
}

// pinWithLatch pins the page and returns its frame latch.
func (m *Manager) pinWithLatch(id storage.PageID) (*Frame, *sync.RWMutex, error) {
	s := m.lockShard(id)
	if fi, ok := s.table[id]; ok {
		f := &s.frames[fi]
		f.pins++
		s.stats.Hits++
		s.policy.Touched(fi)
		latch := f.latch
		s.mu.Unlock()
		return &Frame{ID: id, Data: f.data}, latch, nil
	}
	s.stats.Misses++
	fi, err := s.obtainFrameLocked()
	if err != nil {
		s.mu.Unlock()
		return nil, nil, err
	}
	f := &s.frames[fi]
	if err := s.store.ReadPage(id, f.data); err != nil {
		s.free = append(s.free, fi)
		s.mu.Unlock()
		return nil, nil, err
	}
	f.id = id
	f.pins = 1
	f.dirty = false
	f.valid = true
	f.recLSN = 0
	s.table[id] = fi
	s.policy.Inserted(fi)
	latch := f.latch
	s.mu.Unlock()
	return &Frame{ID: id, Data: f.data}, latch, nil
}

// UnpinLatched releases the page latch acquired by PinLatched (or
// NewPageLatched) and drops the pin, recording whether the caller
// dirtied the page. exclusive must match the acquisition mode.
func (m *Manager) UnpinLatched(id storage.PageID, exclusive, dirty bool) error {
	s := m.lockShard(id)
	defer s.mu.Unlock()
	fi, ok := s.table[id]
	if !ok || s.frames[fi].pins == 0 {
		return fmt.Errorf("%w: page %d", ErrNotPinned, id)
	}
	f := &s.frames[fi]
	// All frame bookkeeping — in particular reading the page LSN for
	// recLSN — happens BEFORE the latch is released: the next latch
	// waiter needs no shard mutex and would otherwise mutate the frame
	// bytes under our read.
	f.pins--
	if dirty {
		f.dirty = true
		if f.recLSN == 0 {
			f.recLSN = storage.WrapPage(f.id, f.data).LSN()
		}
	}
	if exclusive {
		f.latch.Unlock()
	} else {
		f.latch.RUnlock()
	}
	return nil
}

// NewPageLatched allocates a page and returns it pinned AND
// exclusively latched (trivially uncontended: the id is unpublished).
// Release with UnpinLatched(id, true, dirty).
func (m *Manager) NewPageLatched(t storage.PageType) (*Frame, error) {
	f, err := m.NewPage(t)
	if err != nil {
		return nil, err
	}
	s := m.lockShard(f.ID)
	fi, ok := s.table[f.ID]
	if !ok {
		s.mu.Unlock()
		_ = m.Unpin(f.ID, false)
		return nil, fmt.Errorf("buffer: fresh page %d vanished", f.ID)
	}
	latch := s.frames[fi].latch
	s.mu.Unlock()
	latch.Lock()
	return f, nil
}

// UpdatePage applies fn to the page under an exclusive page latch and
// marks it dirty. It is the race-safe way for code that is not part of
// the latching access methods (the file manager's chain links, physical
// undo) to mutate a page that latching writers may touch concurrently.
func (m *Manager) UpdatePage(id storage.PageID, fn func(p *storage.Page) error) error {
	f, err := m.PinLatched(id, true)
	if err != nil {
		return err
	}
	err = fn(f.Page())
	if uerr := m.UnpinLatched(id, true, err == nil); uerr != nil && err == nil {
		err = uerr
	}
	return err
}

// DirtyPages snapshots the pool's dirty-page table: every resident
// dirty page with its recLSN. Fuzzy checkpoints log it and use the
// minimum recLSN to advance the WAL truncation horizon.
func (m *Manager) DirtyPages() []storage.DirtyPageInfo {
	var out []storage.DirtyPageInfo
	_ = m.eachShardLocked(func() { out = out[:0] }, func(s *shard) error {
		for fi := range s.frames {
			f := &s.frames[fi]
			if f.valid && f.dirty {
				out = append(out, storage.DirtyPageInfo{ID: f.id, RecLSN: f.recLSN})
			}
		}
		return nil
	})
	return out
}

// FlushPages writes back the given pages (skipping any no longer
// resident or already clean) and syncs the underlying store. Fuzzy
// checkpoints flush exactly their dirty-page-table snapshot this way,
// without quiescing writers or touching pages dirtied afterwards.
//
// A pinned dirty page is NOT flushed immediately: the pin holder may be
// mutating the frame bytes outside the shard lock, and persisting a
// half-applied image (with a freshly recomputed checksum) would hand
// recovery a consistent-looking page that matches no logged state.
// Pins in this engine are held only across short pin-mutate-unpin
// rounds, so FlushPages waits the pin out; if a pin outlasts the wait
// budget it returns an error and the checkpoint fails harmlessly (the
// previous manifest stays in force, no truncation happens).
func (m *Manager) FlushPages(ids []storage.PageID) error {
	for _, id := range ids {
		if err := m.flushUnpinned(id); err != nil {
			return err
		}
	}
	return m.store.Sync()
}

// flushUnpinned flushes one page once its pin count drains to zero.
func (m *Manager) flushUnpinned(id storage.PageID) error {
	deadline := time.Now().Add(flushPinWait)
	for attempt := 0; ; attempt++ {
		s := m.lockShard(id)
		fi, ok := s.table[id]
		if !ok || !s.frames[fi].dirty {
			s.mu.Unlock()
			return nil
		}
		if s.frames[fi].pins == 0 {
			err := s.flushFrameLocked(fi)
			s.mu.Unlock()
			return err
		}
		s.mu.Unlock()
		if attempt > 1000 {
			if time.Now().After(deadline) {
				return fmt.Errorf("%w: page %d pinned dirty throughout a checkpoint flush", ErrPinned, id)
			}
			// Long-held pin: back off instead of burning a core.
			time.Sleep(100 * time.Microsecond)
			continue
		}
		runtime.Gosched()
	}
}

// flushPinWait bounds how long FlushPages waits for a pin to drain.
const flushPinWait = 2 * time.Second

// WriteBackCold opportunistically writes back up to max unpinned dirty
// frames, clock-ordered per stripe (each stripe keeps a persistent
// hand, so successive sweeps drain different frames instead of
// rewriting the same prefix). Pinned frames are skipped outright — the
// pin holder may be mutating the bytes outside the shard lock — and
// every write-back goes through the write-ahead hook, exactly like an
// eviction. The store is NOT synced: write-backs here only shrink the
// next checkpoint's dirty-page snapshot, and the durability point that
// licenses WAL truncation remains the checkpoint flush's own sync.
// Returns how many frames were written.
func (m *Manager) WriteBackCold(max int) (int, error) {
	if max <= 0 {
		return 0, nil
	}
	written := 0
	err := m.eachShardLocked(func() { written = 0 }, func(s *shard) error {
		n := len(s.frames)
		for scanned := 0; scanned < n && written < max; scanned++ {
			if s.hand >= n {
				s.hand = 0
			}
			fi := s.hand
			s.hand++
			f := &s.frames[fi]
			if f.valid && f.dirty && f.pins == 0 {
				if err := s.flushFrameLocked(fi); err != nil {
					return err
				}
				written++
			}
		}
		return nil
	})
	return written, err
}

// FlushPage writes the page back if it is resident and dirty.
func (m *Manager) FlushPage(id storage.PageID) error {
	s := m.lockShard(id)
	defer s.mu.Unlock()
	fi, ok := s.table[id]
	if !ok {
		return nil
	}
	if s.frames[fi].dirty {
		return s.flushFrameLocked(fi)
	}
	return nil
}

// FlushAll writes back every dirty resident page, shard by shard, and
// syncs the store.
func (m *Manager) FlushAll() error {
	err := m.eachShardLocked(nil, func(s *shard) error {
		for fi := range s.frames {
			if s.frames[fi].valid && s.frames[fi].dirty {
				if err := s.flushFrameLocked(fi); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	return m.store.Sync()
}

// Resident reports whether a page currently occupies a frame.
func (m *Manager) Resident(id storage.PageID) bool {
	s := m.lockShard(id)
	defer s.mu.Unlock()
	_, ok := s.table[id]
	return ok
}

// PinCount returns the pin count of a resident page (0 if absent).
func (m *Manager) PinCount(id storage.PageID) int {
	s := m.lockShard(id)
	defer s.mu.Unlock()
	if fi, ok := s.table[id]; ok {
		return s.frames[fi].pins
	}
	return 0
}

// Resize changes the total pool size at runtime. Sizes of at least one
// frame per stripe are repacked in place: each stripe keeps at least
// one frame and at least its pinned pages, borrowing slack from
// lightly pinned stripes. When n is below the stripe count, or the
// pinned pages are too skewed for the current stripes, the pool
// re-shards instead of refusing: a new stripe generation (the largest
// power-of-two count that fits n and the pinned layout, down to one)
// is built, resident frames move across — live pins and held page
// latches stay valid because the frame's latch pointer and data slice
// travel with it — unpinned overflow is flushed and dropped, and the
// old stripes are retired. Resize fails with ErrPinned only when more
// than n pages are pinned outright. This is how the coordinator
// honours low-memory alerts (Section 3.7: component properties
// adjusted "according to the current architecture constraints").
func (m *Manager) Resize(n int) error {
	if n < 1 {
		n = 1
	}
	m.resizeMu.Lock()
	defer m.resizeMu.Unlock()
	// Only Resize swaps the set and resizeMu is held, so this load is
	// the canonical current generation.
	shards := m.set.Load().shards
	for _, s := range shards {
		s.mu.Lock()
	}
	defer func() {
		for _, s := range shards {
			s.mu.Unlock()
		}
	}()

	pinned := make([]int, len(shards))
	totalPinned := 0
	for i, s := range shards {
		for fi := range s.frames {
			if s.frames[fi].valid && s.frames[fi].pins > 0 {
				pinned[i]++
			}
		}
		totalPinned += pinned[i]
	}
	if totalPinned > n {
		return fmt.Errorf("%w: %d pinned > %d frames", ErrPinned, totalPinned, n)
	}
	if n >= len(shards) {
		if targets, ok := splitTargets(n, pinned); ok {
			for i, s := range shards {
				if err := s.resizeLocked(targets[i], m.policyName); err != nil {
					return err
				}
			}
			return nil
		}
	}
	return m.reshardLocked(shards, n)
}

// splitTargets distributes n frames over the stripes: an even split,
// raised to each stripe's pinned-page count where the share falls
// short, with the excess borrowed back from stripes that have slack
// above max(pinned, 1). ok is false when the pinned layout cannot fit
// n frames at this stripe count (Σ max(pinnedᵢ, 1) > n), in which
// case Resize re-shards to fewer stripes.
func splitTargets(n int, pinned []int) (targets []int, ok bool) {
	ns := len(pinned)
	base, rem := n/ns, n%ns
	targets = make([]int, ns)
	need := 0
	for i := range targets {
		targets[i] = base
		if i < rem {
			targets[i]++
		}
		if pinned[i] > targets[i] {
			need += pinned[i] - targets[i]
			targets[i] = pinned[i]
		}
	}
	for i := range targets {
		if need == 0 {
			break
		}
		floor := pinned[i]
		if floor < 1 {
			floor = 1
		}
		if slack := targets[i] - floor; slack > 0 {
			take := slack
			if take > need {
				take = need
			}
			targets[i] -= take
			need -= take
		}
	}
	return targets, need == 0
}

// reshardLocked rebuilds the pool as a fresh stripe generation of n
// total frames; the caller holds every stripe lock of the old
// generation. The new stripe count is the largest power of two, at
// most the old count and at most n, whose pinned-page distribution
// fits n frames — one stripe always does, since totalPinned <= n was
// already checked. Resident frames move across by value (latch
// pointer and data slice travel with the frame, keeping live pins and
// held latches valid); unpinned frames that no longer fit are flushed
// through the write-ahead hook and dropped. On success the new
// generation is installed and the old stripes retired; on a
// write-back error the old generation stays in force untouched.
func (m *Manager) reshardLocked(old []*shard, n int) error {
	var resident []frame
	for _, s := range old {
		for fi := range s.frames {
			if s.frames[fi].valid {
				resident = append(resident, s.frames[fi])
			}
		}
	}

	ns := len(old)
	if n < ns {
		ns = n
	}
	ns = floorPow2(ns)
	var targets []int
	var mask uint64
	for {
		mask = uint64(ns - 1)
		cnt := make([]int, ns)
		for i := range resident {
			if resident[i].pins > 0 {
				cnt[shardIdx(resident[i].id, mask)]++
			}
		}
		var ok bool
		if targets, ok = splitTargets(n, cnt); ok {
			break
		}
		ns /= 2
	}

	m.hookMu.Lock()
	hook := m.hook
	m.hookMu.Unlock()

	backing := make([]paddedShard, ns)
	set := &shardSet{shards: make([]*shard, ns), mask: mask}
	for i := range set.shards {
		s := &backing[i].shard
		s.store = m.store
		s.frames = make([]frame, 0, targets[i])
		s.table = make(map[storage.PageID]int, targets[i])
		s.policy = NewPolicy(m.policyName)
		s.beforeEvict = hook
		set.shards[i] = s
	}

	// Place pinned frames first (they cannot be dropped and are what
	// the targets were sized for), then fill the remaining room with
	// unpinned residents. Unpinned overflow is flushed and dropped;
	// a flush that half-succeeds before an error is harmless, the old
	// frame stays dirty and is written again later.
	var agg Stats
	for _, s := range old {
		agg.add(s.stats)
	}
	for pass := 0; pass < 2; pass++ {
		for i := range resident {
			f := &resident[i]
			if (f.pins > 0) == (pass == 1) {
				continue
			}
			si := shardIdx(f.id, mask)
			s := set.shards[si]
			if len(s.frames) < targets[si] {
				s.table[f.id] = len(s.frames)
				s.frames = append(s.frames, *f)
				continue
			}
			if f.dirty {
				if hook != nil {
					lsn := storage.WrapPage(f.id, f.data).LSN()
					if err := hook(f.id, lsn); err != nil {
						return fmt.Errorf("buffer: write-ahead hook for page %d: %w", f.id, err)
					}
				}
				if err := m.store.WritePage(f.id, f.data); err != nil {
					return err
				}
				agg.Flushes++
			}
			agg.Evictions++
		}
	}

	for i, s := range set.shards {
		for len(s.frames) < targets[i] {
			s.free = append(s.free, len(s.frames))
			s.frames = append(s.frames, frame{data: make([]byte, storage.PageSize), latch: new(sync.RWMutex)})
		}
		for fi := range s.frames {
			if s.frames[fi].valid {
				s.policy.Inserted(fi)
			}
		}
	}
	// The counters of dissolved stripes live on, aggregated into
	// stripe 0 of the new layout (see ShardStats).
	set.shards[0].stats = agg

	m.set.Store(set)
	for _, s := range old {
		s.retired = true
	}
	return nil
}

// resizeLocked resizes one shard to n frames; the shard lock is held.
func (s *shard) resizeLocked(n int, policyName string) error {
	if n == len(s.frames) {
		return nil
	}
	if n > len(s.frames) {
		for i := len(s.frames); i < n; i++ {
			s.frames = append(s.frames, frame{data: make([]byte, storage.PageSize), latch: new(sync.RWMutex)})
			s.free = append(s.free, i)
		}
		return nil
	}
	// Evict every unpinned frame, compacting pinned/valid frames to the
	// front of the new, smaller pool.
	for fi := range s.frames {
		if s.frames[fi].valid && s.frames[fi].pins == 0 {
			if s.frames[fi].dirty {
				if err := s.flushFrameLocked(fi); err != nil {
					return err
				}
			}
			delete(s.table, s.frames[fi].id)
			s.policy.Removed(fi)
			s.frames[fi].valid = false
			s.stats.Evictions++
		}
	}
	old := s.frames
	s.frames = make([]frame, n)
	s.free = s.free[:0]
	s.table = make(map[storage.PageID]int, n)
	next := 0
	for i := range old {
		if old[i].valid {
			s.frames[next] = old[i]
			s.table[old[i].id] = next
			next++
		}
	}
	for i := next; i < n; i++ {
		s.frames[i].data = make([]byte, storage.PageSize)
		s.frames[i].latch = new(sync.RWMutex)
		s.free = append(s.free, i)
	}
	// Replacement policy state refers to old frame indices; reset it.
	s.policy = NewPolicy(policyName)
	for i := 0; i < next; i++ {
		s.policy.Inserted(i)
	}
	return nil
}

// --- storage.PageStore implementation over the pool ---

// Allocate implements storage.PageStore.
func (m *Manager) Allocate() (storage.PageID, error) { return m.store.Allocate() }

// Deallocate implements storage.PageStore: the page is dropped from the
// pool (it must be unpinned) and freed in the store.
func (m *Manager) Deallocate(id storage.PageID) error {
	s := m.lockShard(id)
	if fi, ok := s.table[id]; ok {
		if s.frames[fi].pins > 0 {
			s.mu.Unlock()
			return fmt.Errorf("%w: page %d", ErrPinned, id)
		}
		delete(s.table, id)
		s.policy.Removed(fi)
		s.frames[fi].valid = false
		s.frames[fi].dirty = false
		s.frames[fi].recLSN = 0
		s.free = append(s.free, fi)
	}
	s.mu.Unlock()
	return m.store.Deallocate(id)
}

// ReadPage implements storage.PageStore via the pool.
func (m *Manager) ReadPage(id storage.PageID, buf []byte) error {
	f, err := m.Pin(id)
	if err != nil {
		return err
	}
	copy(buf, f.Data)
	return m.Unpin(id, false)
}

// WritePage implements storage.PageStore via the pool (write-back, not
// write-through; call FlushAll for durability).
func (m *Manager) WritePage(id storage.PageID, data []byte) error {
	f, err := m.Pin(id)
	if err != nil {
		return err
	}
	copy(f.Data, data)
	return m.Unpin(id, true)
}

// NumPages implements storage.PageStore.
func (m *Manager) NumPages() uint64 { return m.store.NumPages() }

// Sync implements storage.PageStore by flushing all dirty frames.
func (m *Manager) Sync() error { return m.FlushAll() }
