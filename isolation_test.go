package sbdms

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/txn"
)

// The isolation-anomaly suite: each test provokes one classic anomaly —
// torn atomic batches / phantoms, write skew across a scanned range,
// lost updates — and asserts it OCCURS at read-committed and is
// IMPOSSIBLE at serializable (either the serial outcome or a retryable
// conflict). Run under -race; `make isolation` runs it at GOMAXPROCS 1
// and 4.

// openIsoDB opens a WAL-enabled in-memory DB at the given scan
// isolation.
func openIsoDB(t *testing.T, iso ScanIsolation) *DB {
	t.Helper()
	db, err := Open(Options{
		Device:        storage.NewMemDevice(),
		LogDevice:     storage.NewMemDevice(),
		Granularity:   Monolithic,
		BufferFrames:  256,
		ScanIsolation: iso,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// --- torn atomic batches (phantoms within one scan) ---------------------

// runTornBatchRounds drives an atomic PutBatch — its first and last
// keys placed at opposite ends of a filler range, with per-round middle
// keys between, so the batch takes long enough for a scan to land
// inside it — against a concurrent full-range scanner. A scan that
// reports one endpoint of the batch but not the other has read a state
// no serial execution produces (an uncommitted prefix, or a torn view
// of the committed batch). Returns (torn, clean) scan counts over at
// most `rounds` rounds, stopping early once stopAt torn scans were
// seen.
func runTornBatchRounds(t *testing.T, db *DB, rounds, stopAt int) (torn, clean int) {
	t.Helper()
	for i := 0; i < 100; i++ {
		if err := db.Put(fmt.Sprintf("ph-m-%04d", i), []byte("filler")); err != nil {
			t.Fatal(err)
		}
	}
	for r := 0; r < rounds && torn < stopAt; r++ {
		lo := fmt.Sprintf("ph-a-%06d", r) // sorts before every filler
		hi := fmt.Sprintf("ph-z-%06d", r) // sorts after every filler
		keys := []string{lo}
		for i := 0; i < 30; i++ {
			keys = append(keys, fmt.Sprintf("ph-n-%06d-%02d", r, i))
		}
		keys = append(keys, hi)
		vals := make([][]byte, len(keys))
		for i := range vals {
			vals[i] = []byte("v")
		}
		started := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			close(started)
			for {
				err := db.PutBatch(keys, vals)
				if err == nil {
					return
				}
				if !IsConflict(err) {
					t.Errorf("PutBatch: %v", err)
					return
				}
			}
		}()
		<-started
		for scanning := true; scanning; {
			select {
			case <-done:
				scanning = false // one final scan below observes the commit
			default:
			}
			keys, err := db.ScanKeys("ph-", 100000)
			if err != nil {
				if IsConflict(err) {
					continue // serializable deadlock victim: retry
				}
				t.Fatal(err)
			}
			sawLo, sawHi := false, false
			for _, k := range keys {
				if k == lo {
					sawLo = true
				}
				if k == hi {
					sawHi = true
				}
			}
			if sawLo != sawHi {
				torn++
			} else {
				clean++
			}
		}
	}
	return torn, clean
}

// TestIsolationTornBatchReadCommitted: without key locks a scan can
// observe one half of an atomic batch — either an uncommitted insert
// (dirty read) or a torn view of the committed pair (phantom). The
// anomaly must be OBSERVABLE: if read-committed scans were accidentally
// serialized, this test fails and the isolation knob is meaningless.
func TestIsolationTornBatchReadCommitted(t *testing.T) {
	db := openIsoDB(t, ReadCommitted)
	defer db.Close(context.Background())
	torn, _ := runTornBatchRounds(t, db, 500, 3)
	if torn == 0 {
		t.Fatal("read-committed scans never observed a torn atomic batch; the anomaly this knob exists for is gone")
	}
	t.Logf("read-committed: %d torn scans observed", torn)
}

// TestIsolationTornBatchSerializable: next-key locking makes every scan
// an atomic snapshot — across every interleaving, a scan sees both keys
// of the pair or neither.
func TestIsolationTornBatchSerializable(t *testing.T) {
	db := openIsoDB(t, Serializable)
	defer db.Close(context.Background())
	torn, clean := runTornBatchRounds(t, db, 40, 1)
	if torn != 0 {
		t.Fatalf("serializable scan observed %d torn atomic batches", torn)
	}
	if clean == 0 {
		t.Fatal("no scans completed")
	}
	t.Logf("serializable: %d scans, all atomic", clean)
}

// --- phantom reads (repeatable range) -----------------------------------

// TestIsolationPhantomReadCommitted: two scans of the same range with a
// committed insert between them differ — the classic phantom. This is
// expected (and demonstrated deterministically) at read-committed.
func TestIsolationPhantomReadCommitted(t *testing.T) {
	db := openIsoDB(t, ReadCommitted)
	defer db.Close(context.Background())
	for i := 0; i < 10; i++ {
		if err := db.Put(fmt.Sprintf("rng-%02d", i*2), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	first, err := db.ScanKeys("rng-", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put("rng-05", []byte("phantom")); err != nil {
		t.Fatal(err)
	}
	second, err := db.ScanKeys("rng-", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(second) != len(first)+1 {
		t.Fatalf("phantom not observed: first=%d second=%d", len(first), len(second))
	}
}

// TestIsolationPhantomSerializable: a reader that keeps its scan locks
// (a read-only transaction over the range) sees the identical result on
// a second scan; the conflicting writer blocks until the reader is
// done, then lands.
func TestIsolationPhantomSerializable(t *testing.T) {
	db := openIsoDB(t, Serializable)
	defer db.Close(context.Background())
	for i := 0; i < 10; i++ {
		if err := db.Put(fmt.Sprintf("rng-%02d", i*2), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	owner := db.kv.ids() // one lock owner = one reading transaction
	first, err := db.kv.scanKeysLocked(ctx, owner, "rng-", 1000)
	if err != nil {
		t.Fatal(err)
	}
	// A writer inserting into the scanned range must block on the gap.
	wrote := make(chan error, 1)
	go func() { wrote <- db.Put("rng-05", []byte("phantom")) }()
	select {
	case err := <-wrote:
		t.Fatalf("writer landed inside a range a transaction is still reading: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	second, err := db.kv.scanKeysLocked(ctx, owner, "rng-", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != len(second) {
		t.Fatalf("phantom at serializable: first=%d second=%d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("range changed under scan locks: %q vs %q", first[i], second[i])
		}
	}
	db.kv.locks.ReleaseAll(owner) // end of the reading transaction
	select {
	case err := <-wrote:
		if err != nil {
			t.Fatalf("writer after reader finished: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("writer never unblocked after scan locks were released")
	}
}

// TestIsolationSerializableEmptyKey: "" is a legal key; a serializable
// scan must return and lock it like any other (regression: the
// restart-skip cursor used "" as a sentinel and silently dropped it).
func TestIsolationSerializableEmptyKey(t *testing.T) {
	db := openIsoDB(t, Serializable)
	defer db.Close(context.Background())
	for _, k := range []string{"", "a", "b"} {
		if err := db.Put(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := db.ScanKeys("", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 3 || keys[0] != "" || keys[1] != "a" || keys[2] != "b" {
		t.Fatalf("serializable scan = %q, want [\"\" \"a\" \"b\"]", keys)
	}
}

// TestIsolationGetMissGapLock: a serializable Get of an ABSENT key
// must take the same next-key lock a one-key scan starting there
// would — S on the miss position's successor, or on the end-of-index
// sentinel when the key sorts past everything. Regression: Get used
// to lock only the key itself, so "Get(k) → not found" held nothing
// that conflicts with an in-flight writer of the gap, and the miss
// was not a repeatable read.
func TestIsolationGetMissGapLock(t *testing.T) {
	t.Run("serializable-miss-waits-on-gap", func(t *testing.T) {
		db := openIsoDB(t, Serializable)
		defer db.Close(context.Background())
		for _, k := range []string{"a", "c"} {
			if err := db.Put(k, []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
		// Model an in-flight writer holding the gap: X on the successor
		// of absent "b", under an owner id that never commits here.
		ctx := context.Background()
		owner := db.kv.ids()
		if err := db.kv.locks.Acquire(ctx, owner, kvRes("c"), txn.Exclusive); err != nil {
			t.Fatal(err)
		}
		short, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
		defer cancel()
		if _, err := db.GetContext(short, "b"); !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("Get of absent key did not wait on the miss gap: %v", err)
		}
		// Same at the right edge: absent "zz" has no successor, so the
		// end-of-index sentinel seals the miss.
		if err := db.kv.locks.Acquire(ctx, owner, kvEOFRes, txn.Exclusive); err != nil {
			t.Fatal(err)
		}
		short2, cancel2 := context.WithTimeout(ctx, 50*time.Millisecond)
		defer cancel2()
		if _, err := db.GetContext(short2, "zz"); !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("Get past the last key did not wait on the eof sentinel: %v", err)
		}
		db.kv.locks.ReleaseAll(owner)
		// Gap free again: both misses complete and still report not-found.
		if _, err := db.Get("b"); !errors.Is(err, ErrKeyNotFound) {
			t.Fatalf("Get(b) = %v, want ErrKeyNotFound", err)
		}
		if _, err := db.Get("zz"); !errors.Is(err, ErrKeyNotFound) {
			t.Fatalf("Get(zz) = %v, want ErrKeyNotFound", err)
		}
	})
	t.Run("miss-gap-lock-blocks-insert", func(t *testing.T) {
		db := openIsoDB(t, Serializable)
		defer db.Close(context.Background())
		for _, k := range []string{"a", "c"} {
			if err := db.Put(k, []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
		// Take exactly the lock a serializable Get("b") miss takes, and
		// hold it: an insert of "b" must block on its instant next-key
		// X of the same successor until the reader's locks drain.
		ctx := context.Background()
		reader := db.kv.ids()
		if err := db.kv.lockMissGap(ctx, reader, "b"); err != nil {
			t.Fatal(err)
		}
		if _, held := db.kv.locks.Held(reader, kvRes("c")); !held {
			t.Fatal("miss gap lock did not land on the successor")
		}
		inserted := make(chan error, 1)
		go func() { inserted <- db.Put("b", []byte("v")) }()
		select {
		case err := <-inserted:
			t.Fatalf("insert crossed a gap a Get miss had locked: %v", err)
		case <-time.After(50 * time.Millisecond):
		}
		db.kv.locks.ReleaseAll(reader)
		select {
		case err := <-inserted:
			if err != nil {
				t.Fatalf("insert after release: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("insert never unblocked after the miss gap lock was released")
		}
	})
	t.Run("read-committed-miss-does-not-block", func(t *testing.T) {
		db := openIsoDB(t, ReadCommitted)
		defer db.Close(context.Background())
		for _, k := range []string{"a", "c"} {
			if err := db.Put(k, []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
		ctx := context.Background()
		owner := db.kv.ids()
		if err := db.kv.locks.Acquire(ctx, owner, kvRes("c"), txn.Exclusive); err != nil {
			t.Fatal(err)
		}
		defer db.kv.locks.ReleaseAll(owner)
		short, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
		defer cancel()
		if _, err := db.GetContext(short, "b"); !errors.Is(err, ErrKeyNotFound) {
			t.Fatalf("read-committed miss must not take gap locks: %v", err)
		}
	})
}

// TestIsolationInsertKeepsScanLockOnSuccessor: a transaction that
// scanned a range and then inserts into it upgrades its own S lock on
// the new key's successor for the instant next-key check. That upgrade
// must NOT be released after the insert — the transaction's read lock
// on the successor rides on it, and releasing would let a concurrent
// writer rewrite a key the transaction already read (regression: the
// instant-release path destroyed upgraded locks).
func TestIsolationInsertKeepsScanLockOnSuccessor(t *testing.T) {
	db := openIsoDB(t, Serializable)
	defer db.Close(context.Background())
	for _, k := range []string{"a", "b", "c"} {
		if err := db.Put(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	tx, err := db.kv.txns.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.kv.scanKeysLocked(ctx, tx.ID(), "a", 10); err != nil {
		t.Fatal(err)
	}
	// Insert inside the scanned range: successor of "aa" is "b", which
	// the scan S-locked — the hook upgrades it in place.
	if err := db.kv.locks.Acquire(ctx, tx.ID(), kvRes("aa"), txn.Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := db.kv.putTx(ctx, tx, tx.ID(), tx, "aa", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// A concurrent delete of the successor must stay blocked until the
	// transaction commits.
	deleted := make(chan error, 1)
	go func() { deleted <- db.DeleteKey("b") }()
	select {
	case err := <-deleted:
		t.Fatalf("writer touched a key inside a live transaction's scanned range: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	if err := db.kv.txns.Commit(tx); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-deleted:
		if err != nil {
			t.Fatalf("delete after commit: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("delete never unblocked after the transaction committed")
	}
}

// TestIsolationAppendDowngradeNoPhantom pins the append gap-lock
// downgrade's two obligations at once. Safety: while a serializable
// scan holds the end-of-index sentinel, an appender past the right edge
// stays blocked; and once its insert lands (still uncommitted), any new
// scan of the range blocks on the new key's own commit-duration X lock
// — no phantom opens either before or after the downgrade point.
// Liveness: with the downgrade on, the awaited sentinel lock is
// released the moment the entry is visible in the leaf, so a second
// appender lands while the first is still uncommitted; with the
// downgrade off (the pre-downgrade hold-to-commit protocol) the
// sentinel stays held and the second appender queues behind the commit.
func TestIsolationAppendDowngradeNoPhantom(t *testing.T) {
	for _, downgrade := range []bool{true, false} {
		name := "downgrade"
		if !downgrade {
			name = "hold-to-commit"
		}
		t.Run(name, func(t *testing.T) {
			db := openIsoDB(t, Serializable)
			defer db.Close(context.Background())
			db.kv.noDowngrade = !downgrade
			if err := db.Put("zz-a", []byte("v0")); err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()

			// A serializable scan runs off the right edge: it S-locks
			// "zz-a" and seals the end of the index with the sentinel.
			scanOwner := db.kv.ids()
			keys, err := db.kv.scanKeysLocked(ctx, scanOwner, "zz-", 100)
			if err != nil {
				t.Fatal(err)
			}
			if len(keys) != 1 || keys[0] != "zz-a" {
				t.Fatalf("preload scan = %v, want [zz-a]", keys)
			}

			// Appender past everything: must block behind the scan's
			// sentinel lock regardless of the downgrade setting.
			tx, err := db.kv.txns.Begin()
			if err != nil {
				t.Fatal(err)
			}
			if err := db.kv.locks.Acquire(ctx, tx.ID(), kvRes("zz-b"), txn.Exclusive); err != nil {
				t.Fatal(err)
			}
			inserted := make(chan error, 1)
			go func() { inserted <- db.kv.putTx(ctx, tx, tx.ID(), tx, "zz-b", []byte("v1")) }()
			select {
			case err := <-inserted:
				t.Fatalf("append crossed a scanned end-of-index gap: %v", err)
			case <-time.After(50 * time.Millisecond):
			}

			// The scan ends; the append lands but does NOT commit.
			db.kv.locks.ReleaseAll(scanOwner)
			select {
			case err := <-inserted:
				if err != nil {
					t.Fatalf("append after scan released: %v", err)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("append never unblocked after the scan released its locks")
			}
			if _, held := db.kv.locks.Held(tx.ID(), kvEOFRes); held == downgrade {
				if downgrade {
					t.Fatal("awaited sentinel gap lock still held after the entry became visible")
				}
				t.Fatal("hold-to-commit protocol released the awaited sentinel gap lock early")
			}

			// No phantom after the downgrade: a new scan must block on the
			// uncommitted key's own lock, not skip past it.
			scanned := make(chan []string, 1)
			go func() {
				ks, err := db.ScanKeys("zz-", 100)
				if err != nil {
					t.Errorf("scan across uncommitted append: %v", err)
				}
				scanned <- ks
			}()
			select {
			case ks := <-scanned:
				t.Fatalf("scan read across an uncommitted append: %v", ks)
			case <-time.After(50 * time.Millisecond):
			}

			// Liveness split: a second appender past the first one.
			appended := make(chan error, 1)
			go func() { appended <- db.Put("zz-c", []byte("v2")) }()
			if downgrade {
				select {
				case err := <-appended:
					if err != nil {
						t.Fatalf("second append with downgrade on: %v", err)
					}
				case <-time.After(5 * time.Second):
					t.Fatal("second appender serialized behind an uncommitted appender's released gap lock")
				}
			} else {
				select {
				case err := <-appended:
					t.Fatalf("second append crossed a commit-duration gap lock: %v", err)
				case <-time.After(50 * time.Millisecond):
				}
			}

			if err := db.kv.txns.Commit(tx); err != nil {
				t.Fatal(err)
			}
			if !downgrade {
				select {
				case err := <-appended:
					if err != nil {
						t.Fatalf("second append after commit: %v", err)
					}
				case <-time.After(5 * time.Second):
					t.Fatal("second appender never unblocked after commit")
				}
			}
			var ks []string
			select {
			case ks = <-scanned:
			case <-time.After(5 * time.Second):
				t.Fatal("blocked scan never completed after commit")
			}
			saw := map[string]bool{}
			for _, k := range ks {
				if saw[k] {
					t.Fatalf("scan returned duplicate key %q: %v", k, ks)
				}
				saw[k] = true
			}
			if !saw["zz-a"] || !saw["zz-b"] {
				t.Fatalf("scan after commit = %v, want zz-a and zz-b present", ks)
			}
			final, err := db.ScanKeys("zz-", 100)
			if err != nil {
				t.Fatal(err)
			}
			if len(final) != 3 || final[0] != "zz-a" || final[1] != "zz-b" || final[2] != "zz-c" {
				t.Fatalf("final scan = %v, want [zz-a zz-b zz-c]", final)
			}
		})
	}
}

// --- write skew across a scanned range ----------------------------------

// TestIsolationWriteSkew models the textbook constraint "at most one
// on-call guard": each transaction scans the guard range and inserts
// its own guard key only if the range is empty. Both transactions are
// forced through the scan phase before either writes (the worst-case
// interleaving). Serially at most one insert can happen; write skew is
// both committing their inserts.
func TestIsolationWriteSkew(t *testing.T) {
	t.Run("read-committed-observes", func(t *testing.T) {
		db := openIsoDB(t, ReadCommitted)
		defer db.Close(context.Background())
		skew := 0
		for r := 0; r < 20 && skew == 0; r++ {
			prefix := fmt.Sprintf("wsk-r%03d-", r)
			var barrier, done sync.WaitGroup
			barrier.Add(2)
			done.Add(2)
			for g := 0; g < 2; g++ {
				g := g
				go func() {
					defer done.Done()
					keys, err := db.ScanKeys(prefix, 100)
					if err != nil {
						t.Error(err)
					}
					count := 0
					for _, k := range keys {
						if strings.HasPrefix(k, prefix) {
							count++
						}
					}
					barrier.Done()
					barrier.Wait() // both scanned before either writes
					if count == 0 {
						if err := db.Put(fmt.Sprintf("%sguard-%d", prefix, g), []byte("v")); err != nil {
							t.Error(err)
						}
					}
				}()
			}
			done.Wait()
			keys, err := db.ScanKeys(prefix, 100)
			if err != nil {
				t.Fatal(err)
			}
			guards := 0
			for _, k := range keys {
				if strings.HasPrefix(k, prefix) {
					guards++
				}
			}
			if guards > 1 {
				skew++
			}
		}
		if skew == 0 {
			t.Fatal("read-committed scan+put never produced write skew; the anomaly should be observable")
		}
	})

	t.Run("serializable-prevents", func(t *testing.T) {
		db := openIsoDB(t, Serializable)
		defer db.Close(context.Background())
		ctx := context.Background()
		for r := 0; r < 20; r++ {
			prefix := fmt.Sprintf("wsk-r%03d-", r)
			var barrier, done sync.WaitGroup
			barrier.Add(2)
			done.Add(2)
			for g := 0; g < 2; g++ {
				g := g
				go func() {
					defer done.Done()
					// One real transaction: scan locks and the write all
					// belong to tx and release at commit/abort.
					tx, err := db.kv.txns.Begin()
					if err != nil {
						t.Error(err)
						barrier.Done()
						return
					}
					keys, err := db.kv.scanKeysLocked(ctx, tx.ID(), prefix, 100)
					barrier.Done()
					if err != nil {
						_ = db.kv.txns.Abort(tx)
						return
					}
					count := 0
					for _, k := range keys {
						if strings.HasPrefix(k, prefix) {
							count++
						}
					}
					barrier.Wait()
					if count > 0 {
						_ = db.kv.txns.Abort(tx) // nothing to do
						return
					}
					gk := fmt.Sprintf("%sguard-%d", prefix, g)
					if err := db.kv.locks.Acquire(ctx, tx.ID(), kvRes(gk), txn.Exclusive); err != nil {
						_ = db.kv.txns.Abort(tx) // deadlock victim: serial outcome preserved
						return
					}
					if err := db.kv.putTx(ctx, tx, tx.ID(), tx, gk, []byte("v")); err != nil {
						_ = db.kv.txns.Abort(tx)
						return
					}
					if err := db.kv.txns.Commit(tx); err != nil {
						t.Error(err)
					}
				}()
			}
			done.Wait()
			keys, err := db.ScanKeys(prefix, 100)
			if err != nil {
				t.Fatal(err)
			}
			guards := 0
			for _, k := range keys {
				if strings.HasPrefix(k, prefix) {
					guards++
				}
			}
			if guards > 1 {
				t.Fatalf("round %d: write skew at serializable — %d guards committed", r, guards)
			}
		}
	})
}

// --- lost updates -------------------------------------------------------

// TestIsolationLostUpdate: concurrent read-modify-write increments of
// one counter key. Unlocked get-then-put loses updates; a transaction
// that keeps its read lock and upgrades cannot (upgrades that deadlock
// abort and retry — the increment is never silently dropped).
func TestIsolationLostUpdate(t *testing.T) {
	const writers, increments = 4, 25

	readCounter := func(t *testing.T, db *DB) int {
		v, err := db.Get("cnt")
		if err != nil {
			t.Fatal(err)
		}
		n, err := strconv.Atoi(string(v))
		if err != nil {
			t.Fatal(err)
		}
		return n
	}

	t.Run("read-committed-observes", func(t *testing.T) {
		db := openIsoDB(t, ReadCommitted)
		defer db.Close(context.Background())
		lost := false
		for round := 0; round < 10 && !lost; round++ {
			if err := db.Put("cnt", []byte("0")); err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < increments; i++ {
						v, err := db.Get("cnt")
						if err != nil {
							t.Error(err)
							return
						}
						n, _ := strconv.Atoi(string(v))
						runtime.Gosched() // widen the read-to-write window
						if err := db.Put("cnt", []byte(strconv.Itoa(n+1))); err != nil {
							t.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			if readCounter(t, db) < writers*increments {
				lost = true
			}
		}
		if !lost {
			t.Fatal("unlocked read-modify-write never lost an update across 10 rounds")
		}
	})

	t.Run("serializable-prevents", func(t *testing.T) {
		db := openIsoDB(t, Serializable)
		defer db.Close(context.Background())
		if err := db.Put("cnt", []byte("0")); err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		var conflicts atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < increments; i++ {
					for { // retry deadlock victims: 2PL guarantees no LOST updates, not no conflicts
						tx, err := db.kv.txns.Begin()
						if err != nil {
							t.Error(err)
							return
						}
						abortRetry := func(err error) bool {
							_ = db.kv.txns.Abort(tx)
							if IsConflict(conflictWrap(err)) {
								conflicts.Add(1)
								return true
							}
							t.Error(err)
							return false
						}
						if err := tx.Lock(ctx, kvRes("cnt"), txn.Shared); err != nil {
							if abortRetry(err) {
								continue
							}
							return
						}
						rids, err := db.kv.idx.Search(db.kv.key("cnt"))
						if err != nil || len(rids) == 0 {
							t.Errorf("counter vanished: %v", err)
							_ = db.kv.txns.Abort(tx)
							return
						}
						_, body, err := db.kv.headVersion(rids[0])
						if err != nil {
							t.Error(err)
							_ = db.kv.txns.Abort(tx)
							return
						}
						_, v, err := decodeKV(body)
						if err != nil {
							t.Error(err)
							_ = db.kv.txns.Abort(tx)
							return
						}
						n, _ := strconv.Atoi(string(v))
						// Upgrade read lock to write lock: the other
						// reader-upgrader deadlocks and retries.
						if err := tx.Lock(ctx, kvRes("cnt"), txn.Exclusive); err != nil {
							if abortRetry(err) {
								continue
							}
							return
						}
						if err := db.kv.putTx(ctx, tx, tx.ID(), tx, "cnt", []byte(strconv.Itoa(n+1))); err != nil {
							if abortRetry(err) {
								continue
							}
							return
						}
						if err := db.kv.txns.Commit(tx); err != nil {
							t.Error(err)
							return
						}
						break
					}
				}
			}()
		}
		wg.Wait()
		if got := readCounter(t, db); got != writers*increments {
			t.Fatalf("lost updates at serializable: counter = %d, want %d (%d conflicts retried)",
				got, writers*increments, conflicts.Load())
		}
		t.Logf("serializable: %d increments, %d upgrade deadlocks retried", writers*increments, conflicts.Load())
	})
}
