package sbdms

// Bulk-ingest fast path: DB.Import loads a sorted batch by writing heap
// version cells page-at-a-time (one WAL full-page image per filled
// page), building the B+tree bottom-up into fresh pages, and atomically
// installing the new tree by swapping the meta root pointer under the
// exclusive meta latch — all inside ONE user transaction whose records
// are exclusively physical (nil undo over fresh pages plus the latched
// meta swap), so a crash mid-import classifies the transaction as a
// physical loser and recovery rolls the whole load back as one unit:
// before the root install zero keys are visible, after it all are,
// never a partial prefix.
//
// Visibility is one consistent cut: every imported version cell is
// written with its begin field already carrying a commit timestamp
// allocated at import start. The timestamp stays outstanding (invisible
// to every snapshot) until the commit record — which embeds it, via
// Txn.SetCommitTS, so recovery reseeds the oracle's clock above it — is
// durable. The cost is that the oracle's visibility frontier trails at
// ts-1 for the import's duration: concurrent commits stay durably
// committed but snapshot-invisible until the import completes.
//
// The fast path requires an EMPTY tree (checked once cheaply up front
// and again under the meta latch at install). A non-empty tree — or a
// concurrent insert that wins the install race — falls back to the
// per-key PutBatch path in one atomic transaction, counted by
// ImportFallbacks.

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/access"
	"repro/internal/index"
	"repro/internal/ingest"
	"repro/internal/storage"
	"repro/internal/txn"
)

// Import batch validation errors, re-exported so callers can classify
// rejections with errors.Is at the public API.
var (
	// ErrImportDuplicate rejects a batch containing the same key twice.
	ErrImportDuplicate = ingest.ErrDuplicate
	// ErrImportKeyTooLarge rejects a key exceeding the index bound.
	ErrImportKeyTooLarge = ingest.ErrKeyTooLarge
	// ErrImportValueTooLarge rejects a record exceeding one heap page.
	ErrImportValueTooLarge = ingest.ErrValueTooLarge
)

// defaultImportChunkPages is how many bulk pages are written between
// cancellation checks and pacing flushes when Options.ImportChunkPages
// is zero: 64 pages ≈ 256 KiB of new data per check keeps both the
// cancellation latency and the WAL's in-memory tail small against the
// multi-second scale of a large import.
const defaultImportChunkPages = 64

// importCheck enforces the engine's size limits on one pair, wrapping
// the ingest package's typed errors around the offending key.
func (kv *kvCore) importCheck(k string, v []byte) error {
	if index.BulkKeyLen(kv.key(k)) > index.MaxKeySize {
		return fmt.Errorf("%w: %q", ingest.ErrKeyTooLarge, k)
	}
	if len(access.EncodeVersion(access.VersionMeta{}, nil))+2+len(k)+4+len(v) > access.MaxRecordLen {
		return fmt.Errorf("%w: key %q (%d-byte value)", ingest.ErrValueTooLarge, k, len(v))
	}
	return nil
}

// ImportFallbacks returns how many imports could not use the fast path
// (non-empty tree, disabled fast path, unlogged mode, or a lost install
// race) and went through the per-key insert path instead.
func (kv *kvCore) ImportFallbacks() uint64 { return kv.importFallbacks.Load() }

// Import bulk-loads a batch of keys: validated and sorted up front
// (unsorted input is fine, duplicates and oversized records are typed
// errors), then loaded through the fast path when the tree is empty, or
// atomically via the per-key path otherwise. Either way the whole batch
// commits as one transaction at one commit timestamp: after a crash all
// of it is visible or none of it, and a context cancellation mid-import
// rolls everything back and leaves no partial state.
func (kv *kvCore) Import(ctx context.Context, keys []string, vals [][]byte) error {
	if err := kv.checkFailed(); err != nil {
		return err
	}
	b, err := ingest.Prepare(keys, vals, kv.importCheck)
	if err != nil {
		return err
	}
	if len(b.Keys) == 0 {
		return nil
	}
	if kv.txns == nil || kv.importFastOff || kv.idx.Len() > 0 {
		return kv.importFallback(ctx, b)
	}
	installed, err := kv.importFast(ctx, b)
	if err != nil || installed {
		return err
	}
	return kv.importFallback(ctx, b)
}

// importFallback loads the batch through the ordinary per-key insert
// path in ONE transaction: slower (per-key WAL records, tree descents,
// key locks) but correct against any live tree, and still atomic —
// which is what lets the cancellation and crash guarantees hold on both
// paths.
func (kv *kvCore) importFallback(ctx context.Context, b *ingest.Batch) error {
	kv.importFallbacks.Add(1)
	return kv.run(ctx, b.Keys, func(tx *txn.Txn, owner uint64, st stamper) error {
		for i := range b.Keys {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := kv.putTx(ctx, tx, owner, st, b.Keys[i], b.Vals[i]); err != nil {
				return err
			}
		}
		return nil
	})
}

// importFast runs the bulk load. installed=false with a nil error means
// the empty-tree precondition failed at install time (a concurrent
// insert won the race): everything was rolled back and freed, and the
// caller should fall back.
func (kv *kvCore) importFast(ctx context.Context, b *ingest.Batch) (installed bool, err error) {
	tx, err := kv.txns.Begin()
	if err != nil {
		return false, err
	}
	// One commit timestamp for the whole batch, allocated up front so
	// every cell is written with its final begin field — no per-version
	// stamping at commit. It stays outstanding (invisible) until the
	// commit is durable; SetCommitTS makes the commit record embed it
	// for recovery's clock reseed.
	ts := kv.oracle.AllocateCommitTS()
	tx.SetCommitTS(ts)

	var bulkPages []storage.PageID
	// rollback undoes a not-yet-installed import: the physical abort
	// restores every touched page (fresh pages back to zeros), then the
	// pages are freed and the timestamp released — nothing was ever
	// reachable, so the engine is exactly as before.
	rollback := func(cause error) (bool, error) {
		if aerr := kv.txns.Abort(tx); aerr != nil {
			return false, kv.poison(fmt.Errorf("sbdms: kv engine offline after failed import rollback: %w", aerr))
		}
		if len(bulkPages) > 0 {
			if ferr := kv.freePages(bulkPages); ferr != nil {
				return false, kv.poison(fmt.Errorf("sbdms: kv engine offline after failed import page free: %w", ferr))
			}
		}
		kv.oracle.Complete(ts)
		return false, cause
	}

	chunk := kv.importChunkPages
	if chunk <= 0 {
		chunk = defaultImportChunkPages
	}
	sinceCheck := 0
	paceChunk := func() error {
		sinceCheck++
		if sinceCheck < chunk {
			return nil
		}
		sinceCheck = 0
		if err := ctx.Err(); err != nil {
			return err
		}
		// Push the chunk toward the device so the WAL's in-memory tail
		// stays bounded and the commit force pays only the final chunk.
		return kv.log.Flush(kv.log.NextLSN())
	}

	recs := make([][]byte, len(b.Keys))
	for i := range b.Keys {
		recs[i] = access.EncodeVersion(access.VersionMeta{Begin: ts}, encodeKV(b.Keys[i], b.Vals[i]))
	}
	rids, heapPages, err := kv.heap.AppendPacked(tx, recs, func(storage.PageID, int) error { return paceChunk() })
	bulkPages = append(bulkPages, heapPages...)
	if err != nil {
		return rollback(err)
	}

	items := make([]index.BulkItem, len(rids))
	for i := range rids {
		items[i] = index.BulkItem{Key: kv.key(b.Keys[i]), RID: rids[i]}
	}
	root, idxPages, err := kv.idx.BulkBuild(tx, items, paceChunk)
	bulkPages = append(bulkPages, idxPages...)
	if err != nil {
		return rollback(err)
	}

	if kv.serializable {
		// A serializable scan that ran off the (empty) tree's right edge
		// S-locked the end-of-index sentinel; the import fills that gap,
		// so it must conflict exactly like a per-key insert would.
		if err := tx.Lock(ctx, kvEOFRes, txn.Exclusive); err != nil {
			return rollback(conflictWrap(err))
		}
	}

	oldRoot, release, err := kv.idx.InstallRoot(tx, root, uint64(len(items)))
	if errors.Is(err, index.ErrTreeNotEmpty) {
		return rollback(nil) // lost the race; fall back
	}
	if err != nil {
		return rollback(err)
	}
	// The detached old root may only be freed once the commit can no
	// longer be rolled back — until then a rollback (or recovery)
	// restores the root pointer to it.
	tx.OnCommitted(func() {
		if ferr := kv.idx.FreePages([]storage.PageID{oldRoot}); ferr != nil {
			_ = kv.poison(fmt.Errorf("sbdms: kv engine offline after failed import root free: %w", ferr))
		}
	})
	// Commit WHILE holding the meta latch: the meta page's physical
	// undo is sound only while no other transaction can interleave a
	// record on it, and readers queued on the latch must not traverse
	// the new tree before its commit is durable.
	err = kv.txns.Commit(tx)
	release()
	if err != nil {
		// Durability in doubt: ts deliberately stays outstanding so no
		// snapshot ever reads the imported versions.
		return false, kv.poison(fmt.Errorf("sbdms: kv engine offline after failed import commit: %w", err))
	}
	kv.oracle.Complete(ts)
	return true, nil
}
