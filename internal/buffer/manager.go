package buffer

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/storage"
)

// Buffer manager errors.
var (
	// ErrPoolExhausted is returned when every frame is pinned and a new
	// page must be brought in.
	ErrPoolExhausted = errors.New("buffer: all frames pinned")
	// ErrNotPinned is returned by Unpin on a page that has no pins.
	ErrNotPinned = errors.New("buffer: page not pinned")
	// ErrPinned is returned when freeing a page that is still pinned.
	ErrPinned = errors.New("buffer: page still pinned")
)

// Frame is a pinned page in the buffer pool. The Data slice aliases the
// pool frame; it is valid until Unpin. Callers that modify Data must
// pass dirty=true to Unpin.
type Frame struct {
	ID   storage.PageID
	Data []byte
}

// Page returns a typed page view over the frame.
func (f *Frame) Page() *storage.Page { return storage.WrapPage(f.ID, f.Data) }

// Stats are cumulative buffer pool counters.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Flushes   uint64
}

// HitRate returns hits / (hits+misses), or 0 with no traffic.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type frame struct {
	id    storage.PageID
	data  []byte
	pins  int
	dirty bool
	valid bool
}

// Manager is the buffer manager service: a bounded cache of page
// frames over a storage.PageStore. It itself implements
// storage.PageStore so that file managers and access methods can be
// stacked over it transparently (services composed over services).
type Manager struct {
	mu     sync.Mutex
	store  storage.PageStore
	frames []frame
	table  map[storage.PageID]int
	free   []int
	policy Policy
	stats  Stats

	// beforeEvict, when set, is called with (pageID, pageLSN) before a
	// dirty page is written back; the WAL uses it to enforce
	// write-ahead ordering.
	beforeEvict func(storage.PageID, uint64) error
}

// New creates a buffer manager with nframes frames over store.
func New(store storage.PageStore, nframes int, policy Policy) *Manager {
	if nframes < 1 {
		nframes = 1
	}
	if policy == nil {
		policy = NewLRU()
	}
	m := &Manager{
		store:  store,
		frames: make([]frame, nframes),
		table:  make(map[storage.PageID]int, nframes),
		policy: policy,
	}
	for i := range m.frames {
		m.frames[i].data = make([]byte, storage.PageSize)
		m.free = append(m.free, i)
	}
	return m
}

// SetBeforeEvict installs the write-ahead hook invoked before dirty
// write-back.
func (m *Manager) SetBeforeEvict(f func(storage.PageID, uint64) error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.beforeEvict = f
}

// PolicyName reports the active replacement policy.
func (m *Manager) PolicyName() string { return m.policy.Name() }

// PoolSize returns the number of frames.
func (m *Manager) PoolSize() int { return len(m.frames) }

// Stats returns a snapshot of the pool counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Pin brings the page into the pool (loading it if absent), increments
// its pin count and returns a frame handle.
func (m *Manager) Pin(id storage.PageID) (*Frame, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if fi, ok := m.table[id]; ok {
		f := &m.frames[fi]
		f.pins++
		m.stats.Hits++
		m.policy.Touched(fi)
		return &Frame{ID: id, Data: f.data}, nil
	}
	m.stats.Misses++
	fi, err := m.obtainFrameLocked()
	if err != nil {
		return nil, err
	}
	f := &m.frames[fi]
	if err := m.store.ReadPage(id, f.data); err != nil {
		m.free = append(m.free, fi)
		return nil, err
	}
	f.id = id
	f.pins = 1
	f.dirty = false
	f.valid = true
	m.table[id] = fi
	m.policy.Inserted(fi)
	return &Frame{ID: id, Data: f.data}, nil
}

// NewPage allocates a page in the store and returns it pinned, typed t.
func (m *Manager) NewPage(t storage.PageType) (*Frame, error) {
	id, err := m.store.Allocate()
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	fi, err := m.obtainFrameLocked()
	if err != nil {
		return nil, err
	}
	f := &m.frames[fi]
	for i := range f.data {
		f.data[i] = 0
	}
	storage.WrapPage(id, f.data).SetType(t)
	f.id = id
	f.pins = 1
	f.dirty = true
	f.valid = true
	m.table[id] = fi
	m.policy.Inserted(fi)
	return &Frame{ID: id, Data: f.data}, nil
}

// obtainFrameLocked returns a free frame index, evicting if necessary.
func (m *Manager) obtainFrameLocked() (int, error) {
	if n := len(m.free); n > 0 {
		fi := m.free[n-1]
		m.free = m.free[:n-1]
		return fi, nil
	}
	fi := m.policy.Victim(func(i int) bool {
		return m.frames[i].valid && m.frames[i].pins == 0
	})
	if fi < 0 {
		return 0, fmt.Errorf("%w (%d frames)", ErrPoolExhausted, len(m.frames))
	}
	f := &m.frames[fi]
	if f.dirty {
		if err := m.flushFrameLocked(fi); err != nil {
			return 0, err
		}
	}
	delete(m.table, f.id)
	m.policy.Removed(fi)
	f.valid = false
	m.stats.Evictions++
	return fi, nil
}

func (m *Manager) flushFrameLocked(fi int) error {
	f := &m.frames[fi]
	if m.beforeEvict != nil {
		lsn := storage.WrapPage(f.id, f.data).LSN()
		if err := m.beforeEvict(f.id, lsn); err != nil {
			return fmt.Errorf("buffer: write-ahead hook for page %d: %w", f.id, err)
		}
	}
	if err := m.store.WritePage(f.id, f.data); err != nil {
		return err
	}
	f.dirty = false
	m.stats.Flushes++
	return nil
}

// Unpin decrements the pin count, recording whether the caller dirtied
// the page.
func (m *Manager) Unpin(id storage.PageID, dirty bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	fi, ok := m.table[id]
	if !ok || m.frames[fi].pins == 0 {
		return fmt.Errorf("%w: page %d", ErrNotPinned, id)
	}
	f := &m.frames[fi]
	f.pins--
	if dirty {
		f.dirty = true
	}
	return nil
}

// FlushPage writes the page back if it is resident and dirty.
func (m *Manager) FlushPage(id storage.PageID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	fi, ok := m.table[id]
	if !ok {
		return nil
	}
	if m.frames[fi].dirty {
		return m.flushFrameLocked(fi)
	}
	return nil
}

// FlushAll writes back every dirty resident page and syncs the store.
func (m *Manager) FlushAll() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for fi := range m.frames {
		if m.frames[fi].valid && m.frames[fi].dirty {
			if err := m.flushFrameLocked(fi); err != nil {
				return err
			}
		}
	}
	return m.store.Sync()
}

// Resident reports whether a page currently occupies a frame.
func (m *Manager) Resident(id storage.PageID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.table[id]
	return ok
}

// PinCount returns the pin count of a resident page (0 if absent).
func (m *Manager) PinCount(id storage.PageID) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if fi, ok := m.table[id]; ok {
		return m.frames[fi].pins
	}
	return 0
}

// Resize changes the pool size at runtime. Shrinking flushes and drops
// unpinned frames; it fails with ErrPinned when more than n frames are
// pinned. This is how the coordinator honours low-memory alerts
// (Section 3.7: component properties adjusted "according to the current
// architecture constraints").
func (m *Manager) Resize(n int) error {
	if n < 1 {
		n = 1
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if n >= len(m.frames) {
		for i := len(m.frames); i < n; i++ {
			m.frames = append(m.frames, frame{data: make([]byte, storage.PageSize)})
			m.free = append(m.free, i)
		}
		return nil
	}
	pinned := 0
	for i := range m.frames {
		if m.frames[i].valid && m.frames[i].pins > 0 {
			pinned++
		}
	}
	if pinned > n {
		return fmt.Errorf("%w: %d pinned > %d frames", ErrPinned, pinned, n)
	}
	// Evict from the tail down to n frames, compacting pinned/valid
	// frames to the front.
	for fi := range m.frames {
		if m.frames[fi].valid && m.frames[fi].pins == 0 {
			if m.frames[fi].dirty {
				if err := m.flushFrameLocked(fi); err != nil {
					return err
				}
			}
			delete(m.table, m.frames[fi].id)
			m.policy.Removed(fi)
			m.frames[fi].valid = false
			m.stats.Evictions++
		}
	}
	// Rebuild the pool keeping resident (pinned) frames.
	old := m.frames
	m.frames = make([]frame, n)
	m.free = m.free[:0]
	m.table = make(map[storage.PageID]int, n)
	next := 0
	for i := range old {
		if old[i].valid {
			m.frames[next] = old[i]
			m.table[old[i].id] = next
			next++
		}
	}
	for i := next; i < n; i++ {
		m.frames[i].data = make([]byte, storage.PageSize)
		m.free = append(m.free, i)
	}
	// Replacement policy state refers to old frame indices; reset it.
	m.policy = NewPolicy(m.policy.Name())
	for i := 0; i < next; i++ {
		m.policy.Inserted(i)
	}
	return nil
}

// --- storage.PageStore implementation over the pool ---

// Allocate implements storage.PageStore.
func (m *Manager) Allocate() (storage.PageID, error) { return m.store.Allocate() }

// Deallocate implements storage.PageStore: the page is dropped from the
// pool (it must be unpinned) and freed in the store.
func (m *Manager) Deallocate(id storage.PageID) error {
	m.mu.Lock()
	if fi, ok := m.table[id]; ok {
		if m.frames[fi].pins > 0 {
			m.mu.Unlock()
			return fmt.Errorf("%w: page %d", ErrPinned, id)
		}
		delete(m.table, id)
		m.policy.Removed(fi)
		m.frames[fi].valid = false
		m.frames[fi].dirty = false
		m.free = append(m.free, fi)
	}
	m.mu.Unlock()
	return m.store.Deallocate(id)
}

// ReadPage implements storage.PageStore via the pool.
func (m *Manager) ReadPage(id storage.PageID, buf []byte) error {
	f, err := m.Pin(id)
	if err != nil {
		return err
	}
	copy(buf, f.Data)
	return m.Unpin(id, false)
}

// WritePage implements storage.PageStore via the pool (write-back, not
// write-through; call FlushAll for durability).
func (m *Manager) WritePage(id storage.PageID, data []byte) error {
	f, err := m.Pin(id)
	if err != nil {
		return err
	}
	copy(f.Data, data)
	return m.Unpin(id, true)
}

// NumPages implements storage.PageStore.
func (m *Manager) NumPages() uint64 { return m.store.NumPages() }

// Sync implements storage.PageStore by flushing all dirty frames.
func (m *Manager) Sync() error { return m.FlushAll() }
