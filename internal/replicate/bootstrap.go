package replicate

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/storage"
	"repro/internal/wal"
)

// ErrSnapshotNeeded is returned when a follower cannot be brought up to
// date by tailing the live log: either the shipper hit truncated
// history (ErrSegmentGone under a checkpoint race) or the follower
// reported a gap between its contiguous log end and the next shipped
// record. The cure is a full-state Bootstrap: copy the leader's data
// device and live log segments, then resume tailing from the snapshot's
// durable boundary.
var ErrSnapshotNeeded = errors.New("replicate: follower needs full-state snapshot")

// Bootstrap is a full-state snapshot of a leader: the raw data-device
// image (heap, index, and meta pages), the WAL manifest, and every live
// log segment's durable bytes. Seeding a follower from it yields a node
// whose device and log open to the leader's state at Durable; records
// from Durable onward arrive through shipping. All fields are plain
// bytes so the snapshot crosses process boundaries (netbind/gob)
// unchanged.
type Bootstrap struct {
	Device   []byte
	Manifest []byte
	Segments []wal.BootstrapSegment
	Durable  wal.LSN
}

// Snapshot captures a full-state bootstrap from a leader's data device
// and log. The device is copied BEFORE the log: the WAL rule guarantees
// every page image written back to the device is covered by records at
// or below a log boundary taken afterwards, so the pair (device, log)
// always recovers — the device may be older than the log's tail, never
// newer.
func Snapshot(dev storage.Device, log *wal.Log) (*Bootstrap, error) {
	size, err := dev.Size()
	if err != nil {
		return nil, fmt.Errorf("replicate: snapshot device size: %w", err)
	}
	image := make([]byte, size)
	if size > 0 {
		if _, err := dev.ReadAt(image, 0); err != nil && !errors.Is(err, io.EOF) {
			return nil, fmt.Errorf("replicate: snapshot device: %w", err)
		}
	}
	manifest, segs, durable, err := log.SnapshotSegments()
	if err != nil {
		return nil, err
	}
	return &Bootstrap{Device: image, Manifest: manifest, Segments: segs, Durable: durable}, nil
}

// SeedDevice writes the snapshot's device image into dev (which should
// be empty).
func (b *Bootstrap) SeedDevice(dev storage.Device) error {
	if len(b.Device) == 0 {
		return nil
	}
	if _, err := dev.WriteAt(b.Device, 0); err != nil {
		return fmt.Errorf("replicate: seeding device: %w", err)
	}
	return dev.Sync()
}

// SeedSegmentDir writes the snapshot's manifest and segments into dir
// (which must be empty), producing a log directory identical to the
// leader's at the snapshot boundary.
func (b *Bootstrap) SeedSegmentDir(dir wal.SegmentDir) error {
	mdev, err := dir.OpenManifest()
	if err != nil {
		return err
	}
	if _, err := mdev.WriteAt(b.Manifest, 0); err != nil {
		return fmt.Errorf("replicate: seeding manifest: %w", err)
	}
	if err := mdev.Sync(); err != nil {
		return err
	}
	for _, s := range b.Segments {
		sdev, err := dir.OpenSegment(s.Seq)
		if err != nil {
			return err
		}
		if _, err := sdev.WriteAt(s.Data, 0); err != nil {
			return fmt.Errorf("replicate: seeding segment %d: %w", s.Seq, err)
		}
		if err := sdev.Sync(); err != nil {
			return err
		}
	}
	return dir.Sync()
}

// FollowerWAL maintains a byte-identical copy of a leader's log on a
// follower: shipped records are re-encoded at their leader-assigned LSN
// offsets into the follower's own SegmentDir, so promotion is just
// opening the directory with the real recovery path (redo repeats
// history, losers — including async-commit transactions whose records
// never finished shipping — roll back through the access methods).
//
// The follower never rolls segments: records past the seeded tail keep
// appending to the last seeded segment, which grows unboundedly until
// promotion (the promoted log's own checkpoints then truncate it).
type FollowerWAL struct {
	mu      sync.Mutex
	dir     wal.SegmentDir
	act     storage.Device // last seeded segment; all appends land here
	base    wal.LSN        // base LSN of act
	next    wal.LSN        // contiguous log end: next expected LSN
	synced  wal.LSN        // next at the last Sync
	scratch []byte
}

// OpenFollowerWAL seeds dir from the bootstrap snapshot and returns a
// follower log positioned to accept the record at b.Durable.
func OpenFollowerWAL(dir wal.SegmentDir, b *Bootstrap) (*FollowerWAL, error) {
	if len(b.Segments) == 0 {
		return nil, fmt.Errorf("replicate: bootstrap has no segments")
	}
	if err := b.SeedSegmentDir(dir); err != nil {
		return nil, err
	}
	last := b.Segments[len(b.Segments)-1]
	act, err := dir.OpenSegment(last.Seq)
	if err != nil {
		return nil, err
	}
	return &FollowerWAL{dir: dir, act: act, base: last.Base, next: b.Durable, synced: b.Durable}, nil
}

// Next returns the follower's contiguous log end: every record with
// LSN below it is present in the follower's copy.
func (f *FollowerWAL) Next() wal.LSN {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.next
}

// Append writes one shipped record at its leader-assigned offset.
// Returns (true, nil) when the record extended the log, (false, nil)
// when it was a duplicate redelivery (already present — the caller must
// also skip its page effects), and ErrSnapshotNeeded when the record
// leaves a gap: the follower missed history it can no longer obtain by
// tailing, and must re-bootstrap.
func (f *FollowerWAL) Append(rec *wal.Record) (bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if rec.LSN < f.next {
		return false, nil
	}
	if rec.LSN > f.next {
		return false, fmt.Errorf("%w: shipped record at LSN %d, follower log ends at %d",
			ErrSnapshotNeeded, rec.LSN, f.next)
	}
	f.scratch = wal.EncodeRecord(f.scratch[:0], rec)
	end := f.next + wal.LSN(len(f.scratch))
	if rec.End != 0 && rec.End != end {
		return false, fmt.Errorf("replicate: record at LSN %d re-encodes to end %d, leader end %d",
			rec.LSN, end, rec.End)
	}
	off := int64(wal.SegmentHeaderSize) + int64(rec.LSN-f.base)
	if _, err := f.act.WriteAt(f.scratch, off); err != nil {
		return false, fmt.Errorf("replicate: follower append at LSN %d: %w", rec.LSN, err)
	}
	f.next = end
	return true, nil
}

// Sync forces appended records to the follower's device. An async-commit
// ack only proves the record reached this follower's log; Sync bounds
// how much of that log a follower crash can lose.
func (f *FollowerWAL) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.next == f.synced {
		return nil
	}
	if err := f.act.Sync(); err != nil {
		return err
	}
	f.synced = f.next
	return nil
}

// Dir returns the follower's segment directory — the LogDir to hand to
// the engine's Open on promotion.
func (f *FollowerWAL) Dir() wal.SegmentDir { return f.dir }
