package access

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/storage"
)

// Slotted page errors.
var (
	// ErrPageFull is returned when a record does not fit in the page.
	ErrPageFull = errors.New("access: page full")
	// ErrNoSlot is returned for absent or deleted slots.
	ErrNoSlot = errors.New("access: no such record")
)

// Slotted page payload layout:
//
//	u16 slotCount | u16 cellStart | slot[0] | slot[1] | ...      (grows up)
//	... free space ...
//	                       ... cells ...                          (grow down)
//
// Each slot is u16 offset | u16 length, offsets relative to the payload
// start. A deleted slot has offset == deadSlot.
const (
	slotHdrSize  = 4
	slotSize     = 4
	deadSlot     = 0xFFFF
	maxRecordLen = storage.PayloadSize - slotHdrSize - slotSize
)

// SlottedPage is a record-organised view over a page payload. It
// mutates the underlying page buffer directly; callers own pinning and
// latching.
type SlottedPage struct {
	p *storage.Page
}

// Slotted wraps a page as a slotted page (no initialisation).
func Slotted(p *storage.Page) *SlottedPage { return &SlottedPage{p: p} }

// InitSlotted formats a fresh page as an empty slotted page.
func InitSlotted(p *storage.Page) *SlottedPage {
	sp := &SlottedPage{p: p}
	sp.setSlotCount(0)
	sp.setCellStart(uint16(storage.PayloadSize))
	return sp
}

func (sp *SlottedPage) payload() []byte { return sp.p.Payload() }

func (sp *SlottedPage) slotCount() int {
	return int(binary.LittleEndian.Uint16(sp.payload()))
}

func (sp *SlottedPage) setSlotCount(n int) {
	binary.LittleEndian.PutUint16(sp.payload(), uint16(n))
}

func (sp *SlottedPage) cellStart() int {
	return int(binary.LittleEndian.Uint16(sp.payload()[2:]))
}

func (sp *SlottedPage) setCellStart(off uint16) {
	binary.LittleEndian.PutUint16(sp.payload()[2:], off)
}

func (sp *SlottedPage) slot(i int) (off, ln int) {
	base := slotHdrSize + i*slotSize
	p := sp.payload()
	return int(binary.LittleEndian.Uint16(p[base:])), int(binary.LittleEndian.Uint16(p[base+2:]))
}

func (sp *SlottedPage) setSlot(i, off, ln int) {
	base := slotHdrSize + i*slotSize
	p := sp.payload()
	binary.LittleEndian.PutUint16(p[base:], uint16(off))
	binary.LittleEndian.PutUint16(p[base+2:], uint16(ln))
}

// NumSlots returns the number of slots (including deleted ones).
func (sp *SlottedPage) NumSlots() int { return sp.slotCount() }

// NumRecords returns the number of live records.
func (sp *SlottedPage) NumRecords() int {
	n := 0
	for i := 0; i < sp.slotCount(); i++ {
		if off, _ := sp.slot(i); off != deadSlot {
			n++
		}
	}
	return n
}

// FreeSpace returns the bytes available for one new record (accounting
// for a possible new slot entry).
func (sp *SlottedPage) FreeSpace() int {
	free := sp.cellStart() - (slotHdrSize + sp.slotCount()*slotSize)
	free -= slotSize // reserve room for the next slot entry
	if free < 0 {
		return 0
	}
	return free
}

// Insert stores a record and returns its slot number.
func (sp *SlottedPage) Insert(rec []byte) (int, error) {
	if len(rec) > maxRecordLen {
		return 0, fmt.Errorf("%w: record %d bytes exceeds max %d", ErrPageFull, len(rec), maxRecordLen)
	}
	// Reuse a dead slot when possible (slot entry already paid for).
	slotIdx := -1
	for i := 0; i < sp.slotCount(); i++ {
		if off, _ := sp.slot(i); off == deadSlot {
			slotIdx = i
			break
		}
	}
	needSlot := 0
	if slotIdx < 0 {
		needSlot = slotSize
	}
	free := sp.cellStart() - (slotHdrSize + sp.slotCount()*slotSize) - needSlot
	if free < len(rec) {
		// Try compaction before giving up: deleted cells leave holes.
		sp.Compact()
		free = sp.cellStart() - (slotHdrSize + sp.slotCount()*slotSize) - needSlot
		if free < len(rec) {
			return 0, fmt.Errorf("%w: need %d, have %d", ErrPageFull, len(rec), free)
		}
	}
	newStart := sp.cellStart() - len(rec)
	copy(sp.payload()[newStart:], rec)
	sp.setCellStart(uint16(newStart))
	if slotIdx < 0 {
		slotIdx = sp.slotCount()
		sp.setSlotCount(slotIdx + 1)
	}
	sp.setSlot(slotIdx, newStart, len(rec))
	return slotIdx, nil
}

// InsertAt re-fills slot i — which must be dead (or one past the
// current slot count) — with rec, compacting the page if needed. It is
// the undo of Delete: rollback must restore the record at its original
// RID because index entries reference it. Re-filling an occupied slot
// that already holds exactly rec is a no-op, so replaying an undo that
// a durable compensation record already applied is harmless.
func (sp *SlottedPage) InsertAt(i int, rec []byte) error {
	if i < 0 || i > sp.slotCount() {
		return fmt.Errorf("%w: slot %d of %d", ErrNoSlot, i, sp.slotCount())
	}
	if i < sp.slotCount() {
		if off, ln := sp.slot(i); off != deadSlot {
			cur := sp.payload()[off : off+ln]
			if len(cur) == len(rec) && string(cur) == string(rec) {
				return nil // undo already applied
			}
			return fmt.Errorf("%w: slot %d occupied", ErrNoSlot, i)
		}
	}
	needSlot := 0
	if i == sp.slotCount() {
		needSlot = slotSize
	}
	free := sp.cellStart() - (slotHdrSize + sp.slotCount()*slotSize) - needSlot
	if free < len(rec) {
		sp.Compact()
		free = sp.cellStart() - (slotHdrSize + sp.slotCount()*slotSize) - needSlot
		if free < len(rec) {
			return fmt.Errorf("%w: restore needs %d, have %d", ErrPageFull, len(rec), free)
		}
	}
	newStart := sp.cellStart() - len(rec)
	copy(sp.payload()[newStart:], rec)
	sp.setCellStart(uint16(newStart))
	if i == sp.slotCount() {
		sp.setSlotCount(i + 1)
	}
	sp.setSlot(i, newStart, len(rec))
	return nil
}

// UpdatePadded overwrites the record in slot i in place WITHOUT
// changing the cell length: the new record must fit the existing cell;
// the tail is zero-padded. Because the cell never shrinks, the undo
// (RestoreCell with the old cell bytes) always fits — no concurrent
// neighbour can steal the space — which is what makes in-place updates
// rollback-safe under per-key locking. Callers' record encodings must
// be self-delimiting (tolerate trailing zeros). Returns ErrPageFull
// when the record exceeds the cell; the caller then relocates.
func (sp *SlottedPage) UpdatePadded(i int, rec []byte) error {
	if i < 0 || i >= sp.slotCount() {
		return fmt.Errorf("%w: slot %d of %d", ErrNoSlot, i, sp.slotCount())
	}
	off, ln := sp.slot(i)
	if off == deadSlot {
		return fmt.Errorf("%w: slot %d deleted", ErrNoSlot, i)
	}
	if len(rec) > ln {
		return fmt.Errorf("%w: %d bytes into a %d-byte cell", ErrPageFull, len(rec), ln)
	}
	cell := sp.payload()[off : off+ln]
	copy(cell, rec)
	for j := len(rec); j < ln; j++ {
		cell[j] = 0
	}
	return nil
}

// Cell returns the full cell bytes of slot i, including any padding.
func (sp *SlottedPage) Cell(i int) ([]byte, error) { return sp.Get(i) }

// RestoreCell rewrites the cell of slot i with exactly its prior
// content (same length) — the undo of UpdatePadded.
func (sp *SlottedPage) RestoreCell(i int, cell []byte) error {
	if i < 0 || i >= sp.slotCount() {
		return fmt.Errorf("%w: slot %d of %d", ErrNoSlot, i, sp.slotCount())
	}
	off, ln := sp.slot(i)
	if off == deadSlot {
		return fmt.Errorf("%w: slot %d deleted", ErrNoSlot, i)
	}
	if ln != len(cell) {
		return fmt.Errorf("%w: restore %d bytes into a %d-byte cell", ErrNoSlot, len(cell), ln)
	}
	copy(sp.payload()[off:off+ln], cell)
	return nil
}

// Get returns the record bytes in slot i (aliasing the page buffer).
func (sp *SlottedPage) Get(i int) ([]byte, error) {
	if i < 0 || i >= sp.slotCount() {
		return nil, fmt.Errorf("%w: slot %d of %d", ErrNoSlot, i, sp.slotCount())
	}
	off, ln := sp.slot(i)
	if off == deadSlot {
		return nil, fmt.Errorf("%w: slot %d deleted", ErrNoSlot, i)
	}
	return sp.payload()[off : off+ln], nil
}

// Delete removes the record in slot i. The slot is reusable; cell space
// is reclaimed on the next compaction.
func (sp *SlottedPage) Delete(i int) error {
	if i < 0 || i >= sp.slotCount() {
		return fmt.Errorf("%w: slot %d of %d", ErrNoSlot, i, sp.slotCount())
	}
	if off, _ := sp.slot(i); off == deadSlot {
		return fmt.Errorf("%w: slot %d already deleted", ErrNoSlot, i)
	}
	sp.setSlot(i, deadSlot, 0)
	return nil
}

// Update replaces the record in slot i, in place when the new record
// fits the old cell, otherwise via free space. Returns ErrPageFull when
// the page cannot hold the new record; the caller then relocates it.
func (sp *SlottedPage) Update(i int, rec []byte) error {
	if i < 0 || i >= sp.slotCount() {
		return fmt.Errorf("%w: slot %d of %d", ErrNoSlot, i, sp.slotCount())
	}
	off, ln := sp.slot(i)
	if off == deadSlot {
		return fmt.Errorf("%w: slot %d deleted", ErrNoSlot, i)
	}
	if len(rec) <= ln {
		copy(sp.payload()[off:], rec)
		sp.setSlot(i, off, len(rec))
		return nil
	}
	// Relocate within the page.
	free := sp.cellStart() - (slotHdrSize + sp.slotCount()*slotSize)
	if free < len(rec) {
		// Drop the old cell and compact to reclaim every hole. Keep the
		// old bytes so the record can be restored if it still does not
		// fit — Update must not be destructive on failure.
		old := append([]byte(nil), sp.payload()[off:off+ln]...)
		sp.setSlot(i, deadSlot, 0)
		sp.Compact()
		free = sp.cellStart() - (slotHdrSize + sp.slotCount()*slotSize)
		if free < len(rec) {
			restoreStart := sp.cellStart() - len(old)
			copy(sp.payload()[restoreStart:], old)
			sp.setCellStart(uint16(restoreStart))
			sp.setSlot(i, restoreStart, len(old))
			return fmt.Errorf("%w: update needs %d, have %d", ErrPageFull, len(rec), free)
		}
	}
	newStart := sp.cellStart() - len(rec)
	copy(sp.payload()[newStart:], rec)
	sp.setCellStart(uint16(newStart))
	sp.setSlot(i, newStart, len(rec))
	return nil
}

// Compact rewrites live cells contiguously at the end of the payload,
// reclaiming holes left by deletes and updates.
func (sp *SlottedPage) Compact() {
	type cell struct{ idx, off, ln int }
	var cells []cell
	for i := 0; i < sp.slotCount(); i++ {
		off, ln := sp.slot(i)
		if off != deadSlot {
			cells = append(cells, cell{i, off, ln})
		}
	}
	// Copy cells out, then lay them back from the end.
	buf := make([]byte, 0, storage.PayloadSize)
	offsets := make([]int, len(cells))
	pos := storage.PayloadSize
	for k := len(cells) - 1; k >= 0; k-- {
		c := cells[k]
		pos -= c.ln
		offsets[k] = pos
		buf = append(buf, sp.payload()[c.off:c.off+c.ln]...)
	}
	// buf holds cells in reverse order; write them back.
	w := storage.PayloadSize
	bp := 0
	for k := len(cells) - 1; k >= 0; k-- {
		c := cells[k]
		w -= c.ln
		copy(sp.payload()[w:], buf[bp:bp+c.ln])
		bp += c.ln
		sp.setSlot(c.idx, w, c.ln)
	}
	sp.setCellStart(uint16(pos))
	if len(cells) == 0 {
		sp.setCellStart(uint16(storage.PayloadSize))
	}
}

// Records iterates live records in slot order.
func (sp *SlottedPage) Records(fn func(slot int, rec []byte) error) error {
	for i := 0; i < sp.slotCount(); i++ {
		off, ln := sp.slot(i)
		if off == deadSlot {
			continue
		}
		if err := fn(i, sp.payload()[off:off+ln]); err != nil {
			return err
		}
	}
	return nil
}
