package sbdms

import (
	"context"
	"testing"
	"time"

	"repro/internal/storage"
)

// TestSerializableScanCrashRecovery kills the engine mid
// serializable-scan-with-writers: scanners hold next-key S locks and
// writers hold key X and gap locks when the device dies. All of those
// locks are volatile by design — strict 2PL releases them only on a
// durable outcome, and a crash IS an outcome (abort) for every
// in-flight transaction. Recovery must therefore (a) replay to exactly
// the acknowledged, serially-consistent state, and (b) leave no orphan
// gap locks: post-recovery scans and writes into previously scanned
// gaps (including the end-of-index sentinel gap) must proceed without
// blocking on ghosts of pre-crash lock owners.
func TestSerializableScanCrashRecovery(t *testing.T) {
	for _, tc := range []struct {
		name       string
		crashAfter int
		tear       int
	}{
		{"kill9-dropped-write", 20, 0},
		{"kill9-torn-write", 35, storage.PageSize / 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			inner, logDev := storage.NewMemDevice(), storage.NewMemDevice()
			fault := storage.NewFaultDevice(inner)
			db, err := Open(Options{
				Device:        fault,
				LogDevice:     logDev,
				Granularity:   Monolithic,
				BufferFrames:  32, // small pool: eviction write-back mid-run
				ScanIsolation: Serializable,
			})
			if err != nil {
				t.Fatal(err)
			}
			fault.CrashAfterWrites(tc.crashAfter, tc.tear)
			st := runConcurrentCrashWorkload(db, 6, 300, 25, fault)
			abandon(db)
			verifySerializableRecovered(t, inner, logDev, st)
		})
	}
}

// TestSerializableScanCrashRecoveryKill9 is the no-device-fault
// variant: full concurrent serializable load, then the process
// "dies" with nothing flushed (no SyncMeta, no Close) while the lock
// table is still populated in memory.
func TestSerializableScanCrashRecoveryKill9(t *testing.T) {
	dataDev, logDev := storage.NewMemDevice(), storage.NewMemDevice()
	db, err := Open(Options{
		Device:        dataDev,
		LogDevice:     logDev,
		Granularity:   Monolithic,
		BufferFrames:  256,
		ScanIsolation: Serializable,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := runConcurrentCrashWorkload(db, 8, 250, 30, nil)
	if len(st.live) == 0 {
		t.Fatal("workload committed nothing")
	}
	abandon(db)
	verifySerializableRecovered(t, dataDev, logDev, st)
}

// verifySerializableRecovered reopens the store at serializable
// isolation, checks the committed state key by key, and then proves
// liveness: scans and writes across previously scanned gaps complete
// within a bounded context, and the lock table drains to empty.
func verifySerializableRecovered(t *testing.T, dataDev, logDev storage.Device, st *crashState) {
	t.Helper()
	db, err := Open(Options{
		Device:        dataDev,
		LogDevice:     logDev,
		Granularity:   Monolithic,
		BufferFrames:  64,
		ScanIsolation: Serializable,
	})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer db.Close(context.Background())
	for k, want := range st.live {
		got, err := db.Get(k)
		if err != nil {
			t.Fatalf("committed key %q lost after recovery: %v", k, err)
		}
		if string(got) != want {
			t.Fatalf("committed key %q = %q, want %q", k, got, want)
		}
	}
	for k := range st.deleted {
		if _, err := db.Get(k); err == nil {
			t.Fatalf("committed delete of %q resurrected after recovery", k)
		} else if !isNotFound(err) {
			t.Fatalf("Get(%q) after committed delete: %v", k, err)
		}
	}
	if got, want := db.KVLen(), uint64(len(st.live)); got != want {
		t.Fatalf("KVLen after recovery = %d, want %d", got, want)
	}

	// No orphan gap locks: everything below must finish promptly. A
	// leaked pre-crash lock would park one of these forever.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	keys, err := db.ScanKeysContext(ctx, "", 1_000_000)
	if err != nil {
		t.Fatalf("serializable scan after recovery: %v", err)
	}
	if uint64(len(keys)) != db.KVLen() {
		t.Fatalf("post-recovery scan saw %d keys, want %d", len(keys), db.KVLen())
	}
	// Insert into an interior gap and past the end (the EOF sentinel
	// gap every completed scan locked), delete an existing key (gap
	// lock on its successor), then scan again.
	if err := db.PutContext(ctx, "m-interior-gap", []byte("v")); err != nil {
		t.Fatalf("put into scanned gap after recovery: %v", err)
	}
	if err := db.PutContext(ctx, "zzzz-past-the-end", []byte("v")); err != nil {
		t.Fatalf("append past end-of-index after recovery: %v", err)
	}
	if len(keys) > 0 {
		if err := db.DeleteKeyContext(ctx, keys[0]); err != nil {
			t.Fatalf("delete after recovery: %v", err)
		}
	}
	again, err := db.ScanKeysContext(ctx, "", 1_000_000)
	if err != nil {
		t.Fatalf("second serializable scan after recovery: %v", err)
	}
	if len(again) == 0 {
		t.Fatal("post-recovery store empty after liveness writes")
	}
	if got := db.kv.locks.Locked(); got != 0 {
		t.Fatalf("lock table not drained after operations completed: %d resources still locked", got)
	}
}
