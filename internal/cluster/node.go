package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	sbdms "repro"
	"repro/internal/core"
	"repro/internal/netbind"
	"repro/internal/replicate"
	"repro/internal/storage"
	"repro/internal/wal"
)

// Cluster service names and interfaces.
const (
	// KVServiceName is each node's shard KV service (epoch-guarded
	// client operations).
	KVServiceName = "shardkv"
	// IfaceShardKV is its logical interface.
	IfaceShardKV = "sbdms.cluster.ShardKV"
	// ReplServiceName is each node's replication service (leader ->
	// follower log shipping and bootstrap).
	ReplServiceName = "repl"
	// IfaceRepl is its logical interface.
	IfaceRepl = "sbdms.cluster.Replication"
)

// Wire types. Every client request carries the shard-map epoch it was
// planned under; nodes reject mismatches with ErrEpochChanged so a
// multi-shard batch can never be split across two maps.
type (
	// PutReq writes one key.
	PutReq struct {
		Epoch uint64
		Key   string
		Val   []byte
	}
	// BatchReq writes many keys atomically on one shard (putBatch) or
	// bulk-loads them (import).
	BatchReq struct {
		Epoch uint64
		Keys  []string
		Vals  [][]byte
	}
	// GetReq reads one key (get, getSnapshot).
	GetReq struct {
		Epoch uint64
		Key   string
	}
	// ScanReq scans keys in order (scanKeys, scanSnapshot).
	ScanReq struct {
		Epoch uint64
		From  string
		N     int
	}
	// LenReq counts live keys on one shard.
	LenReq struct {
		Epoch uint64
	}
	// ApplyReq ships a batch of WAL records plus the leader's
	// visibility frontier sampled before the batch was drained. UpTo
	// is the leader's shipped log end through this delivery: a
	// follower whose WAL copy ends below it has missed records (a
	// dropped earlier shipment) and must answer NeedSnapshot instead
	// of advancing its frontier — even for a record-free delivery.
	ApplyReq struct {
		From     NodeID
		Frontier uint64
		UpTo     wal.LSN
		Recs     []*wal.Record
	}
	// ApplyReply acknowledges an apply. Next is the follower's WAL
	// high-water mark (everything below it is on the follower);
	// NeedSnapshot asks the leader for a full-state bootstrap because
	// the follower found a gap it cannot tail across.
	ApplyReply struct {
		Next         wal.LSN
		NeedSnapshot bool
	}
	// SeedReq carries a full-state bootstrap image.
	SeedReq struct {
		Boot     *replicate.Bootstrap
		Frontier uint64
	}
)

func init() {
	netbind.RegisterType(PutReq{})
	netbind.RegisterType(BatchReq{})
	netbind.RegisterType(GetReq{})
	netbind.RegisterType(ScanReq{})
	netbind.RegisterType(LenReq{})
	netbind.RegisterType(ApplyReq{})
	netbind.RegisterType(ApplyReply{})
	netbind.RegisterType(SeedReq{})
	netbind.RegisterType(&Map{})
	netbind.RegisterType(uint64(0))
	netbind.RegisterType(true)
}

// NodeConfig parameterizes one cluster node.
type NodeConfig struct {
	// ID names the node; Shard is the partition it belongs to.
	ID    NodeID
	Shard int
	// AsyncCommit acks commits once a follower holds the record,
	// before the local WAL fsync. AckTimeout bounds the wait; on
	// timeout the commit falls back to a local fsync so the ack never
	// lies about durability.
	AsyncCommit bool
	AckTimeout  time.Duration
	// Frames sizes the buffer pool; WALSegmentBytes the log segments;
	// CheckpointInterval the background checkpointer (0 = manual).
	Frames             int
	WALSegmentBytes    int
	CheckpointInterval time.Duration
	// HeartbeatInterval paces record-free frontier shipments while the
	// queue is idle (default 25ms). Heartbeats are what make a lagging
	// follower converge without new writes: one that missed a dropped
	// batch sees the leader's log end in the heartbeat, answers
	// NeedSnapshot, and is re-bootstrapped.
	HeartbeatInterval time.Duration
}

// Node is one cluster member. A leader runs a full sbdms engine and
// ships its WAL; a follower holds a byte-identical WAL copy plus a
// ReplicaReader serving snapshot reads at the replicated frontier. A
// follower becomes a leader through Promote, which runs real crash
// recovery over its replicated state.
type Node struct {
	cfg       NodeConfig
	transport Transport
	registry  *core.Registry

	epoch        atomic.Uint64
	killed       atomic.Bool
	bootstraps   atomic.Uint64
	ackFallbacks atomic.Uint64

	mu        sync.Mutex
	leader    bool
	db        *sbdms.DB
	dataDev   *storage.FaultDevice
	followers []NodeID
	queue     *shipQueue
	acks      *acker
	shipDone  chan struct{}

	// wmu is the bootstrap write gate: client mutations hold it shared
	// for the duration of their engine call; a full-state snapshot
	// holds it exclusively while it flushes and copies the device, so
	// the copied image never contains torn pages from in-flight writes.
	wmu sync.RWMutex

	fmu    sync.Mutex
	fwal   *replicate.FollowerWAL
	fdev   *storage.FaultDevice
	reader *sbdms.ReplicaReader
}

// NewLeaderNode opens a node with a running engine, ready to own a
// shard. The data device is fault-injectable (kill -9 via
// CrashAfterWrites) and the WAL lives in an in-memory segment
// directory, mirroring the repo's crash harnesses.
func NewLeaderNode(cfg NodeConfig, transport Transport) (*Node, error) {
	n := newNode(cfg, transport)
	if err := n.openEngine(storage.NewFaultDevice(storage.NewMemDevice()), wal.NewMemSegmentDir()); err != nil {
		return nil, err
	}
	return n, nil
}

// NewFollowerNode opens an empty follower. Its first apply answers
// NeedSnapshot, pulling a full-state bootstrap from the leader.
func NewFollowerNode(cfg NodeConfig, transport Transport) (*Node, error) {
	return newNode(cfg, transport), nil
}

func newNode(cfg NodeConfig, transport Transport) *Node {
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = 500 * time.Millisecond
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 25 * time.Millisecond
	}
	n := &Node{cfg: cfg, transport: transport, registry: core.NewRegistry(nil)}
	n.epoch.Store(1)
	n.registerServices()
	return n
}

// ID returns the node ID.
func (n *Node) ID() NodeID { return n.cfg.ID }

// Registry returns the node's service registry (served over netbind in
// distributed deployments, invoked directly by LocalTransport).
func (n *Node) Registry() *core.Registry { return n.registry }

// SetEpoch installs the shard-map epoch this node accepts.
func (n *Node) SetEpoch(e uint64) { n.epoch.Store(e) }

// SetFollowers installs the follower set a leader ships to.
func (n *Node) SetFollowers(ids []NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.followers = append([]NodeID(nil), ids...)
}

// IsLeader reports the node's current role.
func (n *Node) IsLeader() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.leader
}

// DB exposes the running engine (nil on followers) for tests.
func (n *Node) DB() *sbdms.DB {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.db
}

// Reader exposes the follower replica reader (nil before seeding).
func (n *Node) Reader() *sbdms.ReplicaReader {
	n.fmu.Lock()
	defer n.fmu.Unlock()
	return n.reader
}

// openEngine starts the sbdms engine on dev+dir and installs the
// leader-side replication machinery: the append observer feeding the
// ship queue, the ship goroutine, and (when configured) the
// async-commit durability hook.
func (n *Node) openEngine(dev *storage.FaultDevice, dir wal.SegmentDir) error {
	db, err := sbdms.Open(sbdms.Options{
		Device:             dev,
		LogDir:             dir,
		WALSegmentBytes:    n.cfg.WALSegmentBytes,
		CheckpointInterval: n.cfg.CheckpointInterval,
		BufferFrames:       n.cfg.Frames,
		Granularity:        sbdms.Monolithic,
	})
	if err != nil {
		return err
	}

	q := newShipQueue()
	a := newAcker()
	done := make(chan struct{})

	n.mu.Lock()
	n.db, n.dataDev, n.leader = db, dev, true
	n.queue, n.acks, n.shipDone = q, a, done
	n.mu.Unlock()

	// Retention: checkpoint truncation never deletes segments the
	// shipper has not drained — the catch-up path for a lagging
	// follower stays tailable. (A follower that still gaps, e.g. after
	// rejoining from scratch, re-bootstraps via NeedSnapshot.) The hook
	// runs with the log mutex held, so it must derive its answer purely
	// from queue state — never by calling back into the log.
	db.SetLogRetention(q.lowWater)

	// Observer runs under the log mutex at the append point: deep-copy
	// and hand off, nothing else.
	db.Log().SetAppendObserver(func(rec *wal.Record) {
		q.push(cloneRecord(rec))
	})

	if n.cfg.AsyncCommit {
		db.Txns().SetCommitDurability(func(upTo wal.LSN) error {
			n.mu.Lock()
			nf := len(n.followers)
			n.mu.Unlock()
			if nf > 0 && a.wait(upTo, n.cfg.AckTimeout) {
				return nil
			}
			// No follower (or none acked in time): fall back to local
			// fsync so the commit acknowledgment never overstates
			// durability — degraded mode, counted for observability.
			if nf > 0 {
				n.ackFallbacks.Add(1)
			}
			return db.Log().Flush(upTo)
		})
	}

	go n.shipLoop(db, q, done)
	return nil
}

// cloneRecord deep-copies a record out of the log's append path (the
// original's slices alias the appender's buffers).
func cloneRecord(rec *wal.Record) *wal.Record {
	cp := *rec
	cp.Before = append([]byte(nil), rec.Before...)
	cp.After = append([]byte(nil), rec.After...)
	cp.Undo = append([]byte(nil), rec.Undo...)
	return &cp
}

// shipLoop drains the queue and ships batches to every follower. The
// frontier is sampled BEFORE the drain: any commit timestamp visible at
// the sample had its records appended (and therefore enqueued) earlier,
// so the records backing everything at or below the shipped frontier
// are in this batch or an earlier one. Followers may thus serve
// snapshot reads at that frontier without missing versions.
func (n *Node) shipLoop(db *sbdms.DB, q *shipQueue, done chan struct{}) {
	defer close(done)
	hb := time.NewTicker(n.cfg.HeartbeatInterval)
	defer hb.Stop()
	for {
		select {
		case <-q.stopCh:
			return
		case <-q.sig:
		case <-hb.C:
		}
		frontier := db.Txns().Oracle().VisibleTS()
		batch := q.drain()
		n.mu.Lock()
		followers := append([]NodeID(nil), n.followers...)
		n.mu.Unlock()

		if len(batch) == 0 {
			// Idle heartbeat. Record-free frontier shipments are only
			// sound when every record appended so far has been shipped:
			// a commit visible at the frontier sample had its records
			// appended before the sample, so appended==shipped proves
			// the followers (modulo drops, which UpTo exposes) hold its
			// backing records.
			upTo := q.shippedEnd()
			if q.appendedEnd() != upTo {
				continue // records in flight; the next batch carries the frontier
			}
			for _, f := range followers {
				n.shipTo(db, f, nil, frontier, upTo)
			}
			continue
		}

		upTo := batch[len(batch)-1].End
		for _, f := range followers {
			n.shipTo(db, f, batch, frontier, upTo)
		}
		q.shipped(upTo)

		// The batch's own commits usually complete (become visible)
		// while the batch is in flight; a record-free frontier bump
		// lets followers serve them without waiting for the next write.
		// Sound only if nothing was appended since the drain (same
		// argument as the idle heartbeat); otherwise the next batch —
		// or the heartbeat — carries the newer frontier.
		if bump := db.Txns().Oracle().VisibleTS(); bump > frontier && q.appendedEnd() == upTo {
			for _, f := range followers {
				n.shipTo(db, f, nil, bump, upTo)
			}
		}
	}
}

// shipTo delivers one batch to one follower, bootstrapping it first if
// it reports a gap. Transport errors are dropped: the follower will
// gap on the next delivery and self-heal through NeedSnapshot.
func (n *Node) shipTo(db *sbdms.DB, f NodeID, batch []*wal.Record, frontier uint64, upTo wal.LSN) {
	reply, err := n.invokeApply(f, &ApplyReq{From: n.cfg.ID, Frontier: frontier, UpTo: upTo, Recs: batch})
	if err != nil {
		return
	}
	if reply.NeedSnapshot {
		if err := n.bootstrapFollower(db, f); err != nil {
			return
		}
		// Redeliver the batch the bootstrap interrupted; the follower
		// WAL skips whatever the snapshot already covers.
		reply, err = n.invokeApply(f, &ApplyReq{From: n.cfg.ID, Frontier: frontier, UpTo: upTo, Recs: batch})
		if err != nil || reply.NeedSnapshot {
			return
		}
	}
	n.acks.advance(f, reply.Next)
}

func (n *Node) invokeApply(f NodeID, req *ApplyReq) (ApplyReply, error) {
	//lint:ignore ctxflow the ship daemon has no request context; the timeout bounds the RPC
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	res, err := n.transport.Invoke(ctx, f, ReplServiceName, "apply", req)
	if err != nil {
		return ApplyReply{}, err
	}
	switch r := res.(type) {
	case ApplyReply:
		return r, nil
	case *ApplyReply:
		return *r, nil
	}
	return ApplyReply{}, fmt.Errorf("cluster: unexpected apply reply %T", res)
}

// bootstrapFollower sends a full-state snapshot: frontier sample, then
// data-device flush, then device+log copy — in that order, so the
// device image is never newer than the log copy and the sampled
// frontier is fully covered by the flushed state.
func (n *Node) bootstrapFollower(db *sbdms.DB, f NodeID) error {
	// Exclusive side of the write gate: no client mutation runs while
	// the device is flushed and copied. The gate is released before the
	// seed RPC — the image is materialized in memory by then, and
	// records logged after it ship (or dedup) through the normal path.
	// Ack-waiters holding the shared gate are interrupted first (they
	// fall back to a local fsync); otherwise they would wait on this
	// very goroutine while it waits on them.
	n.mu.Lock()
	a := n.acks
	n.mu.Unlock()
	if a != nil {
		a.interrupt()
	}
	n.wmu.Lock()
	frontier := db.Txns().Oracle().VisibleTS()
	err := db.Flush()
	var boot *replicate.Bootstrap
	if err == nil {
		n.mu.Lock()
		dev := n.dataDev
		n.mu.Unlock()
		boot, err = replicate.Snapshot(dev, db.Log())
	}
	n.wmu.Unlock()
	if err != nil {
		return err
	}
	//lint:ignore ctxflow the ship daemon has no request context; the timeout bounds the RPC
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, err = n.transport.Invoke(ctx, f, ReplServiceName, "seed", &SeedReq{Boot: boot, Frontier: frontier})
	return err
}

// Promote turns a seeded follower into a leader: flush the replica
// state, then open a REAL engine over the replicated device and the
// follower's WAL copy. Opening runs crash recovery — committed
// transactions are redone from the copied log and unfinished ones
// (including async-commit losers whose ack raced the old leader's
// death) are rolled back, which is exactly the failover contract:
// an acknowledged async commit survives here or nowhere.
func (n *Node) Promote() error {
	n.fmu.Lock()
	reader, fwal, fdev := n.reader, n.fwal, n.fdev
	n.reader, n.fwal, n.fdev = nil, nil, nil
	n.fmu.Unlock()
	if reader == nil || fwal == nil {
		return errors.New("cluster: promote: follower was never seeded")
	}
	if err := reader.Close(); err != nil {
		return err
	}
	return n.openEngine(fdev, fwal.Dir())
}

// Kill is kill -9: the data device starts failing every access (via
// the FaultDevice, so nothing buffered after the crash point survives)
// and the ship loop stops. The engine is abandoned un-closed —
// deliberately: Close would flush, and a dead process doesn't.
func (n *Node) Kill() {
	n.killed.Store(true)
	n.mu.Lock()
	db, dev, q := n.db, n.dataDev, n.queue
	n.mu.Unlock()
	if dev != nil {
		dev.CrashAfterWrites(0, 0)
	}
	if q != nil {
		q.stop()
	}
	_ = db // abandoned: no flush, no close
	n.fmu.Lock()
	fdev := n.fdev
	n.fmu.Unlock()
	if fdev != nil {
		fdev.CrashAfterWrites(0, 0)
	}
}

// Close shuts the node down cleanly (tests' happy path).
func (n *Node) Close(ctx context.Context) error {
	n.mu.Lock()
	db, q, done := n.db, n.queue, n.shipDone
	n.db = nil
	n.mu.Unlock()
	if q != nil {
		q.stop()
		<-done
	}
	var err error
	if db != nil {
		db.Log().SetAppendObserver(nil)
		err = db.Close(ctx)
	}
	n.fmu.Lock()
	reader := n.reader
	n.reader = nil
	n.fmu.Unlock()
	if reader != nil {
		if cerr := reader.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// --- services -----------------------------------------------------------

func (n *Node) registerServices() {
	kv := core.NewService(KVServiceName, &core.Contract{
		Interface: IfaceShardKV,
		Operations: []core.OpSpec{
			{Name: "put", In: "cluster.PutReq", Out: "bool", Semantic: "kv.put"},
			{Name: "putBatch", In: "cluster.BatchReq", Out: "bool", Semantic: "kv.putBatch"},
			{Name: "import", In: "cluster.BatchReq", Out: "bool", Semantic: "kv.import"},
			{Name: "get", In: "cluster.GetReq", Out: "[]byte", Semantic: "kv.get"},
			{Name: "delete", In: "cluster.GetReq", Out: "bool", Semantic: "kv.delete"},
			{Name: "scanKeys", In: "cluster.ScanReq", Out: "[]string", Semantic: "kv.scanKeys"},
			{Name: "len", In: "cluster.LenReq", Out: "uint64", Semantic: "kv.len"},
			{Name: "getSnapshot", In: "cluster.GetReq", Out: "[]byte", Semantic: "kv.getSnapshot"},
			{Name: "scanSnapshot", In: "cluster.ScanReq", Out: "[]string", Semantic: "kv.scanKeysSnapshot"},
		},
		Description: core.Description{Summary: "epoch-guarded shard KV operations"},
	})
	kv.Handle("put", func(ctx context.Context, req any) (any, error) {
		r, ok := req.(PutReq)
		if !ok {
			if p, okp := req.(*PutReq); okp {
				r = *p
			} else {
				return nil, &core.RequestError{Op: "put", Want: "cluster request", Got: core.TypeName(req)}
			}
		}
		if err := n.guardWrite(r.Epoch); err != nil {
			return nil, err
		}
		return true, n.withWriteGate(func() error { return n.DB().PutContext(ctx, r.Key, r.Val) })
	})
	kv.Handle("putBatch", func(ctx context.Context, req any) (any, error) {
		r, err := n.batchReq(req, "putBatch")
		if err != nil {
			return nil, err
		}
		if err := n.guardWrite(r.Epoch); err != nil {
			return nil, err
		}
		return true, n.withWriteGate(func() error { return n.DB().PutBatchContext(ctx, r.Keys, r.Vals) })
	})
	kv.Handle("import", func(ctx context.Context, req any) (any, error) {
		r, err := n.batchReq(req, "import")
		if err != nil {
			return nil, err
		}
		if err := n.guardWrite(r.Epoch); err != nil {
			return nil, err
		}
		return true, n.withWriteGate(func() error { return n.DB().ImportContext(ctx, r.Keys, r.Vals) })
	})
	kv.Handle("get", func(ctx context.Context, req any) (any, error) {
		r, err := n.getReq(req, "get")
		if err != nil {
			return nil, err
		}
		if err := n.guardWrite(r.Epoch); err != nil {
			return nil, err
		}
		return n.DB().GetContext(ctx, r.Key)
	})
	kv.Handle("delete", func(ctx context.Context, req any) (any, error) {
		r, err := n.getReq(req, "delete")
		if err != nil {
			return nil, err
		}
		if err := n.guardWrite(r.Epoch); err != nil {
			return nil, err
		}
		return true, n.withWriteGate(func() error { return n.DB().DeleteKeyContext(ctx, r.Key) })
	})
	kv.Handle("scanKeys", func(ctx context.Context, req any) (any, error) {
		r, err := n.scanReq(req, "scanKeys")
		if err != nil {
			return nil, err
		}
		if err := n.guardWrite(r.Epoch); err != nil {
			return nil, err
		}
		return n.DB().ScanKeysContext(ctx, r.From, r.N)
	})
	kv.Handle("len", func(ctx context.Context, req any) (any, error) {
		r, ok := req.(LenReq)
		if !ok {
			if p, okp := req.(*LenReq); okp {
				r = *p
			} else {
				return nil, &core.RequestError{Op: "len", Want: "cluster request", Got: core.TypeName(req)}
			}
		}
		if err := n.guardWrite(r.Epoch); err != nil {
			return nil, err
		}
		return n.DB().KVLen(), nil
	})
	kv.Handle("getSnapshot", func(ctx context.Context, req any) (any, error) {
		r, err := n.getReq(req, "getSnapshot")
		if err != nil {
			return nil, err
		}
		if err := n.checkEpoch(r.Epoch); err != nil {
			return nil, err
		}
		if reader := n.Reader(); reader != nil {
			return reader.GetSnapshot(ctx, r.Key)
		}
		if db := n.DB(); db != nil {
			return db.GetSnapshotContext(ctx, r.Key)
		}
		return nil, fmt.Errorf("%w: node %s holds no state", ErrNotLeader, n.cfg.ID)
	})
	kv.Handle("scanSnapshot", func(ctx context.Context, req any) (any, error) {
		r, err := n.scanReq(req, "scanSnapshot")
		if err != nil {
			return nil, err
		}
		if err := n.checkEpoch(r.Epoch); err != nil {
			return nil, err
		}
		if reader := n.Reader(); reader != nil {
			return reader.ScanKeysSnapshot(ctx, r.From, r.N)
		}
		if db := n.DB(); db != nil {
			return db.ScanKeysSnapshotContext(ctx, r.From, r.N)
		}
		return nil, fmt.Errorf("%w: node %s holds no state", ErrNotLeader, n.cfg.ID)
	})

	repl := core.NewService(ReplServiceName, &core.Contract{
		Interface: IfaceRepl,
		Operations: []core.OpSpec{
			{Name: "apply", In: "cluster.ApplyReq", Out: "cluster.ApplyReply", Semantic: "repl.apply"},
			{Name: "seed", In: "cluster.SeedReq", Out: "bool", Semantic: "repl.seed"},
		},
		Description: core.Description{Summary: "WAL shipping apply and full-state bootstrap"},
	})
	repl.Handle("apply", func(ctx context.Context, req any) (any, error) {
		r, ok := req.(*ApplyReq)
		if !ok {
			if v, okv := req.(ApplyReq); okv {
				r = &v
			} else {
				return nil, &core.RequestError{Op: "apply", Want: "cluster request", Got: core.TypeName(req)}
			}
		}
		return n.handleApply(r)
	})
	repl.Handle("seed", func(ctx context.Context, req any) (any, error) {
		r, ok := req.(*SeedReq)
		if !ok {
			if v, okv := req.(SeedReq); okv {
				r = &v
			} else {
				return nil, &core.RequestError{Op: "seed", Want: "cluster request", Got: core.TypeName(req)}
			}
		}
		return true, n.handleSeed(r)
	})

	for _, svc := range []*core.BaseService{kv, repl} {
		//lint:ignore ctxflow service start runs no hooks; there is no request context at construction time
		if err := svc.Start(context.Background()); err != nil {
			panic(fmt.Sprintf("cluster: starting %s: %v", svc.Name(), err))
		}
		if err := n.registry.RegisterService(svc, map[string]string{"node": string(n.cfg.ID)}); err != nil {
			panic(fmt.Sprintf("cluster: registering %s: %v", svc.Name(), err))
		}
	}
}

func (n *Node) batchReq(req any, op string) (BatchReq, error) {
	switch r := req.(type) {
	case BatchReq:
		return r, nil
	case *BatchReq:
		return *r, nil
	}
	return BatchReq{}, &core.RequestError{Op: op, Want: "cluster request", Got: core.TypeName(req)}
}

func (n *Node) getReq(req any, op string) (GetReq, error) {
	switch r := req.(type) {
	case GetReq:
		return r, nil
	case *GetReq:
		return *r, nil
	}
	return GetReq{}, &core.RequestError{Op: op, Want: "cluster request", Got: core.TypeName(req)}
}

func (n *Node) scanReq(req any, op string) (ScanReq, error) {
	switch r := req.(type) {
	case ScanReq:
		return r, nil
	case *ScanReq:
		return *r, nil
	}
	return ScanReq{}, &core.RequestError{Op: op, Want: "cluster request", Got: core.TypeName(req)}
}

func (n *Node) checkEpoch(e uint64) error {
	if cur := n.epoch.Load(); e != cur {
		return fmt.Errorf("%w (node at %d, request planned at %d)", ErrEpochChanged, cur, e)
	}
	return nil
}

// withWriteGate runs one client mutation under the shared side of the
// bootstrap write gate (see Node.wmu).
func (n *Node) withWriteGate(fn func() error) error {
	n.wmu.RLock()
	defer n.wmu.RUnlock()
	return fn()
}

// guardWrite gates leader-only operations: right epoch AND leader role.
func (n *Node) guardWrite(e uint64) error {
	if err := n.checkEpoch(e); err != nil {
		return err
	}
	if !n.IsLeader() {
		return fmt.Errorf("%w: %s", ErrNotLeader, n.cfg.ID)
	}
	return nil
}

// handleApply appends shipped records to the follower's WAL copy,
// syncs it, and applies the batch to the replica reader at the shipped
// frontier. Redelivered records are deduplicated by LSN in the WAL
// copy; the reader applies EVERY record and relies on the ARIES
// pageLSN guard for idempotence — that also converges records logged
// concurrently with a bootstrap flush, whose effects may or may not be
// in the seeded image. A gap answers NeedSnapshot.
func (n *Node) handleApply(req *ApplyReq) (ApplyReply, error) {
	n.fmu.Lock()
	defer n.fmu.Unlock()
	if n.fwal == nil || n.reader == nil {
		return ApplyReply{NeedSnapshot: true}, nil
	}
	for _, rec := range req.Recs {
		if _, err := n.fwal.Append(rec); err != nil {
			if errors.Is(err, replicate.ErrSnapshotNeeded) {
				return ApplyReply{NeedSnapshot: true}, nil
			}
			return ApplyReply{}, err
		}
	}
	// A WAL copy ending below the leader's shipped end means an
	// earlier delivery was lost: do NOT advance the frontier past
	// records this follower never received — re-bootstrap instead.
	// This is what makes record-free frontier shipments (heartbeats)
	// gap-safe.
	if n.fwal.Next() < req.UpTo {
		return ApplyReply{NeedSnapshot: true}, nil
	}
	// WAL copy first, then page effects — the replica obeys the same
	// write-ahead rule as the leader.
	if err := n.fwal.Sync(); err != nil {
		return ApplyReply{}, err
	}
	if err := n.reader.ApplyBatch(req.Recs, req.Frontier); err != nil {
		return ApplyReply{}, err
	}
	return ApplyReply{Next: n.fwal.Next()}, nil
}

// handleSeed installs a full-state bootstrap: fresh WAL copy, fresh
// device seeded with the leader's image, fresh replica reader at the
// shipped frontier. Any previous follower state is discarded (the
// bootstrap supersedes it).
func (n *Node) handleSeed(req *SeedReq) error {
	if req.Boot == nil {
		return errors.New("cluster: seed without bootstrap")
	}
	dir := wal.NewMemSegmentDir()
	fwal, err := replicate.OpenFollowerWAL(dir, req.Boot)
	if err != nil {
		return err
	}
	dev := storage.NewFaultDevice(storage.NewMemDevice())
	if err := req.Boot.SeedDevice(dev); err != nil {
		return err
	}
	reader, err := sbdms.OpenReplicaReader(dev, n.cfg.Frames)
	if err != nil {
		return err
	}
	if err := reader.ApplyBatch(nil, req.Frontier); err != nil {
		return err
	}
	n.fmu.Lock()
	old := n.reader
	n.fwal, n.fdev, n.reader = fwal, dev, reader
	n.fmu.Unlock()
	n.bootstraps.Add(1)
	if old != nil {
		_ = old.Close()
	}
	return nil
}

// Bootstraps counts how many full-state seeds this node has installed
// (each one is a traversal of the ErrSnapshotNeeded path).
func (n *Node) Bootstraps() uint64 { return n.bootstraps.Load() }

// AckFallbacks counts async commits that timed out waiting for a
// follower ack and fell back to a local fsync (degraded durability:
// on the leader only, not on another node).
func (n *Node) AckFallbacks() uint64 { return n.ackFallbacks.Load() }

// --- ship queue and acks ------------------------------------------------

// shipQueue is the hand-off between the WAL append observer (producer,
// under the log mutex) and the ship goroutine (consumer).
type shipQueue struct {
	mu       sync.Mutex
	recs     []*wal.Record
	low      wal.LSN // everything below is drained AND shipped
	appended wal.LSN // End of the newest record the observer pushed
	stopped  bool

	sig    chan struct{} // capacity 1: "records arrived"
	stopCh chan struct{} // closed on stop
}

func newShipQueue() *shipQueue {
	return &shipQueue{sig: make(chan struct{}, 1), stopCh: make(chan struct{})}
}

func (q *shipQueue) push(rec *wal.Record) {
	q.mu.Lock()
	q.recs = append(q.recs, rec)
	if rec.End > q.appended {
		q.appended = rec.End
	}
	q.mu.Unlock()
	select {
	case q.sig <- struct{}{}:
	default:
	}
}

func (q *shipQueue) drain() []*wal.Record {
	q.mu.Lock()
	defer q.mu.Unlock()
	recs := q.recs
	q.recs = nil
	return recs
}

func (q *shipQueue) shipped(end wal.LSN) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if end > q.low {
		q.low = end
	}
}

// shippedEnd is the log end through the last delivered batch.
func (q *shipQueue) shippedEnd() wal.LSN {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.low
}

// appendedEnd is the log end through the newest observed append.
// appendedEnd == shippedEnd means every record the engine ever logged
// has been handed to the followers — the soundness condition for
// record-free frontier shipments.
func (q *shipQueue) appendedEnd() wal.LSN {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.appended
}

// lowWater reports the minimum LSN the shipper still needs: the oldest
// unshipped record, or the shipped watermark when the queue is drained.
// Called as the log-retention hook (under the log mutex), so it reads
// only queue state.
func (q *shipQueue) lowWater() wal.LSN {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.recs) > 0 {
		return q.recs[0].LSN
	}
	return q.low
}

func (q *shipQueue) stop() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.stopped {
		q.stopped = true
		close(q.stopCh)
	}
}

// acker tracks per-follower acknowledged WAL positions and wakes
// async committers when the high-water mark advances. The channel-swap
// pattern gives a timed wait sync.Cond cannot.
type acker struct {
	mu     sync.Mutex
	byNode map[NodeID]wal.LSN
	best   wal.LSN
	gen    uint64 // bumped by interrupt; waiters re-check and bail
	ch     chan struct{}
}

func newAcker() *acker {
	return &acker{byNode: make(map[NodeID]wal.LSN), ch: make(chan struct{})}
}

func (a *acker) advance(id NodeID, lsn wal.LSN) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if lsn > a.byNode[id] {
		a.byNode[id] = lsn
	}
	if lsn > a.best {
		a.best = lsn
		close(a.ch)
		a.ch = make(chan struct{})
	}
}

// interrupt wakes every waiter and makes it give up (fall back to a
// local fsync). Called before a bootstrap takes the exclusive write
// gate: a committer waiting for an ack holds the shared gate, the ack
// needs the ship loop, and the ship loop is about to block on the gate
// — the interrupt breaks that cycle.
func (a *acker) interrupt() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.gen++
	close(a.ch)
	a.ch = make(chan struct{})
}

// wait blocks until some follower holds everything below upTo, or the
// timeout lapses, or an interrupt arrives (false).
func (a *acker) wait(upTo wal.LSN, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	a.mu.Lock()
	gen := a.gen
	a.mu.Unlock()
	for {
		a.mu.Lock()
		if a.best >= upTo {
			a.mu.Unlock()
			return true
		}
		if a.gen != gen {
			a.mu.Unlock()
			return false
		}
		ch := a.ch
		a.mu.Unlock()
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return false
		}
		t := time.NewTimer(remaining)
		select {
		case <-ch:
			t.Stop()
		case <-t.C:
			return false
		}
	}
}
