package core

import (
	"encoding/json"
	"fmt"
	"sort"
)

// OpSpec describes one operation of a service interface: its name, the
// contract names of its input and output payloads, and an optional
// semantic tag. Semantic tags are the hook used by automatic adaptor
// generation (Section 3.6 of the paper): two operations with the same
// semantic tag are considered functionally equivalent even if their
// names and payload types differ.
type OpSpec struct {
	Name     string `json:"name"`
	In       string `json:"in"`
	Out      string `json:"out"`
	Semantic string `json:"semantic,omitempty"`
	Doc      string `json:"doc,omitempty"`
}

// Description is the descriptive part of a service contract: a human
// summary plus machine-readable data-type and operation semantics used
// during adaptor generation and service discovery.
type Description struct {
	Summary   string            `json:"summary,omitempty"`
	DataTypes map[string]string `json:"dataTypes,omitempty"`
}

// Assertion is a single policy precondition over architecture or
// component properties: Property Op Value, e.g. {"buffer.frames", ">=", "8"}.
type Assertion struct {
	Property string `json:"property"`
	Op       string `json:"op"` // "==", "!=", ">=", "<=", ">", "<"
	Value    string `json:"value"`
}

// Policy captures the conditions of interaction of a service: interfaces
// it depends on, assertions that must hold before it may be invoked, a
// concurrency bound, and whether the service may be disabled in
// small-footprint profiles (Section 4).
type Policy struct {
	Dependencies  []string    `json:"dependencies,omitempty"`
	Preconditions []Assertion `json:"preconditions,omitempty"`
	MaxConcurrent int         `json:"maxConcurrent,omitempty"` // 0 = unlimited
	Disableable   bool        `json:"disableable,omitempty"`
}

// Quality is the functional-quality description of a service. The
// coordinator and selectors use it to rank otherwise equivalent
// providers (flexibility by selection, Section 3.5).
type Quality struct {
	// LatencyClass is a coarse cost class: "memory" < "disk" < "network".
	LatencyClass string `json:"latencyClass,omitempty"`
	// Availability is the advertised availability in [0,1].
	Availability float64 `json:"availability,omitempty"`
	// ThroughputOps is the advertised sustainable operations/second.
	ThroughputOps float64 `json:"throughputOps,omitempty"`
	// CostFactor is a relative cost weight; lower is preferred.
	CostFactor float64 `json:"costFactor,omitempty"`
}

// LatencyClassRank orders latency classes from cheapest to most
// expensive. Unknown classes rank last.
func LatencyClassRank(class string) int {
	switch class {
	case "memory":
		return 0
	case "disk":
		return 1
	case "network":
		return 2
	default:
		return 3
	}
}

// Contract is the service contract of Section 3.2: interface name,
// operations, description, policy and quality. Contracts are the only
// knowledge callers have about a service; implementations stay hidden.
type Contract struct {
	// Interface is the logical interface name, e.g. "sbdms.storage.Disk".
	// Multiple services may implement the same interface.
	Interface string `json:"interface"`
	// Version is a free-form version tag.
	Version     string      `json:"version,omitempty"`
	Operations  []OpSpec    `json:"operations"`
	Description Description `json:"description,omitempty"`
	Policy      Policy      `json:"policy,omitempty"`
	Quality     Quality     `json:"quality,omitempty"`
}

// Clone returns a deep copy of the contract.
func (c *Contract) Clone() *Contract {
	if c == nil {
		return nil
	}
	cp := *c
	cp.Operations = append([]OpSpec(nil), c.Operations...)
	cp.Policy.Dependencies = append([]string(nil), c.Policy.Dependencies...)
	cp.Policy.Preconditions = append([]Assertion(nil), c.Policy.Preconditions...)
	if c.Description.DataTypes != nil {
		cp.Description.DataTypes = make(map[string]string, len(c.Description.DataTypes))
		for k, v := range c.Description.DataTypes {
			cp.Description.DataTypes[k] = v
		}
	}
	return &cp
}

// Op returns the spec of the named operation, or false if absent.
func (c *Contract) Op(name string) (OpSpec, bool) {
	for _, op := range c.Operations {
		if op.Name == name {
			return op, true
		}
	}
	return OpSpec{}, false
}

// OpBySemantic returns the first operation carrying the given semantic
// tag, or false if none does.
func (c *Contract) OpBySemantic(tag string) (OpSpec, bool) {
	if tag == "" {
		return OpSpec{}, false
	}
	for _, op := range c.Operations {
		if op.Semantic == tag {
			return op, true
		}
	}
	return OpSpec{}, false
}

// Satisfies reports whether a service with contract c can serve callers
// that require contract req through the same interface: every required
// operation must exist with identical name and payload types. This is
// the check behind flexibility by selection — substitution without
// adaptation.
func (c *Contract) Satisfies(req *Contract) bool {
	if c == nil || req == nil {
		return false
	}
	for _, want := range req.Operations {
		got, ok := c.Op(want.Name)
		if !ok || got.In != want.In || got.Out != want.Out {
			return false
		}
	}
	return true
}

// Document renders the contract as its open-format service description
// document (JSON; the stdlib stand-in for WSDL/WS-Policy, see DESIGN.md).
func (c *Contract) Document() ([]byte, error) {
	cp := c.Clone()
	sort.Slice(cp.Operations, func(i, j int) bool { return cp.Operations[i].Name < cp.Operations[j].Name })
	return json.MarshalIndent(cp, "", "  ")
}

// ParseContract parses a service description document produced by
// Document.
func ParseContract(doc []byte) (*Contract, error) {
	var c Contract
	if err := json.Unmarshal(doc, &c); err != nil {
		return nil, fmt.Errorf("core: parsing contract document: %w", err)
	}
	if c.Interface == "" {
		return nil, fmt.Errorf("core: contract document missing interface name")
	}
	return &c, nil
}

// Validate checks structural well-formedness of a contract.
func (c *Contract) Validate() error {
	if c.Interface == "" {
		return fmt.Errorf("core: contract has empty interface name")
	}
	seen := make(map[string]bool, len(c.Operations))
	for _, op := range c.Operations {
		if op.Name == "" {
			return fmt.Errorf("core: contract %s has an unnamed operation", c.Interface)
		}
		if seen[op.Name] {
			return fmt.Errorf("core: contract %s declares operation %q twice", c.Interface, op.Name)
		}
		seen[op.Name] = true
	}
	for _, a := range c.Policy.Preconditions {
		switch a.Op {
		case "==", "!=", ">=", "<=", ">", "<":
		default:
			return fmt.Errorf("core: contract %s has precondition with unknown comparator %q", c.Interface, a.Op)
		}
	}
	return nil
}
