// Package workload generates deterministic synthetic workloads for the
// experiment harness: YCSB-style key-value mixes with uniform or
// zipfian key popularity, table rows for SQL/scan/join experiments, and
// stream tuples. Deterministic seeding makes every experiment in
// EXPERIMENTS.md regenerable.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/access"
)

// OpKind is the type of one KV operation.
type OpKind int

// Operation kinds.
const (
	OpRead OpKind = iota
	OpWrite
	OpScan
)

// Op is one generated key-value operation.
type Op struct {
	Kind OpKind
	Key  string
	Val  []byte
	// ScanLen is the number of keys for OpScan.
	ScanLen int
}

// Mix describes a YCSB-like operation mix (fractions must sum to 1).
type Mix struct {
	Reads  float64
	Writes float64
	Scans  float64
}

// Standard mixes from the YCSB family.
var (
	// MixA is update-heavy: 50/50 read/write.
	MixA = Mix{Reads: 0.5, Writes: 0.5}
	// MixB is read-mostly: 95/5.
	MixB = Mix{Reads: 0.95, Writes: 0.05}
	// MixC is read-only.
	MixC = Mix{Reads: 1.0}
	// MixE is scan-heavy: 95% short scans, 5% writes.
	MixE = Mix{Scans: 0.95, Writes: 0.05}
)

// Zipf wraps a zipfian key-popularity distribution over n keys.
type Zipf struct {
	z *rand.Zipf
	n int
}

// NewZipf creates a zipfian distribution with exponent s (>1) over n
// keys.
func NewZipf(rng *rand.Rand, s float64, n int) *Zipf {
	if s <= 1 {
		s = 1.1
	}
	return &Zipf{z: rand.NewZipf(rng, s, 1, uint64(n-1)), n: n}
}

// Next draws a key ordinal.
func (z *Zipf) Next() int { return int(z.z.Uint64()) }

// KVGen generates key-value operations.
type KVGen struct {
	rng     *rand.Rand
	mix     Mix
	keys    int
	valSize int
	zipf    *Zipf // nil = uniform
}

// KVConfig configures a key-value workload.
type KVConfig struct {
	Seed    int64
	Keys    int     // key space size
	ValSize int     // value bytes
	Mix     Mix     // operation mix
	Zipfian bool    // zipfian vs uniform popularity
	Theta   float64 // zipf exponent (default 1.2)
}

// NewKV creates a deterministic KV workload generator.
func NewKV(cfg KVConfig) *KVGen {
	if cfg.Keys <= 0 {
		cfg.Keys = 1000
	}
	if cfg.ValSize <= 0 {
		cfg.ValSize = 100
	}
	if cfg.Mix == (Mix{}) {
		cfg.Mix = MixB
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &KVGen{rng: rng, mix: cfg.Mix, keys: cfg.Keys, valSize: cfg.ValSize}
	if cfg.Zipfian {
		theta := cfg.Theta
		if theta == 0 {
			theta = 1.2
		}
		g.zipf = NewZipf(rng, theta, cfg.Keys)
	}
	return g
}

// Key renders the canonical key for ordinal i.
func Key(i int) string { return fmt.Sprintf("user%08d", i) }

func (g *KVGen) nextKey() string {
	if g.zipf != nil {
		return Key(g.zipf.Next())
	}
	return Key(g.rng.Intn(g.keys))
}

// Value produces a deterministic value for a key ordinal.
func (g *KVGen) Value() []byte {
	v := make([]byte, g.valSize)
	for i := range v {
		v[i] = byte('a' + g.rng.Intn(26))
	}
	return v
}

// Next draws the next operation.
func (g *KVGen) Next() Op {
	r := g.rng.Float64()
	switch {
	case r < g.mix.Reads:
		return Op{Kind: OpRead, Key: g.nextKey()}
	case r < g.mix.Reads+g.mix.Writes:
		return Op{Kind: OpWrite, Key: g.nextKey(), Val: g.Value()}
	default:
		return Op{Kind: OpScan, Key: g.nextKey(), ScanLen: 1 + g.rng.Intn(100)}
	}
}

// Ops draws n operations.
func (g *KVGen) Ops(n int) []Op {
	out := make([]Op, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// Keys returns the number of distinct keys in the key space.
func (g *KVGen) Keys() int { return g.keys }

// UserRows generates n rows for a users(id INT, name TEXT, age INT)
// table, deterministic in seed.
func UserRows(seed int64, n int) []access.Row {
	rng := rand.New(rand.NewSource(seed))
	out := make([]access.Row, n)
	for i := range out {
		out[i] = access.Row{
			access.NewInt(int64(i)),
			access.NewString(fmt.Sprintf("name-%06d", rng.Intn(n*10))),
			access.NewInt(int64(18 + rng.Intn(60))),
		}
	}
	return out
}

// OrderRows generates n rows for an orders(oid INT, user_id INT, total
// FLOAT) table referencing nUsers users; deterministic in seed.
func OrderRows(seed int64, n, nUsers int) []access.Row {
	rng := rand.New(rand.NewSource(seed))
	out := make([]access.Row, n)
	for i := range out {
		out[i] = access.Row{
			access.NewInt(int64(1000000 + i)),
			access.NewInt(int64(rng.Intn(nUsers))),
			access.NewFloat(math.Round(rng.Float64()*10000) / 100),
		}
	}
	return out
}

// SensorRows generates n (sensor_id INT, reading FLOAT) stream rows.
func SensorRows(seed int64, n, sensors int) []access.Row {
	rng := rand.New(rand.NewSource(seed))
	out := make([]access.Row, n)
	for i := range out {
		out[i] = access.Row{
			access.NewInt(int64(rng.Intn(sensors))),
			access.NewFloat(20 + rng.NormFloat64()*5),
		}
	}
	return out
}
