// Fullfledged: the "DBMS bundled with extensions" scenario of Section 4
// — a relational core plus the Extension Services of Figure 2
// (streaming, XML documents, stored procedures, replication), a custom
// monitoring service, and a live adaptation when the primary store
// fails.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	sbdms "repro"
	"repro/internal/access"
	"repro/internal/docstore"
	"repro/internal/proc"
	"repro/internal/replicate"
	"repro/internal/storage"
	"repro/internal/stream"
)

func main() {
	ctx := context.Background()
	db, err := sbdms.Open(sbdms.Options{Granularity: sbdms.Layered, BufferFrames: 256})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close(ctx)

	// --- Relational core -------------------------------------------------
	for _, q := range []string{
		"CREATE TABLE sensors (id INT NOT NULL, location TEXT)",
		"INSERT INTO sensors VALUES (0, 'lab'), (1, 'roof'), (2, 'cellar')",
	} {
		if _, err := db.Exec(ctx, q); err != nil {
			log.Fatal(err)
		}
	}

	// --- Streaming extension ---------------------------------------------
	temps := stream.New("temperatures")
	cq := &stream.ContinuousQuery{
		Name:      "avg-temp-window",
		Window:    stream.NewCountWindow(16),
		Every:     8,
		Aggregate: stream.AvgAgg(1),
	}
	stop := cq.Run(temps)
	for i := 0; i < 64; i++ {
		err := temps.Publish(stream.Tuple{Row: access.Row{
			access.NewInt(int64(i % 3)),
			access.NewFloat(20 + float64(i%10)),
		}})
		if err != nil {
			log.Fatal(err)
		}
	}
	time.Sleep(20 * time.Millisecond)
	stop()
	results := cq.Results()
	fmt.Printf("streaming: %d windows aggregated; last avg=%.2f over %d tuples\n",
		len(results), results[len(results)-1][1].Float, results[len(results)-1][0].Int)

	// --- XML document extension -------------------------------------------
	docs, err := docstore.Open(db.FileManager(), db.Pool())
	if err != nil {
		log.Fatal(err)
	}
	err = docs.PutXML("deployment", `
		<deployment site="zurich">
		  <sensor id="0" kind="temp"/>
		  <sensor id="1" kind="temp"/>
		  <sensor id="2" kind="humidity"/>
		</deployment>`)
	if err != nil {
		log.Fatal(err)
	}
	nodes, err := docs.Query("deployment", "/deployment/sensor[@kind='temp']")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("docstore: %d temperature sensors registered in XML deployment doc\n", len(nodes))

	// --- Stored procedures -------------------------------------------------
	procs := proc.NewRegistry()
	err = procs.Register("celsius_to_fahrenheit", "converts a reading", func(ctx context.Context, args access.Row) ([]access.Row, error) {
		c, _ := args[0].AsFloat()
		return []access.Row{{access.NewFloat(c*9/5 + 32)}}, nil
	})
	if err != nil {
		log.Fatal(err)
	}
	out, err := procs.Call(ctx, "celsius_to_fahrenheit", access.Row{access.NewFloat(21.5)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("procedure: 21.5C = %.1fF\n", out[0][0].Float)

	// --- Replication extension ---------------------------------------------
	if db.Log() != nil {
		replicaDisk, err := storage.OpenDisk(storage.NewMemDevice())
		if err != nil {
			log.Fatal(err)
		}
		replica := replicate.NewReplica("replica-1", replicaDisk)
		shipper := replicate.NewShipper(db.Log())
		shipper.Attach(replica)
		if _, err := db.Exec(ctx, "INSERT INTO sensors VALUES (3, 'attic')"); err != nil {
			log.Fatal(err)
		}
		if err := db.Log().Flush(db.Log().NextLSN()); err != nil {
			log.Fatal(err)
		}
		n, err := shipper.Ship()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("replication: shipped %d log records, replica lag=%d bytes\n", n, shipper.Lag(replica))
	}

	// --- Live adaptation (Figure 7) ------------------------------------------
	res, err := sbdms.ScenarioAdaptation(ctx, db, 200)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adaptation: %s\n", res)
	fmt.Println("fullfledged instance exercised all extension services")
}
