// Golden package for the latchorder analyzer: no blocking
// LockManager.Acquire or Txn.Lock while a page latch is held;
// TryAcquire is the only legal lock call under a latch.
package latchorder

import (
	"context"

	"repro/internal/access"
	"repro/internal/buffer"
	"repro/internal/index"
	"repro/internal/storage"
	"repro/internal/txn"
)

// blocksUnderLatch: a blocking lock wait between PinLatched and
// UnpinLatched can stall every reader of the page.
func blocksUnderLatch(ctx context.Context, pool *buffer.Manager, lm *txn.LockManager, id storage.PageID) error {
	f, err := pool.PinLatched(id, true)
	if err != nil {
		return err
	}
	_ = f.Data
	if err := lm.Acquire(ctx, 1, "r", txn.Shared); err != nil { // want `blocking LockManager\.Acquire while a page latch may be held`
		return err
	}
	return pool.UnpinLatched(id, true, true)
}

// txnLockUnderLatch: Txn.Lock parks on the same lock manager.
func txnLockUnderLatch(ctx context.Context, pool *buffer.Manager, tx *txn.Txn, id storage.PageID) error {
	if _, err := pool.PinLatched(id, false); err != nil {
		return err
	}
	lerr := tx.Lock(ctx, "k", txn.Exclusive) // want `blocking Txn\.Lock while a page latch may be held`
	if uerr := pool.UnpinLatched(id, false, false); uerr != nil {
		return uerr
	}
	return lerr
}

// tryUnderLatch: the conditional attempt is the legal form under a
// latch.
func tryUnderLatch(pool *buffer.Manager, lm *txn.LockManager, id storage.PageID) (bool, error) {
	if _, err := pool.PinLatched(id, false); err != nil {
		return false, err
	}
	got := lm.TryAcquire(1, "r", txn.Shared)
	return got, pool.UnpinLatched(id, false, false)
}

// releasesFirst: blocking is fine once the latch is gone.
func releasesFirst(ctx context.Context, pool *buffer.Manager, lm *txn.LockManager, id storage.PageID) error {
	if _, err := pool.PinLatched(id, false); err != nil {
		return err
	}
	if err := pool.UnpinLatched(id, false, false); err != nil {
		return err
	}
	return lm.Acquire(ctx, 1, "r", txn.Shared)
}

// scanCallback: RangeLatched runs its callback under the leaf latch,
// so a blocking Acquire inside it is flagged wherever it hides.
func scanCallback(ctx context.Context, t *index.BTree, lm *txn.LockManager) error {
	return t.RangeLatched(nil, func(key []byte, rid access.RID, eof bool) error {
		return lm.Acquire(ctx, 1, string(key), txn.Shared) // want `blocking LockManager\.Acquire inside a callback that runs under a leaf latch`
	})
}

// goodScanCallback: the conditional form with an off-latch retry
// contract produces nothing.
func goodScanCallback(t *index.BTree, lm *txn.LockManager) error {
	return t.RangeLatched(nil, func(key []byte, rid access.RID, eof bool) error {
		if !lm.TryAcquire(1, string(key), txn.Shared) {
			return context.Canceled // caller drops latches and retries
		}
		return nil
	})
}

// gapHookConstructor: a literal returned as an index.GapCheck runs
// under the leaf latch at its eventual call site.
func gapHookConstructor(ctx context.Context, lm *txn.LockManager) index.GapCheck {
	return func(key []byte, rid access.RID, eof bool) error {
		if lm.TryAcquire(1, "g", txn.Exclusive) {
			return nil
		}
		return lm.Acquire(ctx, 1, "g", txn.Exclusive) // want `blocking LockManager\.Acquire inside a callback that runs under a leaf latch`
	}
}

// gapHookAssigned: same through an assignment to a GapCheck variable.
func gapHookAssigned(ctx context.Context, tx *txn.Txn) index.GapCheck {
	var g index.GapCheck
	g = func(key []byte, rid access.RID, eof bool) error {
		return tx.Lock(ctx, "g", txn.Shared) // want `blocking Txn\.Lock inside a callback that runs under a leaf latch`
	}
	return g
}

// suppressedBlock: a justified suppression is honoured.
func suppressedBlock(ctx context.Context, pool *buffer.Manager, lm *txn.LockManager, id storage.PageID) error {
	if _, err := pool.PinLatched(id, false); err != nil {
		return err
	}
	//lint:ignore latchorder single-frame pool in this test harness: no other reader can exist to stall
	err := lm.Acquire(ctx, 1, "r", txn.Shared)
	if uerr := pool.UnpinLatched(id, false, false); uerr != nil {
		return uerr
	}
	return err
}
