package txn

import (
	"repro/internal/storage"
	"repro/internal/wal"
)

// PageLogger exposes the manager as a storage.PageLogger, so the file
// manager can WAL-log directory, page-allocation and free-list
// mutations under system transactions. Returns nil when no WAL is
// attached.
func (m *Manager) PageLogger() storage.PageLogger {
	if m.log == nil {
		return nil
	}
	return sysLogger{m}
}

type sysLogger struct{ m *Manager }

// Begin implements storage.PageLogger.
func (s sysLogger) Begin() (storage.PageTxn, error) {
	t, err := s.m.Begin()
	if err != nil {
		return nil, err
	}
	return &pageTxn{m: s.m, t: t}, nil
}

// Flush implements storage.PageLogger: it forces everything appended so
// far (the file manager calls it before returning freed pages to the
// allocator). No group window: the caller holds the file-manager lock,
// and commit-batching latency must not stall page traffic.
func (s sysLogger) Flush() error {
	return s.m.log.FlushNoWindow(s.m.log.NextLSN())
}

// pageTxn adapts a Txn to storage.PageTxn.
type pageTxn struct {
	m *Manager
	t *Txn
}

// Update implements storage.PageTxn: the page transition is appended
// through the WAL's fence-checked path, which picks a minimal diff or —
// for the page's first mutation after a checkpoint — a full page image.
func (p *pageTxn) Update(id storage.PageID, before, after []byte) (uint64, bool, error) {
	return p.update(id, before, after, nil)
}

// UpdateRedoOnly implements storage.PageTxn: the record carries the
// redo-only marker, so neither rollback nor crash recovery of an
// in-flight system transaction ever restores its before image (which
// could wipe records concurrent transactions interleaved on the page
// after the latch was released).
func (p *pageTxn) UpdateRedoOnly(id storage.PageID, before, after []byte) (uint64, bool, error) {
	return p.update(id, before, after, wal.UndoNone)
}

func (p *pageTxn) update(id storage.PageID, before, after, undo []byte) (uint64, bool, error) {
	rec, err := p.m.log.AppendPageUpdate(p.t.ID(), p.t.LastLSN(), id, before, after, undo)
	if err != nil {
		return 0, false, err
	}
	if rec == nil {
		return 0, false, nil
	}
	p.t.Record(rec)
	return uint64(rec.LSN), true, nil
}

// Commit implements storage.PageTxn (lazy: no log force).
func (p *pageTxn) Commit() error { return p.m.CommitLazy(p.t) }

// Abort implements storage.PageTxn.
func (p *pageTxn) Abort() error { return p.m.Abort(p.t) }
