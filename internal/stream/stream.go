// Package stream implements the streaming Extension Service named in
// Figure 2 of the paper ("streaming, XML, procedures, queries,
// replication ..."): typed tuple streams with publish/subscribe
// fan-out, count- and time-based sliding windows, and continuous
// queries (filter/map/aggregate pipelines over windows).
package stream

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/access"
)

// Stream errors.
var (
	// ErrClosed is returned when publishing to a closed stream.
	ErrClosed = errors.New("stream: closed")
)

// Tuple is one timestamped element of a stream.
type Tuple struct {
	Time time.Time
	Row  access.Row
}

// Stream is a named multi-subscriber tuple stream. Publishing never
// blocks: slow subscribers drop their oldest buffered tuples (streams
// favour freshness over completeness).
type Stream struct {
	name string

	mu     sync.Mutex
	subs   map[int]chan Tuple
	nextID int
	closed bool
	pubCnt uint64
	drops  uint64
}

// New creates a stream.
func New(name string) *Stream {
	return &Stream{name: name, subs: make(map[int]chan Tuple)}
}

// Name returns the stream name.
func (s *Stream) Name() string { return s.name }

// Publish appends a tuple (stamped now when Time is zero) and fans it
// out to all subscribers.
func (s *Stream) Publish(t Tuple) error {
	if t.Time.IsZero() {
		t.Time = time.Now()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("%w: %s", ErrClosed, s.name)
	}
	s.pubCnt++
	for _, ch := range s.subs {
		select {
		case ch <- t:
		default:
			select {
			case <-ch:
				s.drops++
			default:
			}
			select {
			case ch <- t:
			default:
				s.drops++
			}
		}
	}
	return nil
}

// Subscribe registers a subscriber with the given buffer size and
// returns its channel plus a cancel function.
func (s *Stream) Subscribe(buf int) (<-chan Tuple, func()) {
	if buf <= 0 {
		buf = 128
	}
	ch := make(chan Tuple, buf)
	s.mu.Lock()
	id := s.nextID
	s.nextID++
	s.subs[id] = ch
	s.mu.Unlock()
	return ch, func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if c, ok := s.subs[id]; ok {
			delete(s.subs, id)
			close(c)
		}
	}
}

// Close terminates the stream and all subscriptions.
func (s *Stream) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for id, ch := range s.subs {
		delete(s.subs, id)
		close(ch)
	}
}

// Stats returns (published, dropped) counts.
func (s *Stream) Stats() (uint64, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pubCnt, s.drops
}

// Window buffers tuples with a retention policy: by count (last N) or
// by duration (tuples younger than D). Zero values disable the
// respective bound.
type Window struct {
	mu      sync.Mutex
	maxN    int
	maxAge  time.Duration
	tuples  []Tuple
}

// NewCountWindow retains the last n tuples.
func NewCountWindow(n int) *Window { return &Window{maxN: n} }

// NewTimeWindow retains tuples younger than d.
func NewTimeWindow(d time.Duration) *Window { return &Window{maxAge: d} }

// Add inserts a tuple and evicts per policy.
func (w *Window) Add(t Tuple) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.tuples = append(w.tuples, t)
	w.evictLocked(time.Now())
}

func (w *Window) evictLocked(now time.Time) {
	if w.maxN > 0 && len(w.tuples) > w.maxN {
		w.tuples = w.tuples[len(w.tuples)-w.maxN:]
	}
	if w.maxAge > 0 {
		cut := 0
		for cut < len(w.tuples) && now.Sub(w.tuples[cut].Time) > w.maxAge {
			cut++
		}
		w.tuples = w.tuples[cut:]
	}
}

// Snapshot returns the current window contents (time-window eviction is
// applied as of now).
func (w *Window) Snapshot() []Tuple {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.evictLocked(time.Now())
	return append([]Tuple(nil), w.tuples...)
}

// Len returns the current tuple count.
func (w *Window) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.evictLocked(time.Now())
	return len(w.tuples)
}

// ContinuousQuery consumes a stream, maintains a window, and emits an
// aggregate row whenever a batch of Every tuples has arrived. It is
// the streaming analogue of a standing SELECT over a sliding window.
type ContinuousQuery struct {
	Name string
	// Filter drops tuples before they enter the window (nil = accept).
	Filter func(Tuple) bool
	// Window retains the working set.
	Window *Window
	// Every triggers evaluation after this many accepted tuples.
	Every int
	// Aggregate folds the window snapshot into one output row.
	Aggregate func([]Tuple) access.Row

	mu      sync.Mutex
	outputs []access.Row
	seen    int
	stop    func()
	done    chan struct{}
}

// Run subscribes the query to a stream until cancel is called.
func (q *ContinuousQuery) Run(s *Stream) (cancel func()) {
	ch, unsub := s.Subscribe(256)
	q.done = make(chan struct{})
	go func() {
		defer close(q.done)
		for t := range ch {
			if q.Filter != nil && !q.Filter(t) {
				continue
			}
			q.Window.Add(t)
			q.mu.Lock()
			q.seen++
			fire := q.Every > 0 && q.seen%q.Every == 0
			q.mu.Unlock()
			if fire {
				row := q.Aggregate(q.Window.Snapshot())
				q.mu.Lock()
				q.outputs = append(q.outputs, row)
				q.mu.Unlock()
			}
		}
	}()
	q.stop = unsub
	return func() {
		unsub()
		<-q.done
	}
}

// Results returns the emitted rows so far.
func (q *ContinuousQuery) Results() []access.Row {
	q.mu.Lock()
	defer q.mu.Unlock()
	return append([]access.Row(nil), q.outputs...)
}

// CountAgg returns an aggregate emitting (count) rows.
func CountAgg() func([]Tuple) access.Row {
	return func(ts []Tuple) access.Row {
		return access.Row{access.NewInt(int64(len(ts)))}
	}
}

// AvgAgg returns an aggregate emitting (count, avg of column col).
func AvgAgg(col int) func([]Tuple) access.Row {
	return func(ts []Tuple) access.Row {
		var sum float64
		n := 0
		for _, t := range ts {
			if col < len(t.Row) {
				if f, ok := t.Row[col].AsFloat(); ok {
					sum += f
					n++
				}
			}
		}
		if n == 0 {
			return access.Row{access.NewInt(0), access.Null()}
		}
		return access.Row{access.NewInt(int64(n)), access.NewFloat(sum / float64(n))}
	}
}
