package netbind

// Adverse-network behavior: the server must survive clients that write
// partial frames, vanish mid-message, or send oversized payloads — and
// Close must cancel in-flight handler contexts instead of waiting them
// out. These are the conditions the cluster's fault transport injects
// in-process; here they are driven over real TCP.

import (
	"bytes"
	"context"
	"encoding/gob"
	"net"
	"strings"
	"testing"
	"time"
)

// assertServing proves the server still accepts and answers a fresh,
// well-formed client after whatever abuse the test inflicted.
func assertServing(t *testing.T, srv *Server) {
	t.Helper()
	c := NewClient(srv.Addr())
	defer c.Close()
	out, err := c.Call(context.Background(), "svc", "echo", "alive")
	if err != nil || out != "svc:alive" {
		t.Fatalf("server unhealthy after fault: %v, %v", out, err)
	}
}

func TestServerSurvivesPartialWrite(t *testing.T) {
	_, srv := serve(t, newEchoService(t, "svc", "test.Echo"))

	// A few garbage bytes that do not form a gob frame, then silence,
	// then close.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte{0x07, 0xFF, 0x01}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	_ = conn.Close()

	assertServing(t, srv)
}

func TestServerSurvivesMidFrameDrop(t *testing.T) {
	_, srv := serve(t, newEchoService(t, "svc", "test.Echo"))

	// Encode a VALID request, then deliver only half of it and drop the
	// connection: the server is left holding an incomplete frame.
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(&request{Service: "svc", Op: "echo", Payload: payload{V: "half"}}); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frame[:len(frame)/2]); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	_ = conn.Close()

	assertServing(t, srv)
}

func TestServerRejectsOversizedMessage(t *testing.T) {
	reg, srv0 := serve(t, newEchoService(t, "svc", "test.Echo"))
	_ = srv0 // the default-limit server; the capped one is separate
	srv, err := Serve(reg, "", WithMaxMessageBytes(4096))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := NewClient(srv.Addr())
	defer c.Close()
	// Under the cap: served normally.
	if out, err := c.Call(context.Background(), "svc", "echo", "small"); err != nil || out != "svc:small" {
		t.Fatalf("small call = %v, %v", out, err)
	}
	// Over the cap: the server drops the connection mid-frame; the
	// client surfaces a receive error, not a hang.
	big := strings.Repeat("x", 1<<20)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.Call(ctx, "svc", "echo", big); err == nil {
		t.Fatal("oversized call succeeded; want connection failure")
	}
	// The server itself stays healthy for well-behaved clients.
	c2 := NewClient(srv.Addr())
	defer c2.Close()
	if out, err := c2.Call(context.Background(), "svc", "echo", "after"); err != nil || out != "svc:after" {
		t.Fatalf("post-rejection call = %v, %v", out, err)
	}
}

func TestServerCloseCancelsInFlight(t *testing.T) {
	reg, _ := serve(t, newEchoService(t, "svc", "test.Echo"))
	srv, err := Serve(reg, "")
	if err != nil {
		t.Fatal(err)
	}

	entered := make(chan struct{})
	canceled := make(chan struct{})
	blocker := newEchoService(t, "blocker", "test.Blocker")
	blocker.Handle("echo", func(ctx context.Context, req any) (any, error) {
		close(entered)
		select {
		case <-ctx.Done():
			close(canceled)
			return nil, ctx.Err()
		case <-time.After(30 * time.Second):
			return nil, nil
		}
	})
	if err := reg.RegisterService(blocker, nil); err != nil {
		t.Fatal(err)
	}

	c := NewClient(srv.Addr())
	defer c.Close()
	callDone := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), "blocker", "echo", "x")
		callDone <- err
	}()

	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("handler never entered")
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	select {
	case <-canceled:
	case <-time.After(5 * time.Second):
		t.Fatal("server close did not cancel the in-flight handler context")
	}
	select {
	case err := <-callDone:
		if err == nil {
			t.Fatal("in-flight call returned success after server close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight call never returned after server close")
	}
}
