// Package vacuum reclaims dead MVCC versions from a version-chained
// key-value heap.
//
// Writers never remove anything: an update links a new version in
// front of the old one and a delete links a tombstone, so chains grow
// until something prunes them. The vacuum is that something — a
// cooperative scavenger that walks the index, finds versions no
// current or future snapshot can ever resolve to, and frees their heap
// slots.
//
// # Safety argument
//
// The oracle's Horizon() is a timestamp at or below the read timestamp
// of every registered snapshot, and below the timestamp any FUTURE
// snapshot can receive (the visibility frontier only advances). A
// reader at readTS >= horizon resolves a chain to its newest version
// with begin <= readTS. Therefore, within one chain, the newest
// version at or below the horizon — the pivot — is the oldest version
// any reader can still resolve to; everything linked behind it is
// unreachable and reclaimable. Two refinements:
//
//   - If the pivot itself is a tombstone (and not the chain head), the
//     pivot is reclaimable too: a reader resolving to it concludes
//     "absent", and a reader that walks past a severed chain end
//     concludes exactly the same.
//   - If the chain HEAD is a committed tombstone at or below the
//     horizon, every possible reader concludes "absent" — the whole
//     key is dead: its ghost index entry and every slot in its chain
//     go.
//
// # Interaction with the lock protocol
//
// The vacuum takes each key's exclusive lock, conditionally
// (TryAcquire), before touching its chain, and skips keys it cannot
// lock. That excludes writers (which hold the X lock while their
// version is uncommitted) and serializable scanners (which hold S
// locks on returned keys and on ghost entries sealing their next-key
// gaps). Under the X lock every version in the chain is committed, so
// the pivot computation is stable. Snapshot readers take no locks at
// all — they may race a reclamation and land on a freed slot, which
// the KV layer's bounded retry handles (the safety argument above
// guarantees the version they were after was unreachable anyway).
//
// Removing a whole-key ghost needs no gap locks even at serializable
// isolation: the ghost is invisible to every read path, so deleting
// its index entry does not change the visible key space; a scanner's
// next-key lock simply lands on the following entry instead.
//
// # Crash safety
//
// Each key's reclamation is one transaction: sever the chain (stamp
// the pivot's prev pointer to nil) and then delete the tail slots, or
// delete the index entry and then every slot. All mutations carry
// logical undo that restores exact (page, slot) cells, so an abort or
// a crash mid-transaction rebuilds the chain bit-for-bit; a crash
// after the lazy commit record is durable replays the reclamation.
// Either way no live version is lost and no dead slot leaks.
package vacuum

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/access"
	"repro/internal/index"
	"repro/internal/txn"
)

// maxChain bounds a version-chain walk; a longer chain means a cycle
// (corruption), not a workload.
const maxChain = 1 << 20

// Config wires a vacuum to one keyspace's storage structures.
type Config struct {
	Heap  *access.HeapFile
	Index *index.BTree
	Locks *txn.LockManager
	// Txns, when set, runs each key's reclamation as a WAL-logged
	// transaction. Nil means unlogged mode: mutations apply
	// immediately with no undo (matching the engine's DisableWAL
	// semantics).
	Txns   *txn.Manager
	Oracle *txn.Oracle
	// Resource maps an index key to its lock-manager resource name —
	// it must agree exactly with the naming the writers use.
	Resource func(key []byte) (string, error)
	// NextID allocates lock-owner ids for the per-key X locks (the
	// locks are owned by the vacuum pass, not by the reclamation
	// transaction, and released only after its outcome settles).
	NextID func() uint64
	// ScanFrom is the lowest index key of the keyspace.
	ScanFrom []byte
	// OnKeyRemoved, if set, is called once per whole-key removal,
	// after the removal committed (the KV layer keeps a ghost counter
	// for O(1) Len and must see every ghost leave the index).
	OnKeyRemoved func()
}

func (c Config) validate() error {
	switch {
	case c.Heap == nil:
		return errors.New("vacuum: nil heap")
	case c.Index == nil:
		return errors.New("vacuum: nil index")
	case c.Locks == nil:
		return errors.New("vacuum: nil lock manager")
	case c.Oracle == nil:
		return errors.New("vacuum: nil oracle")
	case c.Resource == nil:
		return errors.New("vacuum: nil resource mapping")
	case c.NextID == nil:
		return errors.New("vacuum: nil id allocator")
	}
	return nil
}

// Stats reports what one pass (or, accumulated, a Runner's lifetime)
// did.
type Stats struct {
	Horizon    uint64 // reclamation horizon of the (last) pass
	Keys       int    // index entries examined
	Candidates int    // entries whose chains might hold dead versions
	// SkippedBusy counts candidates whose key lock was held (a writer
	// or serializable scanner was active); they stay for a later pass.
	SkippedBusy int
	// SkippedUncommitted counts chains where an uncommitted version
	// surfaced despite the X lock. That indicates a protocol violation
	// somewhere; the vacuum leaves such chains strictly alone.
	SkippedUncommitted int
	KeysRemoved        int // whole keys (ghost entry + full chain) removed
	VersionsReclaimed  int // heap slots freed, including removed keys'
}

func (s *Stats) add(o Stats) {
	s.Horizon = o.Horizon
	s.Keys += o.Keys
	s.Candidates += o.Candidates
	s.SkippedBusy += o.SkippedBusy
	s.SkippedUncommitted += o.SkippedUncommitted
	s.KeysRemoved += o.KeysRemoved
	s.VersionsReclaimed += o.VersionsReclaimed
}

type version struct {
	rid  access.RID
	meta access.VersionMeta
}

// Run executes one vacuum pass: pin the horizon, sweep the index for
// candidate chains, and reclaim each candidate under its key lock.
// Keys whose locks are busy are skipped, not waited for — the vacuum
// must never sit in a writer's way.
func Run(c Config) (Stats, error) {
	var st Stats
	if err := c.validate(); err != nil {
		return st, err
	}
	st.Horizon = c.Oracle.Horizon()

	// Sweep: collect candidate keys. The pre-filter reads only the
	// chain head, without any lock — a stale verdict is fine, because
	// the authoritative re-read happens under the key's X lock. A head
	// that is committed, live and chainless has nothing to reclaim; a
	// concurrently-freed head (ErrNoSlot) means another actor already
	// handled the key.
	type candidate struct {
		key []byte
		res string
	}
	var cands []candidate
	err := c.Index.Range(c.ScanFrom, nil, func(key []byte, rid access.RID) error {
		st.Keys++
		cell, err := c.Heap.Get(rid)
		if err != nil {
			if errors.Is(err, access.ErrNoSlot) {
				return nil
			}
			return err
		}
		m, _, err := access.DecodeVersion(cell)
		if err != nil {
			return fmt.Errorf("vacuum: head of chain at %v: %w", rid, err)
		}
		dead := m.Committed() && m.Tombstone() && m.Begin <= st.Horizon
		if !m.HasPrev() && !dead {
			return nil
		}
		res, err := c.Resource(key)
		if err != nil {
			return err
		}
		cands = append(cands, candidate{append([]byte(nil), key...), res})
		return nil
	})
	if err != nil {
		return st, err
	}
	st.Candidates = len(cands)

	for _, cd := range cands {
		if err := c.vacuumKey(cd.key, cd.res, &st); err != nil {
			return st, err
		}
	}
	return st, nil
}

// vacuumKey reclaims one key's dead versions under its exclusive lock.
func (c Config) vacuumKey(key []byte, res string, st *Stats) error {
	owner := c.NextID()
	if !c.Locks.TryAcquire(owner, res, txn.Exclusive) {
		st.SkippedBusy++
		return nil
	}
	defer c.Locks.ReleaseAll(owner)

	// Re-read under the lock: the chain is now stable (writers need
	// this X lock) and fully committed.
	rids, err := c.Index.Search(key)
	if err != nil {
		return err
	}
	if len(rids) == 0 {
		return nil // key vanished between sweep and lock
	}
	var chain []version
	rid := rids[0]
	for {
		cell, err := c.Heap.Get(rid)
		if err != nil {
			return fmt.Errorf("vacuum: chain read at %v: %w", rid, err)
		}
		m, _, err := access.DecodeVersion(cell)
		if err != nil {
			return fmt.Errorf("vacuum: chain decode at %v: %w", rid, err)
		}
		if !m.Committed() {
			st.SkippedUncommitted++
			return nil
		}
		chain = append(chain, version{rid, m})
		if !m.HasPrev() {
			break
		}
		if len(chain) >= maxChain {
			return fmt.Errorf("vacuum: version chain from %v exceeds %d links", rids[0], maxChain)
		}
		rid = m.Prev
	}

	// The pivot is the newest version at or below the horizon: the
	// oldest version any live or future reader can resolve to.
	pivot := -1
	for i, v := range chain {
		if v.meta.Begin <= st.Horizon {
			pivot = i
			break
		}
	}
	if pivot < 0 {
		return nil // whole chain above the horizon; all reachable
	}
	if pivot == 0 && chain[0].meta.Tombstone() {
		// Committed tombstone head at or below the horizon: every
		// reader answers "absent". The whole key goes.
		if err := c.removeKey(key, chain, st); err != nil {
			return err
		}
		return nil
	}
	keep := pivot
	if chain[pivot].meta.Tombstone() {
		// A non-head tombstone pivot is itself unreachable-in-effect:
		// resolving to it and walking past a severed chain end both
		// answer "absent".
		keep = pivot - 1
	}
	if keep == len(chain)-1 {
		return nil // no tail behind the keeper
	}
	return c.truncate(chain, keep, st)
}

// begin opens the reclamation transaction (nil in unlogged mode — the
// explicit nils avoid a typed-nil TxnContext).
func (c Config) begin() (*txn.Txn, access.TxnContext, error) {
	if c.Txns == nil {
		return nil, nil, nil
	}
	tx, err := c.Txns.Begin()
	if err != nil {
		return nil, nil, err
	}
	return tx, tx, nil
}

func (c Config) finish(tx *txn.Txn, opErr error) error {
	if tx == nil {
		return opErr
	}
	if opErr != nil {
		if aerr := c.Txns.Abort(tx); aerr != nil {
			return fmt.Errorf("%w (abort: %v)", opErr, aerr)
		}
		return opErr
	}
	// Lazy commit: the reclamation needs no immediate durability — if
	// the commit record is lost to a crash, recovery rolls the
	// transaction back and a later pass redoes the work.
	return c.Txns.CommitLazy(tx)
}

// removeKey deletes a dead key: its index entry and every chain slot,
// in one transaction. Index entry first — from that moment scans skip
// the key, which is exactly the answer its tombstone head already
// dictated.
func (c Config) removeKey(key []byte, chain []version, st *Stats) error {
	tx, ctx, err := c.begin()
	if err != nil {
		return err
	}
	err = func() error {
		ok, err := c.Index.DeleteTx(ctx, key, chain[0].rid)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("vacuum: index entry for %q vanished under its exclusive lock", key)
		}
		for _, v := range chain {
			if err := c.Heap.Delete(ctx, v.rid); err != nil {
				return err
			}
		}
		return nil
	}()
	if err := c.finish(tx, err); err != nil {
		return err
	}
	st.KeysRemoved++
	st.VersionsReclaimed += len(chain)
	if c.OnKeyRemoved != nil {
		c.OnKeyRemoved()
	}
	return nil
}

// truncate severs the chain after chain[keep] and frees the tail, in
// one transaction. Sever first: once the keeper's prev pointer is nil,
// no reader can walk into a slot this transaction is about to free,
// and recovery's redo repeats the same order.
func (c Config) truncate(chain []version, keep int, st *Stats) error {
	tx, ctx, err := c.begin()
	if err != nil {
		return err
	}
	err = func() error {
		none := access.EncodePrevRID(access.RID{})
		if err := c.Heap.StampBytes(ctx, chain[keep].rid, access.VersionPrevOff, none); err != nil {
			return err
		}
		for _, v := range chain[keep+1:] {
			if err := c.Heap.Delete(ctx, v.rid); err != nil {
				return err
			}
		}
		return nil
	}()
	if err := c.finish(tx, err); err != nil {
		return err
	}
	st.VersionsReclaimed += len(chain) - keep - 1
	return nil
}

// Runner drives periodic vacuum passes in the background.
type Runner struct {
	cfg   Config
	every time.Duration

	stop chan struct{}
	done chan struct{}

	mu      sync.Mutex
	totals  Stats
	passes  int
	lastErr error
}

// NewRunner builds a runner; Start launches it.
func NewRunner(cfg Config, every time.Duration) *Runner {
	return &Runner{
		cfg:   cfg,
		every: every,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
}

// Start launches the background loop.
func (r *Runner) Start() {
	go r.loop()
}

// Stop halts the loop and waits for an in-flight pass to finish.
func (r *Runner) Stop() {
	close(r.stop)
	<-r.done
}

// loop runs passes on a fixed period until Stop. A failed pass is
// recorded (Totals) and retried next tick — transient contention must
// not kill the scavenger.
func (r *Runner) loop() {
	defer close(r.done)
	t := time.NewTicker(r.every)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			st, err := Run(r.cfg)
			r.mu.Lock()
			r.totals.add(st)
			r.passes++
			r.lastErr = err
			r.mu.Unlock()
		}
	}
}

// Totals reports accumulated stats, the pass count, and the last
// pass's error (nil when it succeeded).
func (r *Runner) Totals() (Stats, int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.totals, r.passes, r.lastErr
}
