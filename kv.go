// Package sbdms is the public facade of the Service-Based Data
// Management System: it composes the storage, access, data and
// extension services of the paper's Figure 2 into a running database,
// at a selectable service granularity (monolithic, coarse, layered,
// fine) and over a selectable binding (in-process or TCP) — the exact
// experiment matrix the paper proposes as future work ("testing with
// different levels of service granularity will give us insights into
// the right tradeoff between service granularity and system
// performance", Section 5).
package sbdms

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/access"
	"repro/internal/buffer"
	"repro/internal/index"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

// KV errors.
var (
	// ErrKeyNotFound is returned by Get/Delete on absent keys.
	ErrKeyNotFound = errors.New("sbdms: key not found")
	// ErrBatchMismatch is returned by PutBatch when keys and values
	// have different lengths.
	ErrBatchMismatch = errors.New("sbdms: batch keys/values length mismatch")
)

// kvCore is the native key-value engine: a heap file for values plus a
// unique B+tree index on keys. It is the workhorse behind the KV
// service at every granularity; what changes between profiles is how
// many service boundaries a call crosses before reaching it.
//
// Every mutation runs under a transaction (one per operation, one per
// batch) so the heap, the B+tree and — via the file manager's system
// transactions — the page directory are all WAL-logged: a kill -9 at
// any point recovers to a consistent store with exactly the committed
// operations applied.
type kvCore struct {
	mu     sync.Mutex
	heap   *access.HeapFile
	idx    *index.BTree
	txns   *txn.Manager // nil = unlogged (WAL disabled)
	failed error        // fatal engine fault; all further mutations refused
}

func newKVCore(fm *storage.FileManager, pool *buffer.Manager, txns *txn.Manager, log *wal.Log, name string) (*kvCore, error) {
	heap, err := access.OpenHeap(name, fm, pool)
	if err != nil {
		return nil, err
	}
	idx, err := openKVIndex(fm, pool, name+".meta")
	if err != nil {
		return nil, err
	}
	kv := &kvCore{heap: heap, idx: idx}
	if log != nil && txns != nil {
		heap.SetLog(log)
		idx.SetLog(log)
		kv.txns = txns
	}
	return kv, nil
}

// openKVIndex opens the KV B+tree, persisting its metadata page id in a
// one-page file so the index survives restarts.
func openKVIndex(fm *storage.FileManager, pool *buffer.Manager, metaFile string) (*index.BTree, error) {
	if fm.Exists(metaFile) {
		pid, err := fm.FirstPage(metaFile)
		if err != nil {
			return nil, err
		}
		f, err := pool.Pin(pid)
		if err != nil {
			return nil, err
		}
		metaID := storage.PageID(binary.LittleEndian.Uint64(f.Page().Payload()))
		if err := pool.Unpin(pid, false); err != nil {
			return nil, err
		}
		return index.Open(pool, metaID)
	}
	idx, metaID, err := index.Create(pool, true)
	if err != nil {
		return nil, err
	}
	if err := fm.Create(metaFile); err != nil {
		return nil, err
	}
	pid, err := fm.AppendPage(metaFile, storage.PageTypeRaw)
	if err != nil {
		return nil, err
	}
	f, err := pool.Pin(pid)
	if err != nil {
		return nil, err
	}
	binary.LittleEndian.PutUint64(f.Page().Payload(), uint64(metaID))
	if err := pool.Unpin(pid, true); err != nil {
		return nil, err
	}
	return idx, nil
}

func (kv *kvCore) key(k string) []byte { return access.EncodeKey(access.NewString(k)) }

// begin starts the per-operation transaction (nil in unlogged mode).
// kv.mu is held.
func (kv *kvCore) begin() (*txn.Txn, error) {
	if kv.failed != nil {
		return nil, kv.failed
	}
	if kv.txns == nil {
		return nil, nil
	}
	return kv.txns.Begin()
}

// run executes op under kv.mu inside a fresh transaction. A failed op
// is rolled back (before images restore every dirtied page) while the
// core lock is still held; a successful op commits after the lock is
// released, so concurrent committers can coalesce into one group-commit
// sync instead of serialising their log forces behind kv.mu.
//
// A rollback or commit that itself fails (the device died mid-way)
// poisons the engine: the pool may hold pages with unrecovered
// uncommitted bytes, and further commits would legitimise them in the
// log. Refusing all further mutations keeps the WAL trustworthy, so a
// restart recovers exactly the committed state.
func (kv *kvCore) run(op func(tx *txn.Txn) error) error {
	kv.mu.Lock()
	tx, err := kv.begin()
	if err != nil {
		kv.mu.Unlock()
		return err
	}
	if err := op(tx); err != nil {
		var aerr error
		if tx != nil {
			if aerr = kv.txns.Abort(tx); aerr == nil {
				// The abort rewound the index pages (including the
				// metadata page) via before images; resynchronise the
				// tree's in-memory root/count with the restored bytes.
				aerr = kv.idx.ReloadMeta()
			}
			if aerr != nil {
				kv.failed = fmt.Errorf("sbdms: kv engine offline after failed rollback: %w", aerr)
			}
		}
		kv.mu.Unlock()
		if aerr != nil {
			return fmt.Errorf("%w (rollback: %v)", err, aerr)
		}
		return err
	}
	if tx == nil {
		kv.mu.Unlock()
		return nil
	}
	// Append the commit record while still holding kv.mu: the next
	// operation may build on this transaction's pages, so its commit
	// record must precede theirs in the log — otherwise a crash could
	// classify this transaction as in-flight and undo bytes a later
	// committed transaction already acknowledged.
	lsn, err := kv.txns.CommitAppend(tx)
	if err != nil {
		kv.failed = fmt.Errorf("sbdms: kv engine offline after failed commit: %w", err)
		kv.mu.Unlock()
		return err
	}
	kv.mu.Unlock()
	// Durability force outside the lock, so concurrent committers share
	// one group-commit sync; the transaction stays registered until the
	// force completes, so the commit_siblings gate sees it.
	if err := kv.txns.FinishCommit(tx, lsn); err != nil {
		kv.mu.Lock()
		kv.failed = fmt.Errorf("sbdms: kv engine offline after failed commit force: %w", err)
		kv.mu.Unlock()
		return err
	}
	return nil
}

// txctx converts the concrete transaction into the access-layer hook,
// avoiding a typed-nil interface when tx is nil.
func txctx(tx *txn.Txn) access.TxnContext {
	if tx == nil {
		return nil
	}
	return tx
}

// putLocked stores (or replaces) a key under tx; kv.mu is held.
func (kv *kvCore) putLocked(tx *txn.Txn, k string, v []byte) error {
	c := txctx(tx)
	rec := access.EncodeRow(access.Row{access.NewString(k), access.NewBytes(v)})
	rids, err := kv.idx.Search(kv.key(k))
	if err != nil {
		return err
	}
	if len(rids) > 0 {
		nrid, err := kv.heap.Update(c, rids[0], rec)
		if err != nil {
			return err
		}
		if nrid != rids[0] {
			if _, err := kv.idx.DeleteTx(c, kv.key(k), rids[0]); err != nil {
				return err
			}
			if err := kv.idx.InsertTx(c, kv.key(k), nrid); err != nil {
				return err
			}
		}
		return nil
	}
	rid, err := kv.heap.Insert(c, rec)
	if err != nil {
		return err
	}
	return kv.idx.InsertTx(c, kv.key(k), rid)
}

// deleteLocked removes a key under tx; kv.mu is held.
func (kv *kvCore) deleteLocked(tx *txn.Txn, k string) error {
	c := txctx(tx)
	rids, err := kv.idx.Search(kv.key(k))
	if err != nil {
		return err
	}
	if len(rids) == 0 {
		return fmt.Errorf("%w: %q", ErrKeyNotFound, k)
	}
	if err := kv.heap.Delete(c, rids[0]); err != nil {
		return err
	}
	_, err = kv.idx.DeleteTx(c, kv.key(k), rids[0])
	return err
}

// Put stores (or replaces) a key, durably when the WAL is enabled.
func (kv *kvCore) Put(k string, v []byte) error {
	return kv.run(func(tx *txn.Txn) error { return kv.putLocked(tx, k, v) })
}

// PutBatch stores several keys under one transaction: one WAL force
// for the whole batch, and after a crash either all of the batch's
// keys are recovered or none. With the WAL disabled there is no undo,
// so a mid-batch failure leaves the earlier keys applied (unlogged
// mode trades the atomicity guarantee away along with durability).
func (kv *kvCore) PutBatch(keys []string, vals [][]byte) error {
	if len(keys) != len(vals) {
		return fmt.Errorf("%w: %d keys, %d values", ErrBatchMismatch, len(keys), len(vals))
	}
	return kv.run(func(tx *txn.Txn) error {
		for i := range keys {
			if err := kv.putLocked(tx, keys[i], vals[i]); err != nil {
				return err
			}
		}
		return nil
	})
}

// Get fetches a key's value. A poisoned engine refuses reads too: the
// pool may hold half-rolled-back bytes a failed rollback left behind.
func (kv *kvCore) Get(k string) ([]byte, error) {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if kv.failed != nil {
		return nil, kv.failed
	}
	rids, err := kv.idx.Search(kv.key(k))
	if err != nil {
		return nil, err
	}
	if len(rids) == 0 {
		return nil, fmt.Errorf("%w: %q", ErrKeyNotFound, k)
	}
	rec, err := kv.heap.Get(rids[0])
	if err != nil {
		return nil, err
	}
	row, err := access.DecodeRow(rec)
	if err != nil {
		return nil, err
	}
	return row[1].Bytes, nil
}

// Delete removes a key.
func (kv *kvCore) Delete(k string) error {
	// In logged mode, pre-check existence so a miss stays a read-only
	// operation instead of paying a begin/abort WAL round trip (in
	// unlogged mode a miss costs nothing extra, so skip the second
	// lookup). Racing writers are serialised by kv.mu, and
	// deleteLocked re-checks under the same transaction.
	if kv.txns != nil {
		kv.mu.Lock()
		if kv.failed == nil {
			if rids, err := kv.idx.Search(kv.key(k)); err == nil && len(rids) == 0 {
				kv.mu.Unlock()
				return fmt.Errorf("%w: %q", ErrKeyNotFound, k)
			}
		}
		kv.mu.Unlock()
	}
	return kv.run(func(tx *txn.Txn) error { return kv.deleteLocked(tx, k) })
}

// Scan returns up to n keys starting at (inclusive) the given key, in
// order.
func (kv *kvCore) Scan(from string, n int) ([]string, error) {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if kv.failed != nil {
		return nil, kv.failed
	}
	var out []string
	err := kv.idx.Range(kv.key(from), nil, func(key []byte, rid access.RID) error {
		if len(out) >= n {
			return errStopScan
		}
		rec, err := kv.heap.Get(rid)
		if err != nil {
			return err
		}
		row, err := access.DecodeRow(rec)
		if err != nil {
			return err
		}
		out = append(out, row[0].Str)
		return nil
	})
	if err != nil && !errors.Is(err, errStopScan) {
		return nil, err
	}
	return out, nil
}

// Len returns the number of keys (0 when the engine is poisoned — the
// in-memory count is no more trustworthy than the pages then).
func (kv *kvCore) Len() uint64 {
	kv.mu.Lock()
	failed := kv.failed != nil
	kv.mu.Unlock()
	if failed {
		return 0
	}
	return kv.idx.Len()
}

var errStopScan = errors.New("sbdms: stop scan")
