package access

import (
	"bytes"
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndString(t *testing.T) {
	cases := []struct {
		v    Value
		typ  Type
		repr string
	}{
		{Null(), TypeNull, "NULL"},
		{NewInt(-42), TypeInt, "-42"},
		{NewFloat(2.5), TypeFloat, "2.5"},
		{NewString("hi"), TypeString, "hi"},
		{NewBool(true), TypeBool, "true"},
		{NewBytes([]byte{0xAB}), TypeBytes, "0xab"},
	}
	for _, c := range cases {
		if c.v.Type != c.typ || c.v.String() != c.repr {
			t.Errorf("%+v: type %v repr %q", c.v, c.v.Type, c.v.String())
		}
	}
	if !Null().IsNull() || NewInt(0).IsNull() {
		t.Fatal("IsNull broken")
	}
}

func TestParseType(t *testing.T) {
	for s, want := range map[string]Type{
		"int": TypeInt, "INTEGER": TypeInt, "bigint": TypeInt,
		"float": TypeFloat, "DOUBLE": TypeFloat, "real": TypeFloat,
		"text": TypeString, "VARCHAR": TypeString, "string": TypeString,
		"bool": TypeBool, "BOOLEAN": TypeBool,
		"bytes": TypeBytes, "blob": TypeBytes,
	} {
		got, err := ParseType(s)
		if err != nil || got != want {
			t.Errorf("ParseType(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseType("decimal"); err == nil {
		t.Fatal("unknown type must fail")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewInt(1), NewFloat(1.5), -1},
		{NewFloat(2.0), NewInt(2), 0},
		{NewString("a"), NewString("b"), -1},
		{NewBool(false), NewBool(true), -1},
		{NewBool(true), NewBool(true), 0},
		{NewBytes([]byte{1}), NewBytes([]byte{1, 0}), -1},
		{Null(), NewInt(5), -1},
		{NewInt(5), Null(), 1},
		{Null(), Null(), 0},
	}
	for _, c := range cases {
		got, err := Compare(c.a, c.b)
		if err != nil {
			t.Fatalf("Compare(%v,%v): %v", c.a, c.b, err)
		}
		if got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if _, err := Compare(NewInt(1), NewString("x")); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Compare(NewBool(true), NewBytes(nil)); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("err = %v", err)
	}
	if !Equal(NewInt(3), NewFloat(3)) || Equal(NewInt(3), NewInt(4)) {
		t.Fatal("Equal broken")
	}
}

func TestRowEncodeDecodeRoundTrip(t *testing.T) {
	row := Row{
		NewInt(-7), NewFloat(math.Pi), NewString("héllo"), NewBool(true),
		NewBytes([]byte{0, 1, 2}), Null(),
	}
	got, err := DecodeRow(EncodeRow(row))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(row) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range row {
		if !Equal(got[i], row[i]) && !(row[i].IsNull() && got[i].IsNull()) {
			t.Errorf("col %d: %v != %v", i, got[i], row[i])
		}
	}
	// Empty row.
	if got, err := DecodeRow(EncodeRow(Row{})); err != nil || len(got) != 0 {
		t.Fatalf("empty row: %v, %v", got, err)
	}
}

func TestDecodeRowErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{1},                // short header
		{1, 0},             // one column, no data
		{1, 0, 99},         // unknown type
		{1, 0, byte(TypeInt), 1, 2}, // truncated int
		append(EncodeRow(Row{NewInt(1)}), 0xFF), // trailing bytes
	}
	for i, b := range cases {
		if _, err := DecodeRow(b); !errors.Is(err, ErrCorruptRow) {
			t.Errorf("case %d: err = %v", i, err)
		}
	}
}

func TestRowClone(t *testing.T) {
	r := Row{NewBytes([]byte{1, 2}), NewString("s")}
	c := r.Clone()
	c[0].Bytes[0] = 9
	if r[0].Bytes[0] == 9 {
		t.Fatal("clone must deep-copy bytes")
	}
	if r.String() != "(0x0102, s)" {
		t.Fatalf("String = %q", r.String())
	}
}

// Property: row encoding round-trips arbitrary int/float/string/bool
// rows.
func TestRowRoundTripQuick(t *testing.T) {
	f := func(i int64, fl float64, s string, b bool, raw []byte) bool {
		row := Row{NewInt(i), NewFloat(fl), NewString(s), NewBool(b), NewBytes(raw), Null()}
		got, err := DecodeRow(EncodeRow(row))
		if err != nil || len(got) != 6 {
			return false
		}
		if got[0].Int != i || got[2].Str != s || got[3].Bool != b || !got[5].IsNull() {
			return false
		}
		if !bytes.Equal(got[4].Bytes, raw) {
			return false
		}
		// NaN-safe float comparison.
		return math.Float64bits(got[1].Float) == math.Float64bits(fl)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: EncodeKey preserves the Compare order within each class.
func TestEncodeKeyOrderQuick(t *testing.T) {
	intCase := func(a, b int64) bool {
		c, _ := Compare(NewInt(a), NewInt(b))
		return c == bytes.Compare(EncodeKey(NewInt(a)), EncodeKey(NewInt(b)))
	}
	if err := quick.Check(intCase, nil); err != nil {
		t.Fatalf("int keys: %v", err)
	}
	floatCase := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		c, _ := Compare(NewFloat(a), NewFloat(b))
		return c == bytes.Compare(EncodeKey(NewFloat(a)), EncodeKey(NewFloat(b)))
	}
	if err := quick.Check(floatCase, nil); err != nil {
		t.Fatalf("float keys: %v", err)
	}
	strCase := func(a, b string) bool {
		c, _ := Compare(NewString(a), NewString(b))
		return c == bytes.Compare(EncodeKey(NewString(a)), EncodeKey(NewString(b)))
	}
	if err := quick.Check(strCase, nil); err != nil {
		t.Fatalf("string keys: %v", err)
	}
}

func TestEncodeKeySortsMixedInts(t *testing.T) {
	vals := []int64{5, -3, 0, math.MaxInt64, math.MinInt64, 7, -7}
	keys := make([][]byte, len(vals))
	for i, v := range vals {
		keys[i] = EncodeKey(NewInt(v))
	}
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for i, v := range vals {
		if !bytes.Equal(keys[i], EncodeKey(NewInt(v))) {
			t.Fatalf("key order mismatch at %d (val %d)", i, v)
		}
	}
}
