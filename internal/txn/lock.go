// Package txn implements the transactional services of the SBDMS Data
// layer: a lock manager with shared/exclusive modes, FIFO admission and
// wait-for-graph deadlock detection, and a transaction manager providing
// 2PL transactions with WAL-backed durability (begin/commit/abort
// records, undo via before images).
package txn

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// Lock manager errors.
var (
	// ErrDeadlock is returned to the transaction chosen as deadlock
	// victim; the caller must abort it.
	ErrDeadlock = errors.New("txn: deadlock detected")
	// ErrNotHeld is returned when releasing a lock that is not held.
	ErrNotHeld = errors.New("txn: lock not held")
)

// LockMode is the requested access mode.
type LockMode int

// Lock modes.
const (
	Shared LockMode = iota
	Exclusive
)

// String implements fmt.Stringer.
func (m LockMode) String() string {
	if m == Shared {
		return "S"
	}
	return "X"
}

// conflicts reports whether two modes cannot be held concurrently by
// different transactions.
func conflicts(a, b LockMode) bool {
	return a == Exclusive || b == Exclusive
}

// lockRequest is one waiting entry in a resource's FIFO queue. The
// waiter parks on ready; the releaser that grants the request closes it.
type lockRequest struct {
	txn     uint64
	mode    LockMode
	upgrade bool          // converting an existing S grant to X
	ready   chan struct{} // closed when granted
}

// lockState is one resource: the granted group plus the FIFO queue of
// waiters. Grants happen strictly in queue order — a release scans the
// queue from the front and stops at the first waiter that cannot be
// admitted, so no later request (however compatible) barges past it.
// The one exception is lock upgrades, which enter at the FRONT of the
// queue: an upgrader already holds the resource, so letting anyone
// else in first could only deadlock it.
type lockState struct {
	holders map[uint64]LockMode
	queue   []*lockRequest
}

// waitEntry records the single resource a transaction is currently
// blocked on (Acquire is synchronous, so there is at most one). The
// deadlock detector derives wait-for edges from these entries and the
// live queue contents on every check — edges are never cached, so they
// cannot go stale.
type waitEntry struct {
	resource string
	st       *lockState
	req      *lockRequest
}

// LockManager grants S/X locks on named resources to transactions.
// Admission is fair: conflicting requests park in a per-resource FIFO
// queue and are granted strictly in arrival order (no new reader is
// admitted past a waiting writer), so a sustained shared stream cannot
// starve an exclusive requester. A requester whose wait would close a
// cycle in the wait-for graph is refused with ErrDeadlock.
type LockManager struct {
	mu      sync.Mutex
	locks   map[string]*lockState
	waiting map[uint64]*waitEntry
}

// NewLockManager creates an empty lock manager.
func NewLockManager() *LockManager {
	return &LockManager{
		locks:   make(map[string]*lockState),
		waiting: make(map[uint64]*waitEntry),
	}
}

// compatibleLocked reports whether txn's mode conflicts with no other
// current holder of st.
func compatibleLocked(st *lockState, txn uint64, mode LockMode) bool {
	for holder, hmode := range st.holders {
		if holder == txn {
			continue
		}
		if conflicts(mode, hmode) {
			return false
		}
	}
	return true
}

// grantableLocked reports whether a NEW request (not an already-granted
// one) can be admitted immediately. Upgrades bypass the queue but need
// the holder group to themselves; fresh requests must find the queue
// empty — anything else would barge past a waiter.
func grantableLocked(st *lockState, txn uint64, mode LockMode, upgrade bool) bool {
	if upgrade {
		_, holds := st.holders[txn]
		return holds && len(st.holders) == 1
	}
	return len(st.queue) == 0 && compatibleLocked(st, txn, mode)
}

// heldStrongly reports whether txn already holds st at or above mode.
func heldStrongly(st *lockState, txn uint64, mode LockMode) bool {
	held, ok := st.holders[txn]
	return ok && (held == Exclusive || held == mode)
}

// Acquire blocks until txn holds the resource in mode (or stronger).
// Lock upgrades (S held, X requested) are supported and jump to the
// front of the wait queue. Returns ErrDeadlock when waiting would
// deadlock, or the context error when ctx is cancelled while waiting.
func (lm *LockManager) Acquire(ctx context.Context, txn uint64, resource string, mode LockMode) error {
	lm.mu.Lock()
	st := lm.locks[resource]
	if st == nil {
		st = &lockState{holders: make(map[uint64]LockMode)}
		lm.locks[resource] = st
	}
	if heldStrongly(st, txn, mode) {
		lm.mu.Unlock()
		return nil
	}
	_, holds := st.holders[txn]
	upgrade := holds && mode == Exclusive
	if grantableLocked(st, txn, mode, upgrade) {
		st.holders[txn] = mode
		lm.mu.Unlock()
		return nil
	}
	if err := ctx.Err(); err != nil {
		lm.cleanupLocked(resource, st)
		lm.mu.Unlock()
		return err
	}
	req := &lockRequest{txn: txn, mode: mode, upgrade: upgrade, ready: make(chan struct{})}
	if upgrade {
		st.queue = append([]*lockRequest{req}, st.queue...)
	} else {
		st.queue = append(st.queue, req)
	}
	lm.waiting[txn] = &waitEntry{resource: resource, st: st, req: req}
	// Every edge a new wait can add to the graph points at (or out of)
	// this request, so checking for a cycle reachable from txn right
	// here catches every deadlock the system can ever enter.
	if lm.cycleFromLocked(txn) {
		lm.dropRequestLocked(txn, resource, st, req)
		lm.mu.Unlock()
		return fmt.Errorf("%w: txn %d on %s/%s", ErrDeadlock, txn, resource, mode)
	}
	lm.mu.Unlock()

	select {
	case <-req.ready:
		return nil
	case <-ctx.Done():
		lm.mu.Lock()
		select {
		case <-req.ready:
			// Granted in the race with cancellation: keep the grant; the
			// caller's next ctx check (or its release path) handles the
			// cancellation.
			lm.mu.Unlock()
			return nil
		default:
		}
		lm.dropRequestLocked(txn, resource, st, req)
		lm.mu.Unlock()
		return ctx.Err()
	}
}

// TryAcquire grants the resource to txn immediately if FIFO admission
// allows it (held strongly enough already, or compatible with the
// holders with no waiter queued ahead), and reports whether it did. It
// never blocks, which makes it safe to call while holding page latches:
// callers that get false must release their latches before falling back
// to the blocking Acquire.
func (lm *LockManager) TryAcquire(txn uint64, resource string, mode LockMode) bool {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	st := lm.locks[resource]
	if st == nil {
		st = &lockState{holders: make(map[uint64]LockMode)}
		lm.locks[resource] = st
	}
	if heldStrongly(st, txn, mode) {
		return true
	}
	_, holds := st.holders[txn]
	upgrade := holds && mode == Exclusive
	if grantableLocked(st, txn, mode, upgrade) {
		st.holders[txn] = mode
		return true
	}
	lm.cleanupLocked(resource, st)
	return false
}

// dropRequestLocked removes a waiting request (deadlock victim or
// cancelled waiter) and re-runs admission: the removed entry may have
// been the only thing blocking the requests behind it.
func (lm *LockManager) dropRequestLocked(txn uint64, resource string, st *lockState, req *lockRequest) {
	for i, q := range st.queue {
		if q == req {
			st.queue = append(st.queue[:i], st.queue[i+1:]...)
			break
		}
	}
	if w := lm.waiting[txn]; w != nil && w.req == req {
		delete(lm.waiting, txn)
	}
	lm.grantLocked(resource, st)
}

// grantLocked admits waiters from the front of the queue while FIFO
// order allows, then garbage-collects an empty state.
func (lm *LockManager) grantLocked(resource string, st *lockState) {
	for len(st.queue) > 0 {
		req := st.queue[0]
		admit := false
		if req.upgrade {
			_, holds := st.holders[req.txn]
			admit = holds && len(st.holders) == 1
		} else {
			admit = compatibleLocked(st, req.txn, req.mode)
		}
		if !admit {
			break
		}
		st.holders[req.txn] = req.mode
		st.queue = st.queue[1:]
		if w := lm.waiting[req.txn]; w != nil && w.req == req {
			delete(lm.waiting, req.txn)
		}
		close(req.ready)
	}
	lm.cleanupLocked(resource, st)
}

func (lm *LockManager) cleanupLocked(resource string, st *lockState) {
	if len(st.holders) == 0 && len(st.queue) == 0 {
		delete(lm.locks, resource)
	}
}

// blockersLocked derives txn's current wait-for edges from the queue it
// is parked in: every conflicting holder, plus every conflicting waiter
// queued ahead of it (FIFO admission makes those real waits too).
func (lm *LockManager) blockersLocked(txn uint64) []uint64 {
	w := lm.waiting[txn]
	if w == nil {
		return nil
	}
	var out []uint64
	for holder, hmode := range w.st.holders {
		if holder != txn && conflicts(w.req.mode, hmode) {
			out = append(out, holder)
		}
	}
	for _, q := range w.st.queue {
		if q == w.req {
			break
		}
		if q.txn != txn && conflicts(w.req.mode, q.mode) {
			out = append(out, q.txn)
		}
	}
	return out
}

// cycleFromLocked reports whether the wait-for graph contains a cycle
// through start. Edges are computed from the live queues on every call,
// so released blockers disappear from the graph instantly — no phantom
// deadlocks from stale edges.
func (lm *LockManager) cycleFromLocked(start uint64) bool {
	seen := map[uint64]bool{}
	var dfs func(u uint64) bool
	dfs = func(u uint64) bool {
		if u == start {
			return true
		}
		if seen[u] {
			return false
		}
		seen[u] = true
		for _, v := range lm.blockersLocked(u) {
			if dfs(v) {
				return true
			}
		}
		return false
	}
	for _, v := range lm.blockersLocked(start) {
		if dfs(v) {
			return true
		}
	}
	return false
}

// Release drops txn's lock on the resource and admits whatever the FIFO
// queue allows next.
func (lm *LockManager) Release(txn uint64, resource string) error {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	st := lm.locks[resource]
	if st == nil {
		return fmt.Errorf("%w: %s", ErrNotHeld, resource)
	}
	if _, ok := st.holders[txn]; !ok {
		return fmt.Errorf("%w: %s by txn %d", ErrNotHeld, resource, txn)
	}
	delete(st.holders, txn)
	lm.grantLocked(resource, st)
	return nil
}

// ReleaseAll drops every lock txn holds (end of 2PL) and admits waiters
// on each affected resource.
func (lm *LockManager) ReleaseAll(txn uint64) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	for res, st := range lm.locks {
		if _, ok := st.holders[txn]; ok {
			delete(st.holders, txn)
			lm.grantLocked(res, st)
		}
	}
}

// Held returns the mode txn holds on resource, if any.
func (lm *LockManager) Held(txn uint64, resource string) (LockMode, bool) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	if st := lm.locks[resource]; st != nil {
		m, ok := st.holders[txn]
		return m, ok
	}
	return Shared, false
}

// Locked returns the number of currently locked (or waited-on)
// resources.
func (lm *LockManager) Locked() int {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	return len(lm.locks)
}

// Waiters returns the number of requests queued on the resource —
// observability for fairness tests and experiments.
func (lm *LockManager) Waiters(resource string) int {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	if st := lm.locks[resource]; st != nil {
		return len(st.queue)
	}
	return 0
}
