// Package undo executes logical rollback: it maps the undo descriptors
// that heap and B+tree mutations attach to their WAL records back onto
// the inverse operations, running them through the normal latched
// access paths. The transaction manager calls it for live aborts; after
// a crash it rolls back the in-flight "loser" transactions that
// recovery's repeat-history redo reinstated.
//
// Logical undo is the half of ARIES that fine-grained locking forces:
// redo stays physical (page images), but once transactions interleave
// on shared pages, undo must re-execute inverse operations instead of
// restoring stale before images.
package undo

import (
	"fmt"
	"sync"

	"repro/internal/access"
	"repro/internal/buffer"
	"repro/internal/index"
	"repro/internal/storage"
	"repro/internal/wal"
)

// Executor resolves and applies logical undo descriptors. It keeps a
// registry of live B+tree handles (so rollback adjusts the same
// in-memory entry counts the engine reads) and opens throwaway handles
// for trees only named in the log — coherent by construction, because
// trees read their root pointer from the latched metadata page rather
// than caching it.
type Executor struct {
	pool *buffer.Manager
	log  *wal.Log
	sys  access.SystemTxnHooks

	mu    sync.Mutex
	trees map[storage.PageID]*index.BTree
}

// NewExecutor creates an executor over the pool and log.
func NewExecutor(pool *buffer.Manager, log *wal.Log) *Executor {
	return &Executor{pool: pool, log: log, trees: make(map[storage.PageID]*index.BTree)}
}

// SetSystemTxns supplies the system-transaction hooks wired into trees
// the executor opens itself (splits during an undo re-insert must be
// logged like any other structure modification).
func (e *Executor) SetSystemTxns(s access.SystemTxnHooks) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.sys = s
}

// Register makes a live tree handle the rollback target for its
// metadata page id.
func (e *Executor) Register(t *index.BTree) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.trees[t.MetaID()] = t
}

// Unregister removes a tree (dropped indexes).
func (e *Executor) Unregister(metaID storage.PageID) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.trees, metaID)
}

func (e *Executor) tree(metaID storage.PageID) (*index.BTree, error) {
	e.mu.Lock()
	if t, ok := e.trees[metaID]; ok {
		e.mu.Unlock()
		return t, nil
	}
	sys := e.sys
	e.mu.Unlock()
	t, err := index.Open(e.pool, metaID)
	if err != nil {
		return nil, err
	}
	t.SetLog(e.log)
	t.SetSystemTxns(sys)
	e.mu.Lock()
	e.trees[metaID] = t
	e.mu.Unlock()
	return t, nil
}

// UndoRecord rolls one logged operation back under tx (a compensation
// context: everything it logs carries the redo-only marker). It
// implements txn.UndoHandler.
func (e *Executor) UndoRecord(tx access.TxnContext, rec *wal.Record) error {
	desc := rec.Undo
	if len(desc) == 0 || rec.RedoOnly() {
		return fmt.Errorf("undo: record %d has no logical undo", rec.LSN)
	}
	if handled, err := access.ApplyHeapUndo(e.pool, e.log, tx, desc); handled || err != nil {
		return err
	}
	if _, metaID, _, _, ok, err := index.DecodeUndo(desc); err != nil {
		return err
	} else if ok {
		t, err := e.tree(metaID)
		if err != nil {
			return err
		}
		return t.ApplyUndo(tx, desc)
	}
	return fmt.Errorf("undo: unknown descriptor kind %d (record %d)", desc[0], rec.LSN)
}
