// Golden package for the lintdirective checks: the suppression
// mechanism is itself linted, so silencing a rule always costs a
// written-down reason. This package is asserted programmatically (see
// run_test.go) because the findings land on the directive comments
// themselves, where a // want comment cannot sit.
package directives

import "repro/internal/wal"

// bad: each malformed directive is a finding, and none of them
// suppress the discard they sit on.
func bad(log *wal.Log) {
	//lint:ignore
	log.Flush(0)
	//lint:ignore nosuchanalyzer the analyzer name is wrong
	log.Flush(1)
	//lint:ignore errcheckdurability
	log.Flush(2)
}

// good: a well-formed directive suppresses the finding and is itself
// silent.
func good(log *wal.Log) {
	//lint:ignore errcheckdurability the demo drops the flush error to exercise suppression
	log.Flush(3)
}
