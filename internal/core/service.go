package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// State is the lifecycle state of a service. Resource management
// processes keep track of these "service working states" (Section 3.1).
type State int32

// Service lifecycle states.
const (
	StateCreated State = iota
	StateStarting
	StateRunning
	StateDegraded
	StateStopping
	StateStopped
	StateFailed
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateCreated:
		return "created"
	case StateStarting:
		return "starting"
	case StateRunning:
		return "running"
	case StateDegraded:
		return "degraded"
	case StateStopping:
		return "stopping"
	case StateStopped:
		return "stopped"
	case StateFailed:
		return "failed"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// Errors returned by the service runtime.
var (
	// ErrUnknownOp is returned when a service is invoked with an
	// operation its contract does not declare.
	ErrUnknownOp = errors.New("core: unknown operation")
	// ErrNotRunning is returned when a service is invoked outside the
	// running or degraded states.
	ErrNotRunning = errors.New("core: service not running")
	// ErrOverloaded is returned when a service's MaxConcurrent policy
	// bound is exceeded.
	ErrOverloaded = errors.New("core: service overloaded")
)

// Service is the atomic architectural unit: a named provider of a
// contract, invocable only through Invoke. Implementations keep their
// internals private; callers interact purely via the contract.
type Service interface {
	Invoker
	// Name is the unique instance name of this service.
	Name() string
	// Contract describes the interface this service provides.
	Contract() *Contract
	// Start moves the service to running. It must be idempotent.
	Start(ctx context.Context) error
	// Stop moves the service to stopped, releasing resources.
	Stop(ctx context.Context) error
	// State reports the current lifecycle state.
	State() State
}

// OpStats aggregates invocation statistics for one operation of a
// service. Monitoring and coordinator services read these to assess
// functional service properties (Section 3.1).
type OpStats struct {
	Calls    uint64
	Errors   uint64
	TotalDur time.Duration
}

// Mean returns the mean call duration, or zero if no calls were made.
func (o OpStats) Mean() time.Duration {
	if o.Calls == 0 {
		return 0
	}
	return o.TotalDur / time.Duration(o.Calls)
}

// BaseService is the standard Service implementation used throughout
// SBDMS. It dispatches operations to registered handlers, tracks
// lifecycle state atomically, enforces the contract's concurrency
// policy, and collects per-operation statistics.
type BaseService struct {
	name     string
	contract *Contract
	state    atomic.Int32
	inflight atomic.Int64

	mu       sync.RWMutex
	handlers map[string]Handler
	stats    map[string]*opCounters

	onStart func(ctx context.Context) error
	onStop  func(ctx context.Context) error
}

type opCounters struct {
	calls  atomic.Uint64
	errs   atomic.Uint64
	durNS  atomic.Int64
}

// NewService creates a service with the given instance name and
// contract. Handlers are attached with Handle; lifecycle hooks with
// OnStart and OnStop.
func NewService(name string, contract *Contract) *BaseService {
	s := &BaseService{
		name:     name,
		contract: contract,
		handlers: make(map[string]Handler),
		stats:    make(map[string]*opCounters),
	}
	s.state.Store(int32(StateCreated))
	return s
}

// Name implements Service.
func (s *BaseService) Name() string { return s.name }

// Contract implements Service.
func (s *BaseService) Contract() *Contract { return s.contract }

// State implements Service.
func (s *BaseService) State() State { return State(s.state.Load()) }

// SetState forces the lifecycle state. It is exported for coordinator
// services that mark providers degraded or failed based on monitoring.
func (s *BaseService) SetState(st State) { s.state.Store(int32(st)) }

// Handle registers the handler for an operation. It panics if the
// operation is not declared in the contract, which catches wiring bugs
// at composition time rather than first invocation.
func (s *BaseService) Handle(op string, h Handler) *BaseService {
	if s.contract != nil {
		if _, ok := s.contract.Op(op); !ok {
			panic(fmt.Sprintf("core: service %s: handler for undeclared operation %q", s.name, op))
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[op] = h
	s.stats[op] = &opCounters{}
	return s
}

// OnStart registers a hook run during Start.
func (s *BaseService) OnStart(f func(ctx context.Context) error) *BaseService {
	s.onStart = f
	return s
}

// OnStop registers a hook run during Stop.
func (s *BaseService) OnStop(f func(ctx context.Context) error) *BaseService {
	s.onStop = f
	return s
}

// Start implements Service.
func (s *BaseService) Start(ctx context.Context) error {
	st := s.State()
	if st == StateRunning || st == StateDegraded {
		return nil
	}
	s.state.Store(int32(StateStarting))
	if s.onStart != nil {
		if err := s.onStart(ctx); err != nil {
			s.state.Store(int32(StateFailed))
			return fmt.Errorf("core: starting service %s: %w", s.name, err)
		}
	}
	s.state.Store(int32(StateRunning))
	return nil
}

// Stop implements Service.
func (s *BaseService) Stop(ctx context.Context) error {
	if s.State() == StateStopped {
		return nil
	}
	s.state.Store(int32(StateStopping))
	if s.onStop != nil {
		if err := s.onStop(ctx); err != nil {
			s.state.Store(int32(StateFailed))
			return fmt.Errorf("core: stopping service %s: %w", s.name, err)
		}
	}
	s.state.Store(int32(StateStopped))
	return nil
}

// Invoke implements Invoker. It rejects calls outside running/degraded
// states, enforces the MaxConcurrent policy and records statistics.
func (s *BaseService) Invoke(ctx context.Context, op string, req any) (any, error) {
	switch s.State() {
	case StateRunning, StateDegraded:
	default:
		return nil, fmt.Errorf("service %s, operation %s: %w (state %s)", s.name, op, ErrNotRunning, s.State())
	}
	if maxc := s.contract.Policy.MaxConcurrent; maxc > 0 {
		if s.inflight.Add(1) > int64(maxc) {
			s.inflight.Add(-1)
			return nil, fmt.Errorf("service %s: %w", s.name, ErrOverloaded)
		}
		defer s.inflight.Add(-1)
	}
	s.mu.RLock()
	h := s.handlers[op]
	c := s.stats[op]
	s.mu.RUnlock()
	if h == nil {
		return nil, fmt.Errorf("service %s: %w: %q", s.name, ErrUnknownOp, op)
	}
	start := time.Now()
	resp, err := h(ctx, req)
	if c != nil {
		c.calls.Add(1)
		c.durNS.Add(int64(time.Since(start)))
		if err != nil {
			c.errs.Add(1)
		}
	}
	return resp, err
}

// Stats returns a snapshot of per-operation statistics.
func (s *BaseService) Stats() map[string]OpStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]OpStats, len(s.stats))
	for op, c := range s.stats {
		out[op] = OpStats{
			Calls:    c.calls.Load(),
			Errors:   c.errs.Load(),
			TotalDur: time.Duration(c.durNS.Load()),
		}
	}
	return out
}

// Inflight reports the number of invocations currently executing.
func (s *BaseService) Inflight() int64 { return s.inflight.Load() }

// Ping is the conventional health-check operation name. Services built
// with NewPingableService answer it automatically.
const PingOp = "core.ping"

// PingSpec is the OpSpec of the conventional health-check operation.
var PingSpec = OpSpec{Name: PingOp, In: "nil", Out: "string", Semantic: "core.ping", Doc: "liveness probe"}

// WithPing appends the conventional ping operation to a contract and
// registers its handler on the service. Coordinators use it to probe
// liveness without knowing anything else about the service.
func WithPing(s *BaseService) *BaseService {
	if _, ok := s.contract.Op(PingOp); !ok {
		s.contract.Operations = append(s.contract.Operations, PingSpec)
	}
	return s.Handle(PingOp, func(ctx context.Context, req any) (any, error) {
		return "pong:" + s.name, nil
	})
}
