// Command sbdms runs an SBDMS node: it opens (or creates) a database,
// composes the service architecture at the requested granularity,
// exposes every registered service over the TCP binding, and optionally
// gossips its registry with peer nodes (Section 4: P2P service
// information updates).
//
// Usage:
//
//	sbdms -addr :7070 -data ./node1.db -wal ./node1.wal -granularity layered -peers host:7071,host:7072
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	sbdms "repro"
	"repro/internal/cluster"
	"repro/internal/netbind"
	"repro/internal/storage"
	"repro/internal/wal"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address for the TCP binding")
	dataPath := flag.String("data", "", "data file (empty = in-memory)")
	walPath := flag.String("wal", "", "single-file WAL (legacy unbounded layout; empty = in-memory)")
	walDir := flag.String("wal-dir", "", "segmented WAL directory (wal.NNNNNN files, truncated by checkpoints; takes precedence over -wal)")
	segBytes := flag.Int("wal-segment-bytes", 0, "WAL segment roll threshold in bytes (0 = 4 MiB)")
	ckptEvery := flag.Duration("checkpoint-interval", 0, "background fuzzy-checkpoint period (0 = off); bounds recovery time and WAL size")
	vacEvery := flag.Duration("vacuum-interval", 0, "background MVCC vacuum period (0 = off); reclaims dead versions behind the snapshot horizon")
	granularity := flag.String("granularity", "layered", "service granularity: monolithic|coarse|layered|fine")
	frames := flag.Int("frames", 256, "buffer pool frames")
	policy := flag.String("policy", "lru", "buffer replacement policy: lru|clock|2q")
	shards := flag.Int("shards", 0, "buffer pool lock-stripe count (0 = auto, 1 = single mutex)")
	groupWindow := flag.Duration("wal-group-window", 0, "WAL group-commit window (0 = coalesce without waiting)")
	groupBytes := flag.Int("wal-group-bytes", 0, "end the WAL group window early past this many pending bytes")
	syncEvery := flag.Bool("wal-sync-every-flush", false, "disable WAL group commit (sync on every flush)")
	commitSiblings := flag.Int("wal-commit-siblings", 0, "min sibling txns to hold the group window open (0 = 1, <0 = always hold)")
	scanIsolation := flag.String("scan-isolation", "read-committed", "range-scan isolation: read-committed|serializable (serializable = next-key locking, phantom-free scans)")
	peers := flag.String("peers", "", "comma-separated peer addresses for registry gossip")
	gossipEvery := flag.Duration("gossip", 2*time.Second, "gossip interval")
	node := flag.String("node", "", "node tag for proximity selection")
	importFile := flag.String("import", "", "bulk-load key<TAB>value lines from this file (- = stdin), print stats and exit instead of serving")
	importChunk := flag.Int("import-chunk-pages", 0, "pages per import cancellation/flush chunk (0 = 64)")
	importSlow := flag.Bool("import-no-fast-path", false, "force the per-key import path (disable the bulk build)")
	clusterShards := flag.Int("cluster-shards", 0, "serve an in-process demo cluster with this many hash-partitioned shards instead of a single node (0 = off)")
	clusterFollowers := flag.Int("cluster-followers", 1, "WAL-shipped followers per shard for -cluster-shards")
	clusterAsync := flag.Bool("cluster-async", false, "async-commit WAL mode: ack once a follower holds the record, before the leader's local fsync")
	flag.Parse()

	opts := sbdms.Options{
		Granularity:           sbdms.Granularity(*granularity),
		BufferFrames:          *frames,
		BufferPolicy:          *policy,
		BufferShards:          *shards,
		WALGroupWindow:        *groupWindow,
		WALGroupBytes:         *groupBytes,
		WALCommitSiblings:     *commitSiblings,
		WALSyncEveryFlush:     *syncEvery,
		WALSegmentBytes:       *segBytes,
		CheckpointInterval:    *ckptEvery,
		VacuumInterval:        *vacEvery,
		ScanIsolation:         sbdms.ScanIsolation(*scanIsolation),
		ImportChunkPages:      *importChunk,
		DisableImportFastPath: *importSlow,
	}
	if *importFile != "" {
		if err := runImport(*importFile, *dataPath, *walPath, *walDir, opts); err != nil {
			fmt.Fprintln(os.Stderr, "sbdms:", err)
			os.Exit(1)
		}
		return
	}
	if *clusterShards > 0 {
		if err := runCluster(*clusterShards, *clusterFollowers, *clusterAsync, *frames, *segBytes, *ckptEvery); err != nil {
			fmt.Fprintln(os.Stderr, "sbdms:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*addr, *dataPath, *walPath, *walDir, opts, *peers, *gossipEvery, *node); err != nil {
		fmt.Fprintln(os.Stderr, "sbdms:", err)
		os.Exit(1)
	}
}

// openDevices attaches the file-backed data and WAL devices named on
// the command line to opts (absent flags leave the in-memory defaults).
func openDevices(dataPath, walPath, walDir string, opts *sbdms.Options) error {
	if dataPath != "" {
		dev, err := storage.OpenFileDevice(dataPath)
		if err != nil {
			return err
		}
		opts.Device = dev
	}
	switch {
	case walDir != "":
		dir, err := wal.NewFileSegmentDir(walDir)
		if err != nil {
			return err
		}
		opts.LogDir = dir
	case walPath != "":
		dev, err := storage.OpenFileDevice(walPath)
		if err != nil {
			return err
		}
		opts.LogDevice = dev
	}
	return nil
}

// runImport bulk-loads key<TAB>value lines into the store and exits:
// the offline counterpart of the serving mode, using the same Import
// path (sorted bottom-up build on an empty store, atomic all-or-nothing
// load otherwise).
func runImport(file, dataPath, walPath, walDir string, opts sbdms.Options) error {
	in := os.Stdin
	if file != "-" {
		f, err := os.Open(file)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	var keys []string
	var vals [][]byte
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		k, v, ok := strings.Cut(text, "\t")
		if !ok {
			return fmt.Errorf("import: line %d: no TAB separator", line)
		}
		keys = append(keys, k)
		vals = append(vals, []byte(v))
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if err := openDevices(dataPath, walPath, walDir, &opts); err != nil {
		return err
	}
	db, err := sbdms.Open(opts)
	if err != nil {
		return err
	}
	start := time.Now()
	if err := db.Import(keys, vals); err != nil {
		_ = db.Close(context.Background())
		return fmt.Errorf("import: %w", err)
	}
	elapsed := time.Since(start)
	path := "bulk-build"
	if db.ImportFallbacks() > 0 {
		path = "per-key fallback"
	}
	if err := db.Close(context.Background()); err != nil {
		return err
	}
	rate := 0.0
	if elapsed > 0 {
		rate = float64(len(keys)) / elapsed.Seconds()
	}
	fmt.Printf("sbdms: imported %d keys in %v (%.0f keys/s, %s path)\n",
		len(keys), elapsed.Round(time.Millisecond), rate, path)
	return nil
}

// runCluster serves an in-process demo cluster: shards leaders (each a
// full engine) with WAL-shipped followers, every node's registry served
// over its own netbind TCP listener, writes routed by key hash through
// an epoch-aware router. A smoke write/read proves the data path before
// the process parks on the signal handler.
func runCluster(shards, followers int, async bool, frames, segBytes int, ckptEvery time.Duration) error {
	ctx := context.Background()
	c, err := cluster.New(cluster.Config{
		Shards:             shards,
		Followers:          followers,
		AsyncCommit:        async,
		UseNetbind:         true,
		Frames:             frames,
		WALSegmentBytes:    segBytes,
		CheckpointInterval: ckptEvery,
	})
	if err != nil {
		return err
	}
	defer c.Close(ctx)

	m := c.Map()
	fmt.Printf("sbdms: cluster epoch %d — %d shards x (1 leader + %d followers), async-commit=%t\n",
		m.Epoch, shards, followers, async)
	for _, sh := range m.Shards {
		fmt.Printf("  shard %d: leader %s, followers %v\n", sh.ID, sh.Leader, sh.Followers)
	}

	r := c.Router()
	if err := r.Put(ctx, "cluster-demo", []byte("ok")); err != nil {
		return fmt.Errorf("cluster smoke put: %w", err)
	}
	if v, err := r.Get(ctx, "cluster-demo"); err != nil || string(v) != "ok" {
		return fmt.Errorf("cluster smoke get = %q, %v", v, err)
	}
	fmt.Println("sbdms: router smoke test ok; Ctrl-C to stop")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("sbdms: shutting down cluster")
	return nil
}

func run(addr, dataPath, walPath, walDir string, opts sbdms.Options, peers string, gossipEvery time.Duration, node string) error {
	ctx := context.Background()
	if err := openDevices(dataPath, walPath, walDir, &opts); err != nil {
		return err
	}
	db, err := sbdms.Open(opts)
	if err != nil {
		return err
	}
	defer db.Close(ctx)
	_ = node

	srv, err := netbind.Serve(db.Kernel().Registry(), addr)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("sbdms: serving %d services at %s (granularity=%s, policy=%s, shards=%d)\n",
		db.Kernel().Registry().Len(), srv.Addr(), db.Granularity(), db.Pool().PolicyName(), db.Pool().NumShards())
	for _, reg := range db.Kernel().Registry().All() {
		fmt.Printf("  service %-24s interface %s\n", reg.Name, reg.Interface)
	}

	var gossiper *netbind.Gossiper
	if peers != "" {
		list := strings.Split(peers, ",")
		gossiper = netbind.NewGossiper(db.Kernel().Registry(), srv.Addr(), list...)
		gossiper.Start(gossipEvery)
		defer gossiper.Stop()
		fmt.Printf("sbdms: gossiping with %v every %v\n", list, gossipEvery)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("sbdms: shutting down")
	return nil
}
