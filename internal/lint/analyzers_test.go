package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// Each analyzer has a golden package under testdata/src/<name> whose
// // want comments pin down exactly which lines it flags — positive
// hits, the sanctioned shapes it must stay silent on, and a honoured
// //lint:ignore suppression.

func TestLatchOrder(t *testing.T) {
	linttest.Run(t, "latchorder", lint.LatchOrderAnalyzer)
}

func TestWALBeforeMutate(t *testing.T) {
	linttest.Run(t, "walbeforemutate", lint.WALBeforeMutateAnalyzer)
}

func TestPinPaired(t *testing.T) {
	linttest.Run(t, "pinpaired", lint.PinPairedAnalyzer)
}

func TestErrcheckDurability(t *testing.T) {
	linttest.Run(t, "errcheckdurability", lint.ErrcheckDurabilityAnalyzer)
}

func TestCtxFlow(t *testing.T) {
	linttest.Run(t, "ctxflow", lint.CtxFlowAnalyzer)
}
