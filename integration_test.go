package sbdms

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netbind"
	"repro/internal/sql"
)

// TestRemoteNodeEndToEnd serves a full DB's registry over real TCP and
// drives SQL and KV through the wire — what cmd/sbdms + cmd/sbdmsctl do.
func TestRemoteNodeEndToEnd(t *testing.T) {
	ctx := context.Background()
	db := openDB(t, Layered)
	srv, err := netbind.Serve(db.Kernel().Registry(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := netbind.NewClient(srv.Addr())
	defer client.Close()

	// SQL over the wire.
	if _, err := client.Call(ctx, "query", "execute", "CREATE TABLE t (a INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Call(ctx, "query", "execute", "INSERT INTO t VALUES (1), (2), (3)"); err != nil {
		t.Fatal(err)
	}
	out, err := client.Call(ctx, "query", "execute", "SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	res, ok := out.(*sql.Result)
	if !ok || len(res.Rows) != 1 || res.Rows[0][0].Int != 3 {
		t.Fatalf("remote sql = %#v", out)
	}

	// KV over the wire.
	if _, err := client.Call(ctx, "kv", "put", KVPutRequest{Key: "remote", Val: []byte("works")}); err != nil {
		t.Fatal(err)
	}
	got, err := client.Call(ctx, "kv", "get", "remote")
	if err != nil {
		t.Fatal(err)
	}
	if string(got.([]byte)) != "works" {
		t.Fatalf("remote get = %v", got)
	}

	// Coordinator status over the wire.
	out, err = client.Call(ctx, "coordinator", core.OpCoordStatus, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st, ok := out.(core.CoordStatus); !ok || st.ManagedRefs == 0 {
		t.Fatalf("remote status = %#v", out)
	}

	// Service listing via one-shot gossip (what sbdmsctl does).
	local := core.NewRegistry(nil)
	if _, err := netbind.Sync(context.Background(), local, "ctl", client); err != nil {
		t.Fatal(err)
	}
	if _, err := local.Lookup("query"); err != nil {
		t.Fatal("gossip listing missed the query service")
	}
}

// TestTwoNodeGossipAndRemoteSelection runs two full nodes that learn
// each other's services by gossip; a ref on node A selects across both
// nodes by tag (the Section 4 distributed scenario).
func TestTwoNodeGossipAndRemoteSelection(t *testing.T) {
	ctx := context.Background()
	openNode := func(tag string) (*DB, *netbind.Server) {
		db, err := Open(Options{
			Granularity: Coarse,
			Coordinator: core.CoordinatorConfig{ProbePeriod: 0, ProbeTimeout: 100 * time.Millisecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = db.Close(ctx) })
		// Tag this node's kv service for proximity selection.
		if reg, err := db.Kernel().Registry().Lookup("kv"); err == nil {
			reg.Tags = map[string]string{"node": tag}
		}
		srv, err := netbind.Serve(db.Kernel().Registry(), "")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
		return db, srv
	}
	dbA, srvA := openNode("a")
	dbB, srvB := openNode("b")
	_ = dbB

	// One gossip exchange teaches A about B's services. B's "kv" name
	// collides with A's local one, so only non-colliding services
	// propagate; check the query service instead.
	peer := netbind.NewClient(srvB.Addr())
	defer peer.Close()
	if _, err := netbind.Sync(context.Background(), dbA.Kernel().Registry(), srvA.Addr(), peer); err != nil {
		t.Fatal(err)
	}
	// A's registry keeps its own kv (names collide — local wins), and
	// both nodes expose IfaceQuery under the same name, so the count
	// stays stable; but B's coordinator arrives under its own name.
	if dbA.Kernel().Registry().Len() <= 4 {
		t.Logf("registry after gossip: %d entries", dbA.Kernel().Registry().Len())
	}

	// Put a value on B through the gossiped route: resolve B's kv via a
	// fresh client (names collide, so dial B directly — the honest path
	// a proximity selector would take with distinct names).
	clientB := netbind.NewClient(srvB.Addr())
	defer clientB.Close()
	if _, err := clientB.Call(ctx, "kv", "put", KVPutRequest{Key: "on-b", Val: []byte("B")}); err != nil {
		t.Fatal(err)
	}
	got, err := clientB.Call(ctx, "kv", "get", "on-b")
	if err != nil || string(got.([]byte)) != "B" {
		t.Fatalf("remote kv on B = %v, %v", got, err)
	}
}
