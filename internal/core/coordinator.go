package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"
)

// CoordinatorConfig tunes a coordinator service.
type CoordinatorConfig struct {
	// ProbePeriod is the health-check interval of the operational
	// phase. Zero disables periodic probing (probes can still be run
	// explicitly with ProbeOnce).
	ProbePeriod time.Duration
	// ProbeTimeout bounds each individual liveness probe.
	ProbeTimeout time.Duration
	// AdaptorPrefix names generated adaptor services.
	AdaptorPrefix string
}

// DefaultCoordinatorConfig returns sensible defaults.
func DefaultCoordinatorConfig() CoordinatorConfig {
	return CoordinatorConfig{
		ProbePeriod:   50 * time.Millisecond,
		ProbeTimeout:  250 * time.Millisecond,
		AdaptorPrefix: "adaptor",
	}
}

// Coordinator is a coordinator service (Section 3.1): it monitors
// service activity, verifies the availability of services, and handles
// service reconfiguration — switching to alternate providers
// (flexibility by selection) or generating adaptor services around
// interface-incompatible substitutes (flexibility by adaptation).
//
// A Coordinator is itself a Service, exposing its capabilities through
// a contract like any other part of the architecture.
type Coordinator struct {
	*BaseService
	cfg       CoordinatorConfig
	registry  *Registry
	repo      *Repository
	resources *ResourceManager
	bus       *EventBus

	mu       sync.Mutex
	refs     []*Ref          // references under management, for avoidance steering
	required map[string]bool // interfaces that must keep a provider
	avoided  map[string]bool // provider names currently steered away from
	loopStop chan struct{}
	loopDone chan struct{}
	repairs  int // count of successful adaptations, for tests/experiments
	switches int // count of selection switches
}

// CoordinatorIface is the logical interface coordinators provide.
const CoordinatorIface = "sbdms.core.Coordinator"

// Coordinator operation names.
const (
	OpReleaseResources = "releaseResources"
	OpRepair           = "repair"
	OpCoordStatus      = "status"
)

// ReleaseResourcesRequest asks the coordinator to steer load away from
// a service that needs its resources back (Figure 6).
type ReleaseResourcesRequest struct {
	Service string
	// Restore undoes a previous release, re-admitting the service.
	Restore bool
}

// CoordStatus is the coordinator's status response.
type CoordStatus struct {
	ManagedRefs   int
	RequiredIfcs  []string
	AvoidedSvcs   []string
	Adaptations   int
	Switches      int
}

// NewCoordinator creates a coordinator bound to the kernel's registry,
// repository, resource manager and event bus.
func NewCoordinator(name string, cfg CoordinatorConfig, reg *Registry, repo *Repository, rm *ResourceManager, bus *EventBus) *Coordinator {
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 250 * time.Millisecond
	}
	if cfg.AdaptorPrefix == "" {
		cfg.AdaptorPrefix = "adaptor"
	}
	contract := &Contract{
		Interface: CoordinatorIface,
		Operations: []OpSpec{
			{Name: OpReleaseResources, In: "core.ReleaseResourcesRequest", Out: "bool", Semantic: "core.releaseResources",
				Doc: "steer load away from (or back to) a service"},
			{Name: OpRepair, In: "string", Out: "string", Semantic: "core.repair",
				Doc: "repair an interface that lost its provider"},
			{Name: OpCoordStatus, In: "nil", Out: "core.CoordStatus", Semantic: "core.status"},
		},
		Description: Description{Summary: "monitors services and reconfigures the architecture"},
		Quality:     Quality{LatencyClass: "memory", Availability: 0.9999},
	}
	c := &Coordinator{
		BaseService: NewService(name, contract),
		cfg:         cfg,
		registry:    reg,
		repo:        repo,
		resources:   rm,
		bus:         bus,
		required:    make(map[string]bool),
		avoided:     make(map[string]bool),
	}
	WithPing(c.BaseService)
	c.Handle(OpReleaseResources, func(ctx context.Context, req any) (any, error) {
		r, ok := req.(ReleaseResourcesRequest)
		if !ok {
			return nil, &RequestError{Op: OpReleaseResources, Want: "core.ReleaseResourcesRequest", Got: TypeName(req)}
		}
		if r.Restore {
			c.Readmit(r.Service)
		} else {
			c.StopUsing(r.Service)
		}
		return true, nil
	})
	c.Handle(OpRepair, func(ctx context.Context, req any) (any, error) {
		iface, ok := req.(string)
		if !ok {
			return nil, &RequestError{Op: OpRepair, Want: "string", Got: TypeName(req)}
		}
		return c.Repair(ctx, iface)
	})
	c.Handle(OpCoordStatus, func(ctx context.Context, req any) (any, error) {
		return c.Status(), nil
	})
	c.OnStart(func(ctx context.Context) error { c.startLoop(); return nil })
	c.OnStop(func(ctx context.Context) error { c.stopLoop(); return nil })
	return c
}

// Manage places a late-bound reference under coordinator management so
// that avoidance steering and invalidation reach it.
func (c *Coordinator) Manage(refs ...*Ref) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, r := range refs {
		if r == nil {
			continue
		}
		c.refs = append(c.refs, r)
		c.required[r.Interface()] = true
		// Apply existing avoidance decisions to newly managed refs.
		for name := range c.avoided {
			r.Avoid(name, true)
		}
	}
}

// Require marks an interface as required even without a managed ref
// (e.g. workflow steps).
func (c *Coordinator) Require(ifaces ...string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, i := range ifaces {
		c.required[i] = true
	}
}

// StopUsing advises all managed references to avoid the named provider
// ("other services can be advised to stop using the service due to low
// resources", Section 3.7). Selection switches to alternates where they
// exist.
func (c *Coordinator) StopUsing(service string) {
	c.mu.Lock()
	if c.avoided[service] {
		c.mu.Unlock()
		return
	}
	c.avoided[service] = true
	refs := append([]*Ref(nil), c.refs...)
	c.switches++
	c.mu.Unlock()
	for _, r := range refs {
		r.Avoid(service, true)
	}
	c.publish(EventWorkflowSwitched, service, "load steered away (release resources)")
}

// Readmit reverses StopUsing.
func (c *Coordinator) Readmit(service string) {
	c.mu.Lock()
	if !c.avoided[service] {
		c.mu.Unlock()
		return
	}
	delete(c.avoided, service)
	refs := append([]*Ref(nil), c.refs...)
	c.mu.Unlock()
	for _, r := range refs {
		r.Avoid(service, false)
	}
	c.publish(EventWorkflowSwitched, service, "service readmitted")
}

// ProbeOnce performs a single health sweep: every live local
// registration is probed (service state, then ping when offered), and
// failures are handled via HandleFailure. It returns the names of
// services found failed.
func (c *Coordinator) ProbeOnce(ctx context.Context) []string {
	var failed []string
	for _, reg := range c.registry.All() {
		if reg.Invoker == nil {
			continue
		}
		healthy := true
		if svc, ok := reg.Invoker.(Service); ok {
			switch svc.State() {
			case StateRunning, StateDegraded:
			default:
				healthy = false
			}
		}
		if healthy {
			if _, ok := reg.Contract.Op(PingOp); ok {
				pctx, cancel := context.WithTimeout(ctx, c.cfg.ProbeTimeout)
				_, err := reg.Invoker.Invoke(pctx, PingOp, nil)
				cancel()
				if err != nil {
					healthy = false
				}
			}
		}
		if c.resources != nil {
			if healthy {
				c.resources.SetServiceState(reg.Name, StateRunning)
			} else {
				c.resources.SetServiceState(reg.Name, StateFailed)
			}
		}
		if !healthy {
			failed = append(failed, reg.Name)
			c.HandleFailure(ctx, reg)
		}
	}
	return failed
}

// HandleFailure reacts to a failed provider: the registration is
// removed, and if the failure leaves a required interface uncovered the
// coordinator attempts adaptation via Repair. With alternates present,
// reference self-healing covers the switch (flexibility by selection).
func (c *Coordinator) HandleFailure(ctx context.Context, reg *Registration) {
	_ = c.registry.Deregister(reg.Name)
	c.publish(EventServiceFailed, reg.Name, "removed after failed probe")
	c.invalidateRefs(reg.Interface)
	c.mu.Lock()
	needed := c.required[reg.Interface]
	c.mu.Unlock()
	if !needed {
		return
	}
	if len(c.registry.Discover(reg.Interface)) > 0 {
		c.mu.Lock()
		c.switches++
		c.mu.Unlock()
		c.publish(EventWorkflowSwitched, reg.Interface, "alternate provider selected for "+reg.Name)
		return
	}
	if _, err := c.Repair(ctx, reg.Interface); err != nil {
		c.publish(EventReconfigured, reg.Interface, "repair failed: "+err.Error())
	}
}

// Repair restores a provider for an interface that currently has none,
// by generating an adaptor service around some live service whose
// contract can be bridged (Figure 7: "adaptor services have to be
// created to mediate service interaction"). It returns the name of the
// registered adaptor.
func (c *Coordinator) Repair(ctx context.Context, iface string) (string, error) {
	if len(c.registry.Discover(iface)) > 0 {
		return "", fmt.Errorf("core: interface %s already has a provider", iface)
	}
	required, err := c.repo.GetContract(iface)
	if err != nil {
		return "", fmt.Errorf("core: repair %s: no schema in repository: %w", iface, err)
	}
	// Deterministic scan over live candidates.
	for _, cand := range c.registry.All() {
		if cand.Interface == iface || cand.Invoker == nil {
			continue
		}
		name := fmt.Sprintf("%s:%s-via-%s", c.cfg.AdaptorPrefix, iface, cand.Name)
		ad, aerr := GenerateAdaptor(name, required, cand.Contract, cand.Invoker, c.repo)
		if aerr != nil {
			continue
		}
		if rerr := c.registry.Register(&Registration{
			Name:      name,
			Interface: iface,
			Contract:  required,
			Invoker:   ad,
			Tags:      map[string]string{"adaptor": "true", "target": cand.Name},
		}); rerr != nil {
			return "", rerr
		}
		c.mu.Lock()
		c.repairs++
		c.mu.Unlock()
		c.invalidateRefs(iface)
		c.publish(EventAdaptorCreated, name, "adapts "+cand.Name+" to "+iface)
		c.publish(EventReconfigured, iface, "provider restored via adaptation")
		return name, nil
	}
	return "", fmt.Errorf("%w: interface %s", ErrNoAdaptation, iface)
}

// Status returns a snapshot of coordinator state.
func (c *Coordinator) Status() CoordStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CoordStatus{
		ManagedRefs: len(c.refs),
		Adaptations: c.repairs,
		Switches:    c.switches,
	}
	for i := range c.required {
		st.RequiredIfcs = append(st.RequiredIfcs, i)
	}
	sort.Strings(st.RequiredIfcs)
	for s := range c.avoided {
		st.AvoidedSvcs = append(st.AvoidedSvcs, s)
	}
	sort.Strings(st.AvoidedSvcs)
	return st
}

func (c *Coordinator) invalidateRefs(iface string) {
	c.mu.Lock()
	refs := append([]*Ref(nil), c.refs...)
	c.mu.Unlock()
	for _, r := range refs {
		if r.Interface() == iface {
			r.Invalidate()
		}
	}
}

func (c *Coordinator) startLoop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.loopStop != nil || c.cfg.ProbePeriod <= 0 {
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	c.loopStop, c.loopDone = stop, done

	var evCh <-chan Event
	var cancel func()
	if c.bus != nil {
		evCh, cancel = c.bus.SubscribeTypes(256, EventLowResources, EventServiceFailed)
	}
	go func() {
		defer close(done)
		if cancel != nil {
			defer cancel()
		}
		ticker := time.NewTicker(c.cfg.ProbePeriod)
		defer ticker.Stop()
		//lint:ignore ctxflow the probe loop is a background daemon with no caller; cancellation arrives via the stop channel, and each probe bounds itself with its own timeout
		ctx := context.Background()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				c.ProbeOnce(ctx)
			case ev, ok := <-evCh:
				if !ok {
					evCh = nil
					continue
				}
				c.handleEvent(ctx, ev)
			}
		}
	}()
}

func (c *Coordinator) handleEvent(ctx context.Context, ev Event) {
	switch ev.Type {
	case EventLowResources:
		// A resource ran low: if an owning service is identified, steer
		// load away from it so it can recover (Figure 6).
		if owner := ev.Attrs["service"]; owner != "" {
			c.StopUsing(owner)
		}
	case EventServiceFailed:
		if reg, err := c.registry.Lookup(ev.Subject); err == nil {
			c.HandleFailure(ctx, reg)
		}
	}
}

func (c *Coordinator) stopLoop() {
	c.mu.Lock()
	stop, done := c.loopStop, c.loopDone
	c.loopStop, c.loopDone = nil, nil
	c.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

func (c *Coordinator) publish(t EventType, subject, detail string) {
	if c.bus != nil {
		c.bus.Publish(Event{Type: t, Subject: subject, Detail: detail})
	}
}
