package sbdms

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/txn"
)

// --- snapshot visibility -------------------------------------------------

// TestMVCCSnapshotIgnoresUncommitted: a snapshot read resolves a key's
// version chain past a concurrent transaction's uncommitted version to
// the newest committed one, and does not see uncommitted inserts at
// all — without blocking on the writer's lock.
func TestMVCCSnapshotIgnoresUncommitted(t *testing.T) {
	db := openIsoDB(t, ReadCommitted)
	defer db.Close(context.Background())
	ctx := context.Background()

	if err := db.Put("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	tx, err := db.kv.txns.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := db.kv.locks.Acquire(ctx, tx.ID(), kvRes("k"), txn.Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := db.kv.locks.Acquire(ctx, tx.ID(), kvRes("fresh"), txn.Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := db.kv.putTx(ctx, tx, tx.ID(), tx, "k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := db.kv.putTx(ctx, tx, tx.ID(), tx, "fresh", []byte("new")); err != nil {
		t.Fatal(err)
	}

	// The writer holds X locks on both keys; a snapshot read must
	// neither block nor see its versions.
	done := make(chan struct{})
	go func() {
		defer close(done)
		if got, err := db.GetSnapshot("k"); err != nil || string(got) != "v1" {
			t.Errorf("GetSnapshot under uncommitted update = %q, %v; want v1", got, err)
		}
		if _, err := db.GetSnapshot("fresh"); !isNotFound(err) {
			t.Errorf("GetSnapshot of uncommitted insert: %v, want not-found", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("snapshot read blocked behind a writer's key lock")
	}

	if err := db.kv.txns.Commit(tx); err != nil {
		t.Fatal(err)
	}
	if got, err := db.GetSnapshot("k"); err != nil || string(got) != "v2" {
		t.Fatalf("GetSnapshot after commit = %q, %v; want v2", got, err)
	}
	if got, err := db.GetSnapshot("fresh"); err != nil || string(got) != "new" {
		t.Fatalf("GetSnapshot of committed insert = %q, %v; want new", got, err)
	}
}

// TestMVCCSnapshotSeesDeleteOrder: a tombstone committed before the
// snapshot hides the key; versions below the tombstone stay readable
// for older snapshots until vacuumed.
func TestMVCCSnapshotTombstone(t *testing.T) {
	db := openIsoDB(t, ReadCommitted)
	defer db.Close(context.Background())

	if err := db.Put("gone", []byte("was-here")); err != nil {
		t.Fatal(err)
	}
	// Pin a snapshot predating the delete.
	old := db.kv.oracle.Snapshot()
	defer old.Close()
	if err := db.DeleteKey("gone"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.GetSnapshot("gone"); !isNotFound(err) {
		t.Fatalf("GetSnapshot after committed delete: %v, want not-found", err)
	}
	// The pinned snapshot still resolves through the tombstone to the
	// old value.
	rids, err := db.kv.idx.Search(db.kv.key("gone"))
	if err != nil || len(rids) == 0 {
		t.Fatalf("ghost index entry missing: %v", err)
	}
	v, ok, retry, err := db.kv.readVisible("gone", rids[0], old.ReadTS)
	if err != nil || retry || !ok || string(v) != "was-here" {
		t.Fatalf("old snapshot read = %q ok=%v retry=%v err=%v; want was-here", v, ok, retry, err)
	}
}

// TestMVCCSnapshotConsistentCut: a snapshot scan must see an atomic
// batch entirely or not at all, even while batches commit under it.
// This is the same workload whose read-committed scan provably tears
// (TestIsolationTornBatchReadCommitted) — the snapshot path must stay
// clean WITHOUT next-key locks, at read-committed configuration.
func TestMVCCSnapshotConsistentCut(t *testing.T) {
	db := openIsoDB(t, ReadCommitted)
	defer db.Close(context.Background())

	for i := 0; i < 100; i++ {
		if err := db.Put(fmt.Sprintf("sn-m-%04d", i), []byte("filler")); err != nil {
			t.Fatal(err)
		}
	}
	torn, landed := 0, 0
	for r := 0; r < 200 && landed < 25; r++ {
		lo := fmt.Sprintf("sn-a-%06d", r)
		hi := fmt.Sprintf("sn-z-%06d", r)
		keys := []string{lo}
		for i := 0; i < 30; i++ {
			keys = append(keys, fmt.Sprintf("sn-n-%06d-%02d", r, i))
		}
		keys = append(keys, hi)
		vals := make([][]byte, len(keys))
		for i := range vals {
			vals[i] = []byte("v")
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			if err := db.PutBatch(keys, vals); err != nil {
				t.Errorf("PutBatch: %v", err)
			}
		}()
		for scanning := true; scanning; {
			select {
			case <-done:
				scanning = false
			default:
			}
			got, err := db.ScanKeysSnapshot("sn-", 100000)
			if err != nil {
				t.Fatal(err)
			}
			sawLo, sawHi := false, false
			for _, k := range got {
				if k == lo {
					sawLo = true
				}
				if k == hi {
					sawHi = true
				}
			}
			if sawLo != sawHi {
				torn++
			} else if !sawLo {
				landed++ // scanned while the batch was still in flight
			}
		}
	}
	if torn > 0 {
		t.Fatalf("%d snapshot scans saw half an atomic batch", torn)
	}
	if landed == 0 {
		t.Log("no scan landed inside an in-flight batch; consistency not exercised this run")
	}
}

// --- write-write conflicts ----------------------------------------------

// TestMVCCWriteWriteConflictAborts: MVCC reads are lock-free, but
// writers keep strict per-key 2PL — two transactions updating the same
// keys in opposite orders still deadlock, and the victim aborts with a
// retryable conflict while the survivor commits.
func TestMVCCWriteWriteConflictAborts(t *testing.T) {
	db := openIsoDB(t, ReadCommitted)
	defer db.Close(context.Background())
	ctx := context.Background()

	for _, k := range []string{"ww-1", "ww-2"} {
		if err := db.Put(k, []byte("v0")); err != nil {
			t.Fatal(err)
		}
	}
	tx1, err := db.kv.txns.Begin()
	if err != nil {
		t.Fatal(err)
	}
	tx2, err := db.kv.txns.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := db.kv.locks.Acquire(ctx, tx1.ID(), kvRes("ww-1"), txn.Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := db.kv.locks.Acquire(ctx, tx2.ID(), kvRes("ww-2"), txn.Exclusive); err != nil {
		t.Fatal(err)
	}
	type waitResult struct {
		tx  *txn.Txn
		err error
	}
	results := make(chan waitResult, 2)
	go func() { results <- waitResult{tx1, db.kv.locks.Acquire(ctx, tx1.ID(), kvRes("ww-2"), txn.Exclusive)} }()
	go func() { results <- waitResult{tx2, db.kv.locks.Acquire(ctx, tx2.ID(), kvRes("ww-1"), txn.Exclusive)} }()
	// Neither wait can be granted while both base locks are held, so the
	// first result is always the deadlock victim's refusal — whichever
	// goroutine enqueued second and closed the cycle.
	first := <-results
	if !errors.Is(first.err, txn.ErrDeadlock) {
		t.Fatalf("expected one deadlock victim, got %v", first.err)
	}
	// The victim aborts; the survivor's wait is granted, it writes and
	// commits.
	victim, survivor, sk := first.tx, tx2, "ww-1"
	if victim == tx2 {
		survivor, sk = tx1, "ww-2"
	}
	if err := db.kv.txns.Abort(victim); err != nil {
		t.Fatal(err)
	}
	if second := <-results; second.err != nil {
		t.Fatalf("survivor's lock wait failed: %v", second.err)
	}
	if err := db.kv.putTx(ctx, survivor, survivor.ID(), survivor, sk, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := db.kv.txns.Commit(survivor); err != nil {
		t.Fatal(err)
	}
	if got, err := db.Get(sk); err != nil || string(got) != "v1" {
		t.Fatalf("survivor's write = %q, %v; want v1", got, err)
	}
}

// --- vacuum --------------------------------------------------------------

// TestMVCCVacuumReclaims: updates grow version chains and deletes
// leave ghost entries; a vacuum pass with no snapshots live prunes
// every chain to its newest version and removes dead keys entirely —
// heap slot count equals live key count afterwards, and reads are
// unaffected.
func TestMVCCVacuumReclaims(t *testing.T) {
	db := openIsoDB(t, ReadCommitted)
	defer db.Close(context.Background())

	const keys = 40
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("vac-%03d", i)
		for v := 0; v < 4; v++ {
			if err := db.Put(k, []byte(fmt.Sprintf("v%d", v))); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < keys; i += 2 {
		if err := db.DeleteKey(fmt.Sprintf("vac-%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	before, err := db.kv.heap.Count()
	if err != nil {
		t.Fatal(err)
	}
	if before <= keys {
		t.Fatalf("heap holds %d cells before vacuum; chains missing", before)
	}

	st, err := db.Vacuum()
	if err != nil {
		t.Fatal(err)
	}
	if st.KeysRemoved != keys/2 {
		t.Fatalf("KeysRemoved = %d, want %d", st.KeysRemoved, keys/2)
	}
	if st.SkippedBusy != 0 || st.SkippedUncommitted != 0 {
		t.Fatalf("idle vacuum skipped work: %+v", st)
	}
	after, err := db.kv.heap.Count()
	if err != nil {
		t.Fatal(err)
	}
	if after != keys/2 {
		t.Fatalf("heap holds %d cells after vacuum, want %d (one per live key)", after, keys/2)
	}
	if got := db.KVLen(); got != keys/2 {
		t.Fatalf("KVLen after vacuum = %d, want %d", got, keys/2)
	}
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("vac-%03d", i)
		got, err := db.Get(k)
		sgot, serr := db.GetSnapshot(k)
		if i%2 == 0 {
			if !isNotFound(err) || !isNotFound(serr) {
				t.Fatalf("deleted %q after vacuum: %v / %v", k, err, serr)
			}
		} else if err != nil || string(got) != "v3" || serr != nil || string(sgot) != "v3" {
			t.Fatalf("%q after vacuum = %q,%v / %q,%v; want v3", k, got, err, sgot, serr)
		}
	}
	// A reclaimed key is re-insertable (the gap protocol sees a clean
	// absence, not a ghost).
	if err := db.Put("vac-000", []byte("back")); err != nil {
		t.Fatal(err)
	}
	if got, err := db.Get("vac-000"); err != nil || string(got) != "back" {
		t.Fatalf("reinsert after vacuum = %q, %v", got, err)
	}
}

// TestMVCCVacuumRespectsHorizon: a live snapshot pins every version it
// can resolve to. Vacuum with the snapshot open must keep the pinned
// versions readable; after the snapshot closes, a second pass reclaims
// them.
func TestMVCCVacuumRespectsHorizon(t *testing.T) {
	db := openIsoDB(t, ReadCommitted)
	defer db.Close(context.Background())

	if err := db.Put("pin", []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := db.Put("doomed", []byte("short-lived")); err != nil {
		t.Fatal(err)
	}
	snap := db.kv.oracle.Snapshot()
	defer snap.Close()
	for i := 0; i < 3; i++ {
		if err := db.Put("pin", []byte(fmt.Sprintf("new-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.DeleteKey("doomed"); err != nil {
		t.Fatal(err)
	}

	if _, err := db.Vacuum(); err != nil {
		t.Fatal(err)
	}
	// The snapshot's versions survived: "pin" still resolves to its
	// old value, the deleted key's pre-delete value is still there.
	for k, want := range map[string]string{"pin": "old", "doomed": "short-lived"} {
		rids, err := db.kv.idx.Search(db.kv.key(k))
		if err != nil || len(rids) == 0 {
			t.Fatalf("%q unreachable after horizon-bounded vacuum: %v", k, err)
		}
		v, ok, retry, err := db.kv.readVisible(k, rids[0], snap.ReadTS)
		if err != nil || retry || !ok || string(v) != want {
			t.Fatalf("snapshot read of %q after vacuum = %q ok=%v retry=%v err=%v; want %q",
				k, v, ok, retry, err, want)
		}
	}
	// Current reads see the new world.
	if got, err := db.Get("pin"); err != nil || string(got) != "new-2" {
		t.Fatalf("current read of pin = %q, %v", got, err)
	}

	snap.Close()
	st, err := db.Vacuum()
	if err != nil {
		t.Fatal(err)
	}
	if st.KeysRemoved != 1 {
		t.Fatalf("post-release vacuum removed %d keys, want 1 (doomed)", st.KeysRemoved)
	}
	n, err := db.kv.heap.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("heap holds %d cells after full vacuum, want 1", n)
	}
}

// --- stress (the `make mvcc` workload) -----------------------------------

// TestMVCCStressSnapshotVacuum runs writers (updates and
// delete/reinsert cycles), lock-free snapshot readers, and a
// continuous vacuum against each other. Snapshot scans must never see
// half an atomic pair; snapshot gets must always return a value some
// commit actually wrote; the engine must end consistent.
func TestMVCCStressSnapshotVacuum(t *testing.T) {
	db := openIsoDB(t, ReadCommitted)
	defer db.Close(context.Background())

	const (
		pairs   = 8
		writers = 4
	)
	deadline := time.Now().Add(2 * time.Second)
	if testing.Short() {
		deadline = time.Now().Add(300 * time.Millisecond)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup

	// Writers: each round writes pair keys pa-i-r / pz-i-r atomically
	// (one batch), then deletes a previous round's pair one key at a
	// time — presence of exactly one pair member is only legal for
	// DELETES in flight, so scans assert on the insert pairs only.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; !stop.Load(); r++ {
				lo := fmt.Sprintf("pa-%d-%06d", w, r)
				hi := fmt.Sprintf("pz-%d-%06d", w, r)
				err := db.PutBatch([]string{lo, hi}, [][]byte{[]byte("v"), []byte("v")})
				if err != nil && !IsConflict(err) {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				if r >= 3 {
					// Delete pz before pa: the pair's members go in two
					// transactions, so a scan CAN land between them — the
					// legal half-state is pa-without-pz, which keeps
					// "pz present ⇒ pa present" an invariant.
					old := r - 3
					for _, k := range []string{fmt.Sprintf("pz-%d-%06d", w, old), fmt.Sprintf("pa-%d-%06d", w, old)} {
						if err := db.DeleteKey(k); err != nil && !IsConflict(err) && !isNotFound(err) {
							t.Errorf("writer %d delete: %v", w, err)
							return
						}
					}
				}
				// Hot keys grow chains for the vacuum to chew through.
				k := fmt.Sprintf("hot-%d", r%pairs)
				if err := db.Put(k, []byte(fmt.Sprintf("w%d-r%d", w, r))); err != nil && !IsConflict(err) {
					t.Errorf("writer %d hot put: %v", w, err)
					return
				}
			}
		}(w)
	}

	// Snapshot scanners: an insert pair must appear entirely or not at
	// all. (Delete pairs are removed key-by-key, so only the pa-
	// without-pz direction is a violation: deletes run pa first.)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			keys, err := db.ScanKeysSnapshot("p", 100000)
			if err != nil {
				t.Errorf("snapshot scan: %v", err)
				return
			}
			seen := map[string]bool{}
			for _, k := range keys {
				seen[k] = true
			}
			for _, k := range keys {
				if len(k) > 1 && k[1] == 'z' {
					if !seen["pa"+k[2:]] {
						t.Errorf("snapshot scan saw %s without pa%s", k, k[2:])
						return
					}
				}
			}
		}
	}()

	// Snapshot point readers on the hot keys: never block, never see
	// garbage (any committed value is fine, a decode error is not).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			k := fmt.Sprintf("hot-%d", i%pairs)
			if _, err := db.GetSnapshot(k); err != nil && !isNotFound(err) {
				t.Errorf("snapshot get %q: %v", k, err)
				return
			}
		}
	}()

	// The scavenger, as fast as it can go.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			if _, err := db.Vacuum(); err != nil {
				t.Errorf("vacuum: %v", err)
				return
			}
		}
	}()

	for time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	if t.Failed() {
		return
	}

	// Quiesce: a final vacuum must shrink the heap to exactly one cell
	// per live key.
	if _, err := db.Vacuum(); err != nil {
		t.Fatal(err)
	}
	live, err := db.ScanKeys("", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if got := db.KVLen(); got != uint64(len(live)) {
		t.Fatalf("KVLen = %d but scan found %d keys", got, len(live))
	}
	cells, err := db.kv.heap.Count()
	if err != nil {
		t.Fatal(err)
	}
	if cells != len(live) {
		t.Fatalf("heap holds %d cells after final vacuum, want %d (one per live key)", cells, len(live))
	}
}
