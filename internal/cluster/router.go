package cluster

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	sbdms "repro"
)

// Router is the client side of the cluster: it fetches the shard map
// from the registry-published map service, routes every operation to
// the owning shard, and retries map-epoch rejections by refreshing and
// replanning the WHOLE operation. Multi-shard batches are planned under
// one epoch and every sub-request carries it, so a batch is either
// applied entirely under one map or entirely retried under the next —
// never split across epochs.
type Router struct {
	transport Transport
	fetch     func(ctx context.Context) (*Map, error)

	// MaxRetries bounds epoch-rejection replans (default 4). With 0 the
	// first rejection surfaces as a typed retryable ErrEpochChanged.
	MaxRetries int
	// RetryBackoff spaces replans while a map change propagates to
	// nodes (default 2ms).
	RetryBackoff time.Duration

	cur atomic.Pointer[Map]
}

// NewRouter creates a router fanning out through transport, refreshing
// its shard map via fetch.
func NewRouter(transport Transport, fetch func(ctx context.Context) (*Map, error)) *Router {
	return &Router{transport: transport, fetch: fetch, MaxRetries: 4, RetryBackoff: 2 * time.Millisecond}
}

// Map returns the router's current (possibly stale) shard map, fetching
// it on first use.
func (r *Router) Map(ctx context.Context) (*Map, error) {
	if m := r.cur.Load(); m != nil {
		return m, nil
	}
	return r.Refresh(ctx)
}

// Refresh re-fetches the shard map.
func (r *Router) Refresh(ctx context.Context) (*Map, error) {
	m, err := r.fetch(ctx)
	if err != nil {
		return nil, err
	}
	if len(m.Shards) == 0 {
		return nil, fmt.Errorf("cluster: empty shard map at epoch %d", m.Epoch)
	}
	r.cur.Store(m)
	return m, nil
}

// withReplan runs fn against the current map, refreshing and fully
// re-running it on epoch or leadership rejections.
func (r *Router) withReplan(ctx context.Context, fn func(m *Map) error) error {
	m, err := r.Map(ctx)
	if err != nil {
		return err
	}
	for attempt := 0; ; attempt++ {
		err = fn(m)
		if err == nil || (!IsEpochChanged(err) && !IsNotLeader(err) && !IsUnavailable(err)) {
			return err
		}
		if attempt >= r.MaxRetries {
			return fmt.Errorf("%w: %d replans exhausted (last: %v)", ErrEpochChanged, attempt+1, err)
		}
		if r.RetryBackoff > 0 {
			select {
			case <-time.After(r.RetryBackoff):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		if m, err = r.Refresh(ctx); err != nil {
			return err
		}
	}
}

// Put writes one key through its shard leader.
func (r *Router) Put(ctx context.Context, key string, val []byte) error {
	return r.withReplan(ctx, func(m *Map) error {
		s := m.Shards[m.ShardFor(key)]
		_, err := r.transport.Invoke(ctx, s.Leader, KVServiceName, "put",
			PutReq{Epoch: m.Epoch, Key: key, Val: val})
		return err
	})
}

// Delete removes one key through its shard leader.
func (r *Router) Delete(ctx context.Context, key string) error {
	return r.withReplan(ctx, func(m *Map) error {
		s := m.Shards[m.ShardFor(key)]
		_, err := r.transport.Invoke(ctx, s.Leader, KVServiceName, "delete",
			GetReq{Epoch: m.Epoch, Key: key})
		return mapNotFound(err)
	})
}

// Get reads one key's latest committed value from its shard leader.
func (r *Router) Get(ctx context.Context, key string) ([]byte, error) {
	var out []byte
	err := r.withReplan(ctx, func(m *Map) error {
		s := m.Shards[m.ShardFor(key)]
		res, err := r.transport.Invoke(ctx, s.Leader, KVServiceName, "get",
			GetReq{Epoch: m.Epoch, Key: key})
		if err != nil {
			return mapNotFound(err)
		}
		out = asBytes(res)
		return nil
	})
	return out, err
}

// GetSnapshot reads one key at the shard's replicated frontier,
// preferring a follower; an unreachable follower falls back to the
// leader's snapshot path.
func (r *Router) GetSnapshot(ctx context.Context, key string) ([]byte, error) {
	var out []byte
	err := r.withReplan(ctx, func(m *Map) error {
		s := m.Shards[m.ShardFor(key)]
		res, err := r.snapshotInvoke(ctx, s, "getSnapshot", GetReq{Epoch: m.Epoch, Key: key})
		if err != nil {
			return mapNotFound(err)
		}
		out = asBytes(res)
		return nil
	})
	return out, err
}

// snapshotInvoke tries the shard's first follower, then the leader.
func (r *Router) snapshotInvoke(ctx context.Context, s Shard, op string, req any) (any, error) {
	targets := make([]NodeID, 0, 2)
	if len(s.Followers) > 0 {
		targets = append(targets, s.Followers[0])
	}
	targets = append(targets, s.Leader)
	var lastErr error
	for _, t := range targets {
		res, err := r.transport.Invoke(ctx, t, KVServiceName, op, req)
		if err == nil {
			return res, nil
		}
		lastErr = err
		// Epoch rejections and data errors are authoritative — only
		// reachability failures fall through to the next target.
		if IsEpochChanged(err) || strings.Contains(err.Error(), sbdms.ErrKeyNotFound.Error()) {
			return nil, err
		}
	}
	return nil, lastErr
}

// PutBatch writes a batch. Keys are grouped by owning shard under ONE
// map epoch; every per-shard sub-batch carries that epoch and any
// rejection triggers a refresh and a FULL retry of the whole batch
// (puts are idempotent upserts, so shards that already applied their
// sub-batch simply converge).
func (r *Router) PutBatch(ctx context.Context, keys []string, vals [][]byte) error {
	return r.groupedWrite(ctx, "putBatch", keys, vals)
}

// Import bulk-loads a batch, grouped by shard like PutBatch.
func (r *Router) Import(ctx context.Context, keys []string, vals [][]byte) error {
	return r.groupedWrite(ctx, "import", keys, vals)
}

func (r *Router) groupedWrite(ctx context.Context, op string, keys []string, vals [][]byte) error {
	if len(keys) != len(vals) {
		return sbdms.ErrBatchMismatch
	}
	return r.withReplan(ctx, func(m *Map) error {
		groups := make(map[int]*BatchReq)
		for i, k := range keys {
			sid := m.ShardFor(k)
			g := groups[sid]
			if g == nil {
				g = &BatchReq{Epoch: m.Epoch}
				groups[sid] = g
			}
			g.Keys = append(g.Keys, k)
			g.Vals = append(g.Vals, vals[i])
		}
		// Deterministic shard order keeps failures reproducible.
		sids := make([]int, 0, len(groups))
		for sid := range groups {
			sids = append(sids, sid)
		}
		sort.Ints(sids)
		for _, sid := range sids {
			if _, err := r.transport.Invoke(ctx, m.Shards[sid].Leader, KVServiceName, op, *groups[sid]); err != nil {
				return err
			}
		}
		return nil
	})
}

// ScanKeys merges each shard's ordered scan into one global in-order
// prefix of up to n keys starting at from.
func (r *Router) ScanKeys(ctx context.Context, from string, n int) ([]string, error) {
	var out []string
	err := r.withReplan(ctx, func(m *Map) error {
		per := make([][]string, 0, len(m.Shards))
		for _, s := range m.Shards {
			res, err := r.transport.Invoke(ctx, s.Leader, KVServiceName, "scanKeys",
				ScanReq{Epoch: m.Epoch, From: from, N: n})
			if err != nil {
				return err
			}
			per = append(per, asStrings(res))
		}
		out = mergeSorted(per, n)
		return nil
	})
	return out, err
}

// ScanKeysSnapshot merges per-shard snapshot scans (served at each
// shard's replicated frontier, follower-first).
func (r *Router) ScanKeysSnapshot(ctx context.Context, from string, n int) ([]string, error) {
	var out []string
	err := r.withReplan(ctx, func(m *Map) error {
		per := make([][]string, 0, len(m.Shards))
		for _, s := range m.Shards {
			res, err := r.snapshotInvoke(ctx, s, "scanSnapshot", ScanReq{Epoch: m.Epoch, From: from, N: n})
			if err != nil {
				return err
			}
			per = append(per, asStrings(res))
		}
		out = mergeSorted(per, n)
		return nil
	})
	return out, err
}

// Len sums live key counts across shards.
func (r *Router) Len(ctx context.Context) (uint64, error) {
	var total uint64
	err := r.withReplan(ctx, func(m *Map) error {
		total = 0
		for _, s := range m.Shards {
			res, err := r.transport.Invoke(ctx, s.Leader, KVServiceName, "len", LenReq{Epoch: m.Epoch})
			if err != nil {
				return err
			}
			total += asUint64(res)
		}
		return nil
	})
	return total, err
}

// mapNotFound converts a (possibly string-flattened) key-not-found
// error back into the engine's typed sentinel.
func mapNotFound(err error) error {
	if err != nil && strings.Contains(err.Error(), sbdms.ErrKeyNotFound.Error()) {
		return sbdms.ErrKeyNotFound
	}
	return err
}

func asBytes(res any) []byte {
	if b, ok := res.([]byte); ok {
		return b
	}
	return nil
}

func asStrings(res any) []string {
	if s, ok := res.([]string); ok {
		return s
	}
	return nil
}

func asUint64(res any) uint64 {
	if v, ok := res.(uint64); ok {
		return v
	}
	return 0
}

// mergeSorted merges already-sorted per-shard key lists into the first
// n keys of their union (hash partitioning makes the lists disjoint).
func mergeSorted(per [][]string, n int) []string {
	var all []string
	for _, p := range per {
		all = append(all, p...)
	}
	sort.Strings(all)
	if n > 0 && len(all) > n {
		all = all[:n]
	}
	return all
}
