package access

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/buffer"
	"repro/internal/storage"
	"repro/internal/wal"
)

// Logical-undo descriptors.
//
// Once transactions interleave on shared pages (per-key locking, many
// writers per heap page or index leaf), physical before-image undo is
// unsound: restoring a stale image would wipe bytes that concurrent
// committed transactions wrote next to ours. Instead, every record-
// and key-level mutation attaches a small descriptor naming its
// INVERSE operation; rollback (and post-crash loser rollback, after
// redo has repeated history) re-executes the inverse through the normal
// latched access paths, logging each step as a redo-only compensation
// record.
//
// Every inverse is idempotent — deleting an absent entry, re-inserting
// a present one and rewriting identical bytes are no-ops — so a crash
// in the middle of a rollback needs no undo-next pointers: recovery
// replays the durable compensations (repeat history) and re-runs the
// remaining inverses; inverses already applied by a durable
// compensation fall through harmlessly.
//
// Wire form: one kind byte, then kind-specific fields.
const (
	// UndoKindNone marks a redo-only record (wal.UndoNone).
	UndoKindNone byte = 0
	// UndoKindHeapInsert undoes a heap insert: delete (page, slot).
	UndoKindHeapInsert byte = 1
	// UndoKindHeapDelete undoes a heap delete: re-insert the record
	// bytes at exactly (page, slot).
	UndoKindHeapDelete byte = 2
	// UndoKindHeapCell undoes a padded in-place update: rewrite the
	// whole cell at (page, slot) with the old cell bytes (same length).
	UndoKindHeapCell byte = 3
	// UndoKindHeapUpdate undoes an exact-length update: store the old
	// record bytes back into (page, slot), relocating within the page
	// if needed.
	UndoKindHeapUpdate byte = 4
	// UndoKindIndexInsert undoes a B+tree insert: delete (key, rid)
	// from the tree rooted at the meta page. Applied by internal/index.
	UndoKindIndexInsert byte = 5
	// UndoKindIndexDelete undoes a B+tree delete: re-insert (key, rid).
	// Applied by internal/index.
	UndoKindIndexDelete byte = 6
	// UndoKindHeapField undoes a fixed-width in-cell field stamp
	// (version-header begin/prev mutations): rewrite the old bytes at
	// the recorded offset within the cell at (page, slot).
	UndoKindHeapField byte = 7
	// UndoKindIndexRepoint undoes a B+tree entry repoint: restore the
	// entry's old RID suffix. Applied by internal/index.
	UndoKindIndexRepoint byte = 8
)

// ErrBadUndo is returned for malformed or unknown undo descriptors.
var ErrBadUndo = errors.New("access: bad undo descriptor")

// encodeRIDDesc is the shared heap-descriptor prefix:
// kind | u64 page | u16 slot | payload.
func encodeRIDDesc(kind byte, rid RID, payload []byte) []byte {
	out := make([]byte, 11, 11+len(payload))
	out[0] = kind
	binary.LittleEndian.PutUint64(out[1:], uint64(rid.Page))
	binary.LittleEndian.PutUint16(out[9:], rid.Slot)
	return append(out, payload...)
}

func decodeRIDDesc(desc []byte) (RID, []byte, error) {
	if len(desc) < 11 {
		return RID{}, nil, fmt.Errorf("%w: %d bytes", ErrBadUndo, len(desc))
	}
	rid := RID{
		Page: storage.PageID(binary.LittleEndian.Uint64(desc[1:])),
		Slot: binary.LittleEndian.Uint16(desc[9:]),
	}
	return rid, desc[11:], nil
}

// UndoHeapInsert builds the descriptor undoing an insert at rid.
func UndoHeapInsert(rid RID) []byte { return encodeRIDDesc(UndoKindHeapInsert, rid, nil) }

// UndoHeapDelete builds the descriptor undoing a delete of rec at rid.
func UndoHeapDelete(rid RID, rec []byte) []byte { return encodeRIDDesc(UndoKindHeapDelete, rid, rec) }

// UndoHeapCell builds the descriptor undoing a padded in-place update
// (oldCell is the full prior cell content).
func UndoHeapCell(rid RID, oldCell []byte) []byte {
	return encodeRIDDesc(UndoKindHeapCell, rid, oldCell)
}

// UndoHeapUpdate builds the descriptor undoing an exact-length update.
func UndoHeapUpdate(rid RID, oldRec []byte) []byte {
	return encodeRIDDesc(UndoKindHeapUpdate, rid, oldRec)
}

// UndoHeapField builds the descriptor undoing a field stamp: the old
// bytes are rewritten at off within the cell at rid. Wire payload:
// u16 off | old bytes.
func UndoHeapField(rid RID, off int, old []byte) []byte {
	payload := make([]byte, 2+len(old))
	binary.LittleEndian.PutUint16(payload, uint16(off))
	copy(payload[2:], old)
	return encodeRIDDesc(UndoKindHeapField, rid, payload)
}

// ApplyHeapUndo executes the inverse heap operation named by desc,
// logging the page mutation as a redo-only compensation under tx (which
// should force the redo-only marker via the RedoOnlyLogger interface).
// It reports false when the descriptor is not a heap kind.
//
// Each inverse tolerates having already been applied (by a durable
// compensation record of a rollback the crash interrupted): deleting a
// dead slot, re-filling an occupied slot with identical bytes and
// rewriting identical cells are silent no-ops.
func ApplyHeapUndo(pool *buffer.Manager, log *wal.Log, tx TxnContext, desc []byte) (bool, error) {
	if len(desc) == 0 {
		return false, fmt.Errorf("%w: empty", ErrBadUndo)
	}
	kind := desc[0]
	if (kind < UndoKindHeapInsert || kind > UndoKindHeapUpdate) && kind != UndoKindHeapField {
		return false, nil
	}
	rid, payload, err := decodeRIDDesc(desc)
	if err != nil {
		return false, err
	}
	err = MutatePageUndo(pool, log, tx, rid.Page, nil, func(p *storage.Page) error {
		sp := Slotted(p)
		switch kind {
		case UndoKindHeapInsert:
			if err := sp.Delete(int(rid.Slot)); err != nil && !errors.Is(err, ErrNoSlot) {
				return err
			}
			return nil
		case UndoKindHeapDelete:
			return sp.InsertAt(int(rid.Slot), payload)
		case UndoKindHeapCell:
			return sp.RestoreCell(int(rid.Slot), payload)
		case UndoKindHeapUpdate:
			if cur, err := sp.Get(int(rid.Slot)); err == nil && bytes.Equal(cur, payload) {
				return nil // compensation already applied
			}
			return sp.Update(int(rid.Slot), payload)
		case UndoKindHeapField:
			if len(payload) < 2 {
				return fmt.Errorf("%w: short field payload", ErrBadUndo)
			}
			off := int(binary.LittleEndian.Uint16(payload))
			old := payload[2:]
			cell, err := sp.Get(int(rid.Slot))
			if err != nil {
				// The slot vanished: a later durable compensation of this
				// same rollback already removed the version. Idempotent.
				if errors.Is(err, ErrNoSlot) {
					return nil
				}
				return err
			}
			if off+len(old) > len(cell) {
				return fmt.Errorf("%w: field stamp past cell end", ErrBadUndo)
			}
			copy(cell[off:], old)
			return nil
		}
		return fmt.Errorf("%w: kind %d", ErrBadUndo, kind)
	})
	return true, err
}
