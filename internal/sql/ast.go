package sql

import (
	"fmt"

	"repro/internal/access"
	"repro/internal/exec"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// ColumnDef is one column in CREATE TABLE.
type ColumnDef struct {
	Name     string
	TypeName string
	NotNull  bool
}

// CreateTable is CREATE TABLE name (cols...).
type CreateTable struct {
	Name    string
	Columns []ColumnDef
}

func (*CreateTable) stmt() {}

// CreateIndex is CREATE [UNIQUE] INDEX name ON table (column).
type CreateIndex struct {
	Name   string
	Table  string
	Column string
	Unique bool
}

func (*CreateIndex) stmt() {}

// CreateView is CREATE VIEW name AS select.
type CreateView struct {
	Name  string
	Query string // raw SELECT text
}

func (*CreateView) stmt() {}

// Drop is DROP TABLE/INDEX/VIEW name.
type Drop struct {
	Kind string // "TABLE", "INDEX", "VIEW"
	Name string
}

func (*Drop) stmt() {}

// Insert is INSERT INTO table [(cols)] VALUES (...), (...).
type Insert struct {
	Table   string
	Columns []string
	Rows    [][]exec.Expr
}

func (*Insert) stmt() {}

// SetClause is one column assignment of UPDATE.
type SetClause struct {
	Column string
	Value  exec.Expr
}

// Update is UPDATE table SET col = expr [, ...] [WHERE expr].
type Update struct {
	Table string
	Sets  []SetClause
	Where exec.Expr
}

func (*Update) stmt() {}

// Delete is DELETE FROM table [WHERE expr].
type Delete struct {
	Table string
	Where exec.Expr
}

func (*Delete) stmt() {}

// SelectItem is one output of SELECT: an expression with optional
// alias, or star.
type SelectItem struct {
	Star  bool
	Expr  exec.Expr
	Alias string
}

// TableRef is one FROM element; entries after the first carry the join
// condition (nil = cross join).
type TableRef struct {
	Table  string
	Alias  string
	JoinOn exec.Expr
}

// OrderItem is one ORDER BY term.
type OrderItem struct {
	Expr exec.Expr
	Desc bool
}

// Select is a SELECT statement.
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    exec.Expr
	GroupBy  []exec.Expr
	Having   exec.Expr
	OrderBy  []OrderItem
	Limit    int64 // -1 = none
	Offset   int64
}

func (*Select) stmt() {}

// Begin/Commit/Rollback control explicit transactions.
type Begin struct{}

func (*Begin) stmt() {}

// Commit commits the current transaction.
type Commit struct{}

func (*Commit) stmt() {}

// Rollback aborts the current transaction.
type Rollback struct{}

func (*Rollback) stmt() {}

// AggCall is an aggregate invocation inside a SELECT item. It
// implements exec.Expr so it can flow through the parser, but direct
// evaluation is an error — the planner rewrites it into a
// HashAggregate column.
type AggCall struct {
	Func exec.AggFunc
	Arg  exec.Expr // nil for COUNT(*)
}

// Eval implements exec.Expr: aggregates cannot be evaluated per row.
func (a AggCall) Eval(access.Row, []string) (access.Value, error) {
	return access.Null(), fmt.Errorf("%w: aggregate %s outside GROUP BY context", ErrSyntax, a.Func)
}

// String implements exec.Expr.
func (a AggCall) String() string {
	if a.Arg == nil {
		return fmt.Sprintf("%s(*)", a.Func)
	}
	return fmt.Sprintf("%s(%s)", a.Func, a.Arg)
}
