package core

import (
	"errors"
	"fmt"
)

// Component model errors.
var (
	// ErrUnresolvedReference is returned when a required reference has
	// no provider at wiring time.
	ErrUnresolvedReference = errors.New("core: unresolved required reference")
)

// Reference declares a dependency of a component on some interface, in
// the SCA sense (Figure 3: "components use references" to describe
// dependencies on services provided by other components).
type Reference struct {
	// Name is the local reference name the implementation looks up.
	Name string
	// Interface is the required logical interface.
	Interface string
	// Selector chooses among providers; nil means SelectFirst.
	Selector Selector
	// Required references fail deployment when unresolvable; optional
	// ones yield a Ref that errors at call time until a provider shows
	// up (pure late binding).
	Required bool
}

// Implementation produces the service instance of a component. The SCA
// implementation element is technology-agnostic (Java, BPEL, composite,
// ...); here it is any Go value that can instantiate a Service given
// the component's properties and wired references.
type Implementation interface {
	Instantiate(props *Properties, refs map[string]*Ref) (Service, error)
}

// ImplementationFunc adapts a function to the Implementation interface.
type ImplementationFunc func(props *Properties, refs map[string]*Ref) (Service, error)

// Instantiate implements Implementation.
func (f ImplementationFunc) Instantiate(props *Properties, refs map[string]*Ref) (Service, error) {
	return f(props, refs)
}

// Component is the atomic SCA structure (Figure 3): an implementation
// plus exposed services, required references and configuration
// properties. Properties are read at instantiation, "allowing to
// customize its behaviour according to the current state of the
// architecture".
type Component struct {
	// Name is the unique component name within its composite.
	Name string
	// Impl instantiates the component's service.
	Impl Implementation
	// Properties configure the instance.
	Properties map[string]string
	// References declare dependencies wired at deployment.
	References []Reference
	// Tags are attached to the service registration (e.g. node
	// locality) for selector use.
	Tags map[string]string

	instance Service
	refs     map[string]*Ref
}

// Instance returns the instantiated service, or nil before deployment.
func (c *Component) Instance() Service { return c.instance }

// Refs returns the wired references, or nil before deployment.
func (c *Component) Refs() map[string]*Ref { return c.refs }

// instantiate wires references against the registry and creates the
// service instance. Architecture properties are layered under the
// component's own properties so assertions can see both.
func (c *Component) instantiate(reg *Registry, arch *Properties) (Service, error) {
	if c.Impl == nil {
		return nil, fmt.Errorf("core: component %s has no implementation", c.Name)
	}
	props := NewProperties()
	if arch != nil {
		props.Merge(arch)
	}
	for k, v := range c.Properties {
		props.Set(k, v)
	}
	refs := make(map[string]*Ref, len(c.References))
	for _, r := range c.References {
		ref := NewRef(reg, r.Interface, r.Selector)
		if r.Required {
			if _, err := ref.Resolve(); err != nil {
				return nil, fmt.Errorf("core: component %s reference %s: %w: %s",
					c.Name, r.Name, ErrUnresolvedReference, r.Interface)
			}
		}
		refs[r.Name] = ref
	}
	svc, err := c.Impl.Instantiate(props, refs)
	if err != nil {
		return nil, fmt.Errorf("core: instantiating component %s: %w", c.Name, err)
	}
	c.instance = svc
	c.refs = refs
	return svc, nil
}

// Composite combines components and nested composites into a larger
// structure (Figure 4: "Both components and composites can be
// recursively contained"). Deployment instantiates depth-first in
// declaration order, so substrate components should be declared before
// their dependents; late binding tolerates forward references for
// optional dependencies.
type Composite struct {
	Name       string
	Components []*Component
	Composites []*Composite
	// Properties apply to all contained components (overridden by
	// component-level properties).
	Properties map[string]string
}

// NewComposite creates an empty composite.
func NewComposite(name string) *Composite {
	return &Composite{Name: name}
}

// Add appends a component and returns the composite for chaining.
func (cp *Composite) Add(c *Component) *Composite {
	cp.Components = append(cp.Components, c)
	return cp
}

// AddComposite nests a child composite.
func (cp *Composite) AddComposite(child *Composite) *Composite {
	cp.Composites = append(cp.Composites, child)
	return cp
}

// ComponentCount returns the number of components including nested
// composites.
func (cp *Composite) ComponentCount() int {
	n := len(cp.Components)
	for _, child := range cp.Composites {
		n += child.ComponentCount()
	}
	return n
}

// Walk visits every component depth-first in deployment order.
func (cp *Composite) Walk(f func(path string, c *Component) error) error {
	for _, c := range cp.Components {
		if err := f(cp.Name+"/"+c.Name, c); err != nil {
			return err
		}
	}
	for _, child := range cp.Composites {
		if err := child.Walk(func(path string, c *Component) error {
			return f(cp.Name+"/"+path, c)
		}); err != nil {
			return err
		}
	}
	return nil
}

// FindComponent locates a component by name anywhere in the tree.
func (cp *Composite) FindComponent(name string) *Component {
	for _, c := range cp.Components {
		if c.Name == name {
			return c
		}
	}
	for _, child := range cp.Composites {
		if c := child.FindComponent(name); c != nil {
			return c
		}
	}
	return nil
}
