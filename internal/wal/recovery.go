package wal

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/storage"
)

// RecoveryStats reports what recovery did.
type RecoveryStats struct {
	Scanned   int
	Redone    int
	Undone    int
	Rebuilt   int // pages reconstructed from scratch (torn or lost writes)
	Committed int
	InFlight  int // transactions rolled back
	ScanFrom  LSN // where analysis started (the recovery-begin LSN)
	// FreeImages counts durable records of finished transactions that
	// mark a page free (a free-typed image starting at byte 0). Their
	// presence means the allocator's eager free-list links may diverge
	// from the logged markings, so the opener should rebuild the free
	// list even when redo itself had nothing to repair.
	FreeImages int
}

// Changed reports whether recovery had to repair anything — callers use
// it to decide whether crash-only follow-up work (free-list rebuild) is
// warranted.
func (st RecoveryStats) Changed() bool {
	return st.Redone > 0 || st.Undone > 0 || st.Rebuilt > 0
}

// pageExtender is implemented by stores (the disk manager) that can
// extend themselves so a page id becomes valid. Recovery needs it when
// a crash lost the allocation metadata for pages the WAL references.
type pageExtender interface {
	EnsureAllocated(storage.PageID) error
}

// readPageForRecovery reads a page, tolerating crash damage: a page id
// beyond the store's allocation metadata extends the store, and a torn
// or never-completed page write (checksum mismatch, short device) is
// returned as a zeroed page. The zeroed page is sound because of the
// full-page-write discipline: the first record for any page inside the
// replayed range is a full page image — either the page's first-ever
// record (prior image LSN 0), or the full image AppendPageUpdate logs
// on the page's first mutation after each checkpoint's fence. The
// recovery-begin LSN never exceeds a fence, so replaying the range in
// log order rebuilds the page completely even after older segments
// were truncated; diff records that precede the page's full image land
// on garbage and are then overwritten by it.
func readPageForRecovery(store storage.PageStore, id storage.PageID, buf []byte, st *RecoveryStats) error {
	err := store.ReadPage(id, buf)
	if err == nil {
		return nil
	}
	if errors.Is(err, storage.ErrOutOfRange) {
		if ext, ok := store.(pageExtender); ok {
			if eerr := ext.EnsureAllocated(id); eerr != nil {
				return eerr
			}
			if err = store.ReadPage(id, buf); err == nil {
				return nil
			}
		}
	}
	if errors.Is(err, storage.ErrChecksum) || errors.Is(err, io.EOF) {
		for i := range buf {
			buf[i] = 0
		}
		st.Rebuilt++
		return nil
	}
	return err
}

// Recover brings a page store to a consistent state after a crash:
//
//  1. Analysis: a scan from the manifest's recovery-begin LSN (the
//     minimum of the last checkpoint's fence, its dirty-page recLSNs
//     and the first LSN of its oldest in-flight transaction — so every
//     record that could still matter is inside the scan) classifies
//     transactions as committed, aborted, or in-flight, and collects
//     update records.
//  2. Redo: updates of committed AND cleanly-aborted transactions are
//     reapplied in log order wherever the page LSN shows the write
//     never reached the page (page.LSN < record.LSN). An aborted
//     transaction is safe to replay because the transaction manager
//     appends RecAbort only after logging a compensation record for
//     every undone update — replaying updates then compensations in
//     order nets out to the rollback, without re-applying stale before
//     images over bytes later transactions may have rewritten.
//  3. Undo: updates of in-flight transactions (no commit or abort
//     record) are reverted in reverse log order using before images.
//     Compensation records of a crashed (incomplete) abort are undone
//     first and their originals after, netting out to the original
//     before-images.
//
// Pages touched by undo/redo are stamped with the record's LSN so that
// recovery is idempotent: running it twice is a no-op.
func Recover(l *Log, store storage.PageStore) (RecoveryStats, error) {
	var st RecoveryStats
	st.ScanFrom = l.RecoveryBegin()
	status := make(map[uint64]RecType) // txn -> final state seen
	var updates []*Record
	err := l.Iterate(st.ScanFrom, func(rec *Record) error {
		st.Scanned++
		switch rec.Type {
		case RecBegin:
			status[rec.Txn] = RecBegin
		case RecCommit:
			status[rec.Txn] = RecCommit
		case RecAbort:
			status[rec.Txn] = RecAbort
		case RecUpdate:
			updates = append(updates, rec)
			if _, ok := status[rec.Txn]; !ok {
				status[rec.Txn] = RecBegin
			}
		}
		return nil
	})
	if err != nil {
		return st, fmt.Errorf("wal: analysis: %w", err)
	}
	for _, s := range status {
		switch s {
		case RecCommit:
			st.Committed++
		case RecBegin:
			st.InFlight++
		}
	}

	buf := make([]byte, storage.PageSize)
	apply := func(rec *Record, image []byte) error {
		if err := readPageForRecovery(store, rec.PageID, buf, &st); err != nil {
			return err
		}
		p := storage.WrapPage(rec.PageID, buf)
		copy(p.Data[rec.Offset:int(rec.Offset)+len(image)], image)
		p.SetLSN(uint64(rec.LSN))
		return store.WritePage(rec.PageID, p.Data)
	}

	// Redo committed and cleanly-aborted work in log order.
	for _, rec := range updates {
		if s := status[rec.Txn]; s != RecCommit && s != RecAbort {
			continue
		}
		if err := readPageForRecovery(store, rec.PageID, buf, &st); err != nil {
			return st, fmt.Errorf("wal: redo read page %d: %w", rec.PageID, err)
		}
		p := storage.WrapPage(rec.PageID, buf)
		if p.LSN() >= uint64(rec.LSN) {
			continue // already on the page
		}
		if rec.Offset == 0 && len(rec.After) > 0 && storage.PageType(rec.After[0]) == storage.PageTypeFree {
			// A free marking the crash actually lost had to be
			// replayed; only then is the allocator's list suspect
			// (counted here, after the already-applied check, so clean
			// reopens never pay the free-list rebuild).
			st.FreeImages++
		}
		copy(p.Data[rec.Offset:int(rec.Offset)+len(rec.After)], rec.After)
		p.SetLSN(uint64(rec.LSN))
		if err := store.WritePage(rec.PageID, p.Data); err != nil {
			return st, fmt.Errorf("wal: redo: %w", err)
		}
		st.Redone++
	}

	// Undo in-flight losers in reverse log order.
	losers := updates[:0:0]
	for _, rec := range updates {
		if status[rec.Txn] == RecBegin {
			losers = append(losers, rec)
		}
	}
	sort.Slice(losers, func(i, j int) bool { return losers[i].LSN > losers[j].LSN })
	for _, rec := range losers {
		if err := apply(rec, rec.Before); err != nil {
			return st, fmt.Errorf("wal: undo: %w", err)
		}
		st.Undone++
	}
	if err := store.Sync(); err != nil {
		return st, err
	}
	return st, nil
}
