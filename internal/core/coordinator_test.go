package core

import (
	"context"
	"errors"
	"testing"
	"time"
)

// deployEchoPair deploys two same-interface providers and returns the
// kernel plus a managed ref.
func deployEchoPair(t *testing.T) (*Kernel, *Ref) {
	t.Helper()
	ctx := context.Background()
	k := newTestKernel()
	comp := NewComposite("app").
		Add(&Component{Name: "primary", Impl: echoImpl("primary", "test.Echo")}).
		Add(&Component{Name: "standby", Impl: echoImpl("standby", "test.Echo")})
	if err := k.Deploy(ctx, comp); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = k.Stop(ctx) })
	return k, k.Ref("test.Echo", nil)
}

func TestCoordinatorSelectionOnFailure(t *testing.T) {
	ctx := context.Background()
	k, ref := deployEchoPair(t)
	if out, _ := ref.Invoke(ctx, "echo", "x"); out != "primary:x" {
		t.Fatalf("initial provider = %v", out)
	}
	// Fail the primary; a probe sweep must remove it and selection must
	// switch to the backup without adaptation.
	prim, _ := k.Component("primary")
	prim.Instance().(*BaseService).SetState(StateFailed)
	failed := k.Coordinator().ProbeOnce(ctx)
	if len(failed) != 1 || failed[0] != "primary" {
		t.Fatalf("failed = %v", failed)
	}
	out, err := ref.Invoke(ctx, "echo", "x")
	if err != nil || out != "standby:x" {
		t.Fatalf("after failover: %v, %v", out, err)
	}
	st := k.Coordinator().Status()
	if st.Switches == 0 {
		t.Fatalf("status = %+v, want a recorded switch", st)
	}
	if st.Adaptations != 0 {
		t.Fatal("selection must not create adaptors")
	}
}

func TestCoordinatorAdaptationOnFailure(t *testing.T) {
	ctx := context.Background()
	k := newTestKernel()
	// One provider of test.Echo plus a semantically-equivalent legacy
	// service with a different interface.
	comp := NewComposite("app").
		Add(&Component{Name: "primary", Impl: echoImpl("primary", "test.Echo")}).
		Add(&Component{Name: "legacy", Impl: ImplementationFunc(func(p *Properties, r map[string]*Ref) (Service, error) {
			s := NewService("legacy", legacyContract())
			s.Handle("reverberate", func(ctx context.Context, req any) (any, error) {
				return append([]byte("legacy:"), req.([]byte)...), nil
			})
			s.Handle("explode", func(ctx context.Context, req any) (any, error) {
				return nil, errors.New("legacy boom")
			})
			return WithPing(s), nil
		})})
	if err := k.Deploy(ctx, comp); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer k.Stop(ctx)
	// Transformation schemas required for bridging string <-> []byte.
	k.Repository().PutTransform("string", "[]byte", func(v any) (any, error) { return []byte(v.(string)), nil })
	k.Repository().PutTransform("[]byte", "string", func(v any) (any, error) { return string(v.([]byte)), nil })

	ref := k.Ref("test.Echo", nil)
	if out, _ := ref.Invoke(ctx, "echo", "x"); out != "primary:x" {
		t.Fatal("primary must serve first")
	}
	prim, _ := k.Component("primary")
	prim.Instance().(*BaseService).SetState(StateFailed)
	k.Coordinator().ProbeOnce(ctx)

	out, err := ref.Invoke(ctx, "echo", "x")
	if err != nil {
		t.Fatalf("after adaptation: %v", err)
	}
	if out != "legacy:x" {
		t.Fatalf("out = %v, want legacy:x via adaptor", out)
	}
	st := k.Coordinator().Status()
	if st.Adaptations != 1 {
		t.Fatalf("adaptations = %d", st.Adaptations)
	}
	counts := k.Bus().CountByType()
	if counts[EventAdaptorCreated] != 1 {
		t.Fatalf("events = %v", counts)
	}
	// The adaptor is registered under the required interface.
	provs := k.Registry().Discover("test.Echo")
	if len(provs) != 1 || provs[0].Tags["adaptor"] != "true" {
		t.Fatalf("providers = %v", names(provs))
	}
}

func TestCoordinatorRepairNoCandidate(t *testing.T) {
	ctx := context.Background()
	k := newTestKernel()
	if err := k.DeployComponent(ctx, &Component{Name: "only", Impl: echoImpl("only", "test.Echo")}); err != nil {
		t.Fatal(err)
	}
	_ = k.Start(ctx)
	defer k.Stop(ctx)
	ref := k.Ref("test.Echo", nil)
	_ = ref
	only, _ := k.Component("only")
	only.Instance().(*BaseService).SetState(StateFailed)
	k.Coordinator().ProbeOnce(ctx)
	// Nothing to adapt to: interface stays uncovered.
	if _, err := ref.Invoke(ctx, "echo", "x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if _, err := k.Coordinator().Repair(ctx, "test.Echo"); !errors.Is(err, ErrNoAdaptation) {
		t.Fatalf("Repair err = %v", err)
	}
}

func TestCoordinatorRepairRefusesWhenCovered(t *testing.T) {
	ctx := context.Background()
	k, _ := deployEchoPair(t)
	if _, err := k.Coordinator().Repair(ctx, "test.Echo"); err == nil {
		t.Fatal("Repair must refuse when providers exist")
	}
}

func TestCoordinatorReleaseResources(t *testing.T) {
	ctx := context.Background()
	k, ref := deployEchoPair(t)
	coord := k.Coordinator()
	// Figure 6: a service asks the coordinator to free it from load.
	if _, err := coord.Invoke(ctx, OpReleaseResources, ReleaseResourcesRequest{Service: "primary"}); err != nil {
		t.Fatal(err)
	}
	out, err := ref.Invoke(ctx, "echo", "x")
	if err != nil || out != "standby:x" {
		t.Fatalf("after release: %v, %v", out, err)
	}
	st := coord.Status()
	if len(st.AvoidedSvcs) != 1 || st.AvoidedSvcs[0] != "primary" {
		t.Fatalf("status = %+v", st)
	}
	// Restore re-admits the primary.
	if _, err := coord.Invoke(ctx, OpReleaseResources, ReleaseResourcesRequest{Service: "primary", Restore: true}); err != nil {
		t.Fatal(err)
	}
	out, _ = ref.Invoke(ctx, "echo", "x")
	if out != "primary:x" {
		t.Fatalf("after restore: %v", out)
	}
	// Bad request type.
	if _, err := coord.Invoke(ctx, OpReleaseResources, 42); err == nil {
		t.Fatal("want request type error")
	}
}

func TestCoordinatorStatusOp(t *testing.T) {
	ctx := context.Background()
	k, _ := deployEchoPair(t)
	out, err := k.Coordinator().Invoke(ctx, OpCoordStatus, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, ok := out.(CoordStatus)
	if !ok || st.ManagedRefs == 0 {
		t.Fatalf("status = %#v", out)
	}
	if len(st.RequiredIfcs) == 0 || st.RequiredIfcs[0] != "test.Echo" {
		t.Fatalf("required = %v", st.RequiredIfcs)
	}
}

func TestCoordinatorOperationalLoopDetectsFailure(t *testing.T) {
	ctx := context.Background()
	k := NewKernel(WithCoordinatorConfig(CoordinatorConfig{
		ProbePeriod:  5 * time.Millisecond,
		ProbeTimeout: 50 * time.Millisecond,
	}))
	comp := NewComposite("app").
		Add(&Component{Name: "primary", Impl: echoImpl("primary", "test.Echo")}).
		Add(&Component{Name: "standby", Impl: echoImpl("standby", "test.Echo")})
	if err := k.Deploy(ctx, comp); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer k.Stop(ctx)
	ref := k.Ref("test.Echo", nil)
	if out, _ := ref.Invoke(ctx, "echo", "x"); out != "primary:x" {
		t.Fatal("primary must serve first")
	}
	prim, _ := k.Component("primary")
	prim.Instance().(*BaseService).SetState(StateFailed)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		out, err := ref.Invoke(ctx, "echo", "x")
		if err == nil && out == "standby:x" {
			return // operational phase handled the failure
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("operational loop did not fail over within 2s")
}

func TestCoordinatorLowResourceEventSteersLoad(t *testing.T) {
	ctx := context.Background()
	k := NewKernel(WithCoordinatorConfig(CoordinatorConfig{
		ProbePeriod:  5 * time.Millisecond,
		ProbeTimeout: 50 * time.Millisecond,
	}))
	comp := NewComposite("app").
		Add(&Component{Name: "primary", Impl: echoImpl("primary", "test.Echo")}).
		Add(&Component{Name: "standby", Impl: echoImpl("standby", "test.Echo")})
	if err := k.Deploy(ctx, comp); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer k.Stop(ctx)
	ref := k.Ref("test.Echo", nil)
	if out, _ := ref.Invoke(ctx, "echo", "x"); out != "primary:x" {
		t.Fatal("primary must serve first")
	}
	// A monitoring service publishes a low-resource alert attributed to
	// the primary.
	k.Bus().Publish(Event{
		Type: EventLowResources, Subject: "memory",
		Attrs: map[string]string{"service": "primary"},
	})
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		out, _ := ref.Invoke(ctx, "echo", "x")
		if out == "standby:x" {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("low-resource alert did not steer load within 2s")
}

func TestResourceManagerBudgets(t *testing.T) {
	bus := NewEventBus(32)
	rm := NewResourceManager(bus)
	rm.DefineResource(ResourceBudget{Name: "mem", Capacity: 10, LowWatermark: 0.2})
	if err := rm.Acquire("mem", 7); err != nil {
		t.Fatal(err)
	}
	used, capn, err := rm.Usage("mem")
	if err != nil || used != 7 || capn != 10 {
		t.Fatalf("usage = %d/%d, %v", used, capn, err)
	}
	// Crossing the watermark fires exactly one low event.
	if err := rm.Acquire("mem", 2); err != nil {
		t.Fatal(err)
	}
	if err := rm.Acquire("mem", 1); err != nil {
		t.Fatal(err)
	}
	if err := rm.Acquire("mem", 1); !errors.Is(err, ErrResourceExhausted) {
		t.Fatalf("over-budget err = %v", err)
	}
	counts := bus.CountByType()
	if counts[EventLowResources] != 1 {
		t.Fatalf("low events = %d, want 1", counts[EventLowResources])
	}
	// Releasing past the watermark fires recovery.
	rm.Release("mem", 8)
	counts = bus.CountByType()
	if counts[EventResourcesReleased] != 1 {
		t.Fatalf("release events = %d, want 1", counts[EventResourcesReleased])
	}
	// Over-release clamps at zero.
	rm.Release("mem", 100)
	used, _, _ = rm.Usage("mem")
	if used != 0 {
		t.Fatalf("used = %d after over-release", used)
	}
	if err := rm.Acquire("nosuch", 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown resource err = %v", err)
	}
	if got := rm.Resources(); len(got) != 1 || got[0] != "mem" {
		t.Fatalf("Resources = %v", got)
	}
}

func TestResourceManagerServiceStates(t *testing.T) {
	bus := NewEventBus(32)
	rm := NewResourceManager(bus)
	rm.SetServiceState("svc", StateRunning)
	rm.SetServiceState("svc", StateDegraded)
	rm.SetServiceState("svc", StateDegraded) // no duplicate event
	rm.SetServiceState("svc", StateRunning)  // recovery
	rm.SetServiceState("svc", StateFailed)
	counts := bus.CountByType()
	if counts[EventServiceDegraded] != 1 || counts[EventServiceRecovered] != 1 || counts[EventServiceFailed] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	if st, ok := rm.ServiceState("svc"); !ok || st != StateFailed {
		t.Fatalf("state = %v, %v", st, ok)
	}
	states := rm.ServiceStates()
	if len(states) != 1 || states["svc"] != StateFailed {
		t.Fatalf("states = %v", states)
	}
}
