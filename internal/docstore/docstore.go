// Package docstore implements the XML Extension Service of Figure 2: a
// hierarchical document store that parses XML (stdlib encoding/xml),
// persists documents in a heap file, and answers path queries of the
// form /a/b[@attr='v']/c over the stored trees.
package docstore

import (
	"bytes"
	"encoding/json"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"repro/internal/access"
	"repro/internal/buffer"
	"repro/internal/storage"
)

// Docstore errors.
var (
	// ErrNoDoc is returned for unknown document names.
	ErrNoDoc = errors.New("docstore: no such document")
	// ErrBadPath is returned for malformed path queries.
	ErrBadPath = errors.New("docstore: malformed path")
)

// Node is one element of a document tree.
type Node struct {
	Name     string            `json:"name"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Text     string            `json:"text,omitempty"`
	Children []*Node           `json:"children,omitempty"`
}

// ParseXML builds a Node tree from XML input.
func ParseXML(r io.Reader) (*Node, error) {
	dec := xml.NewDecoder(r)
	var stack []*Node
	var root *Node
	for {
		tok, err := dec.Token()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("docstore: parsing XML: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := &Node{Name: t.Name.Local}
			if len(t.Attr) > 0 {
				n.Attrs = make(map[string]string, len(t.Attr))
				for _, a := range t.Attr {
					n.Attrs[a.Name.Local] = a.Value
				}
			}
			if len(stack) > 0 {
				parent := stack[len(stack)-1]
				parent.Children = append(parent.Children, n)
			} else if root == nil {
				root = n
			} else {
				return nil, fmt.Errorf("docstore: multiple roots")
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("docstore: unbalanced end tag %s", t.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) > 0 {
				text := strings.TrimSpace(string(t))
				if text != "" {
					stack[len(stack)-1].Text += text
				}
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("docstore: empty document")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("docstore: unclosed element %s", stack[len(stack)-1].Name)
	}
	return root, nil
}

// XML renders the node tree back to XML.
func (n *Node) XML() string {
	var b bytes.Buffer
	n.writeXML(&b)
	return b.String()
}

func (n *Node) writeXML(b *bytes.Buffer) {
	b.WriteByte('<')
	b.WriteString(n.Name)
	keys := make([]string, 0, len(n.Attrs))
	for k := range n.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(b, " %s=%q", k, n.Attrs[k])
	}
	if n.Text == "" && len(n.Children) == 0 {
		b.WriteString("/>")
		return
	}
	b.WriteByte('>')
	if n.Text != "" {
		_ = xml.EscapeText(b, []byte(n.Text))
	}
	for _, c := range n.Children {
		c.writeXML(b)
	}
	fmt.Fprintf(b, "</%s>", n.Name)
}

// pathStep is one segment of a path query: element name plus optional
// attribute predicate.
type pathStep struct {
	name      string
	attrKey   string
	attrValue string
}

// parsePath parses /a/b[@x='1']/c.
func parsePath(path string) ([]pathStep, error) {
	if !strings.HasPrefix(path, "/") {
		return nil, fmt.Errorf("%w: %q must start with /", ErrBadPath, path)
	}
	parts := strings.Split(strings.TrimPrefix(path, "/"), "/")
	steps := make([]pathStep, 0, len(parts))
	for _, part := range parts {
		if part == "" {
			return nil, fmt.Errorf("%w: empty segment in %q", ErrBadPath, path)
		}
		step := pathStep{name: part}
		if i := strings.IndexByte(part, '['); i >= 0 {
			if !strings.HasSuffix(part, "]") {
				return nil, fmt.Errorf("%w: %q", ErrBadPath, part)
			}
			pred := part[i+1 : len(part)-1]
			step.name = part[:i]
			if !strings.HasPrefix(pred, "@") {
				return nil, fmt.Errorf("%w: predicate %q", ErrBadPath, pred)
			}
			kv := strings.SplitN(strings.TrimPrefix(pred, "@"), "=", 2)
			if len(kv) != 2 {
				return nil, fmt.Errorf("%w: predicate %q", ErrBadPath, pred)
			}
			step.attrKey = kv[0]
			step.attrValue = strings.Trim(kv[1], "'\"")
		}
		steps = append(steps, step)
	}
	return steps, nil
}

// Select returns all nodes matching the path, starting at (and
// including) the root step.
func (n *Node) Select(path string) ([]*Node, error) {
	steps, err := parsePath(path)
	if err != nil {
		return nil, err
	}
	cur := []*Node{}
	if stepMatches(n, steps[0]) {
		cur = append(cur, n)
	}
	for _, step := range steps[1:] {
		var next []*Node
		for _, node := range cur {
			for _, c := range node.Children {
				if stepMatches(c, step) {
					next = append(next, c)
				}
			}
		}
		cur = next
	}
	return cur, nil
}

func stepMatches(n *Node, s pathStep) bool {
	if n.Name != s.name && s.name != "*" {
		return false
	}
	if s.attrKey != "" && n.Attrs[s.attrKey] != s.attrValue {
		return false
	}
	return true
}

// Store persists named documents in a heap file (JSON-encoded trees)
// with an in-memory name directory.
type Store struct {
	mu   sync.Mutex
	heap *access.HeapFile
	rids map[string]access.RID
}

// DocFile is the heap file name used by the document store.
const DocFile = "__docs__"

// Open loads (or initialises) a document store.
func Open(fm *storage.FileManager, pool *buffer.Manager) (*Store, error) {
	heap, err := access.OpenHeap(DocFile, fm, pool)
	if err != nil {
		return nil, err
	}
	s := &Store{heap: heap, rids: make(map[string]access.RID)}
	err = heap.Scan(func(rid access.RID, rec []byte) error {
		row, err := access.DecodeRow(rec)
		if err != nil {
			return err
		}
		s.rids[row[0].Str] = rid
		return nil
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Put stores (or replaces) a document under a name.
func (s *Store) Put(name string, doc *Node) error {
	blob, err := json.Marshal(doc)
	if err != nil {
		return err
	}
	rec := access.EncodeRow(access.Row{access.NewString(name), access.NewBytes(blob)})
	s.mu.Lock()
	defer s.mu.Unlock()
	if rid, ok := s.rids[name]; ok {
		nrid, err := s.heap.Update(nil, rid, rec)
		if err != nil {
			return err
		}
		s.rids[name] = nrid
		return nil
	}
	rid, err := s.heap.Insert(nil, rec)
	if err != nil {
		return err
	}
	s.rids[name] = rid
	return nil
}

// PutXML parses and stores an XML document.
func (s *Store) PutXML(name, xmlText string) error {
	doc, err := ParseXML(strings.NewReader(xmlText))
	if err != nil {
		return err
	}
	return s.Put(name, doc)
}

// Get loads a document by name.
func (s *Store) Get(name string) (*Node, error) {
	s.mu.Lock()
	rid, ok := s.rids[name]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoDoc, name)
	}
	rec, err := s.heap.Get(rid)
	if err != nil {
		return nil, err
	}
	row, err := access.DecodeRow(rec)
	if err != nil {
		return nil, err
	}
	var doc Node
	if err := json.Unmarshal(row[1].Bytes, &doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

// Delete removes a document.
func (s *Store) Delete(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rid, ok := s.rids[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoDoc, name)
	}
	if err := s.heap.Delete(nil, rid); err != nil {
		return err
	}
	delete(s.rids, name)
	return nil
}

// List returns the sorted document names.
func (s *Store) List() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.rids))
	for n := range s.rids {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Query runs a path query against a stored document.
func (s *Store) Query(name, path string) ([]*Node, error) {
	doc, err := s.Get(name)
	if err != nil {
		return nil, err
	}
	return doc.Select(path)
}
