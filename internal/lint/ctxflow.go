package lint

import (
	"go/ast"
	"strings"
)

// CtxFlowAnalyzer enforces context plumbing through the engine's
// blocking paths. Blocking entry points (anything that can park on the
// lock manager) must accept and thread a context.Context so callers can
// bound waits and cancel requests; minting a fresh
// context.Background() deep inside a request path severs that chain.
//
// Three rules:
//
//  1. A function that already receives a context.Context must not call
//     context.Background()/context.TODO() — thread the parameter.
//  2. The ctx argument to LockManager.Acquire / Txn.Lock must not be a
//     fresh context.Background()/context.TODO() call.
//  3. In packages under internal/, any context.Background()/TODO() in
//     non-test code is flagged: request paths must thread the caller's
//     context, and genuine background daemons (tickers, gossip loops)
//     carry a justified //lint:ignore ctxflow directive instead.
var CtxFlowAnalyzer = &Analyzer{
	Name: "ctxflow",
	Doc: "blocking engine entry points accept and thread context.Context; " +
		"no context.Background() inside request paths under internal/",
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	info := pass.TypesInfo
	internal := strings.Contains(pass.PkgPath, "/internal/") || strings.HasPrefix(pass.PkgPath, "internal/")

	// isFreshCtx reports whether e is a direct context.Background() or
	// context.TODO() call.
	isFreshCtx := func(e ast.Expr) (name string, ok bool) {
		call, isCall := ast.Unparen(e).(*ast.CallExpr)
		if !isCall {
			return "", false
		}
		fn := calleeFunc(info, call)
		if isPkgFunc(fn, "context", "Background") {
			return "context.Background", true
		}
		if isPkgFunc(fn, "context", "TODO") {
			return "context.TODO", true
		}
		return "", false
	}

	for _, f := range pass.Files {
		fname := pass.Fset.Position(f.Pos()).Filename
		isTest := strings.HasSuffix(fname, "_test.go")

		// Rule 1 + 3: walk each function body tracking whether any
		// enclosing function (decl or literal) has a ctx parameter.
		var walk func(n ast.Node, haveCtx bool)
		walk = func(n ast.Node, haveCtx bool) {
			ast.Inspect(n, func(m ast.Node) bool {
				switch v := m.(type) {
				case *ast.FuncDecl:
					if m == n {
						return true
					}
					return false
				case *ast.FuncLit:
					if m == n {
						return true
					}
					walk(v.Body, haveCtx || hasCtxParam(info, v.Type))
					return false
				case *ast.CallExpr:
					if name, ok := isFreshCtx(v); ok {
						switch {
						case haveCtx:
							pass.Reportf(v.Pos(),
								"%s() inside a function that already receives a context.Context: thread the parameter", name)
						case internal && !isTest:
							pass.Reportf(v.Pos(),
								"%s() in engine code under internal/: request paths must thread the caller's context "+
									"(background daemons: suppress with a justified //lint:ignore ctxflow)", name)
						}
					}
					// Rule 2: fresh context handed straight to a blocking
					// lock call, anywhere in the tree.
					fn := calleeFunc(info, v)
					if (isMethodOn(fn, txnPath, "LockManager", "Acquire") ||
						isMethodOn(fn, txnPath, "Txn", "Lock")) && len(v.Args) > 0 {
						if name, ok := isFreshCtx(v.Args[0]); ok {
							pass.Reportf(v.Args[0].Pos(),
								"%s() passed to blocking %s: thread the request context so the wait can be cancelled",
								name, fn.Name())
						}
					}
				}
				return true
			})
		}

		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			walk(fd, hasCtxParam(info, fd.Type))
		}

		// Package-level var initialisers (e.g. var bg = context.Background())
		// inside internal/ are rule-3 findings too.
		if internal && !isTest {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, val := range vs.Values {
						if name, ok := isFreshCtx(val); ok {
							pass.Reportf(val.Pos(),
								"%s() in engine code under internal/: request paths must thread the caller's context "+
									"(background daemons: suppress with a justified //lint:ignore ctxflow)", name)
						}
					}
				}
			}
		}
	}
	return nil
}
