package core

import (
	"testing"
	"testing/quick"
)

func TestContractOpLookup(t *testing.T) {
	c := echoContract("test.Echo")
	if op, ok := c.Op("echo"); !ok || op.In != "string" {
		t.Fatalf("Op(echo) = %+v, %v", op, ok)
	}
	if _, ok := c.Op("nosuch"); ok {
		t.Fatal("Op(nosuch) should be absent")
	}
	if op, ok := c.OpBySemantic("test.fail"); !ok || op.Name != "fail" {
		t.Fatalf("OpBySemantic = %+v, %v", op, ok)
	}
	if _, ok := c.OpBySemantic(""); ok {
		t.Fatal("empty semantic tag must not match")
	}
}

func TestContractSatisfies(t *testing.T) {
	provider := echoContract("test.Echo")
	required := &Contract{
		Interface:  "test.Echo",
		Operations: []OpSpec{{Name: "echo", In: "string", Out: "string"}},
	}
	if !provider.Satisfies(required) {
		t.Fatal("provider should satisfy subset contract")
	}
	required.Operations[0].In = "int"
	if provider.Satisfies(required) {
		t.Fatal("mismatched payload type must not satisfy")
	}
	required.Operations[0] = OpSpec{Name: "other", In: "string", Out: "string"}
	if provider.Satisfies(required) {
		t.Fatal("missing operation must not satisfy")
	}
	if provider.Satisfies(nil) || (*Contract)(nil).Satisfies(required) {
		t.Fatal("nil contracts never satisfy")
	}
}

func TestContractDocumentRoundTrip(t *testing.T) {
	c := echoContract("test.Echo")
	c.Version = "1.2"
	c.Quality = Quality{LatencyClass: "disk", Availability: 0.99, CostFactor: 2}
	c.Policy = Policy{
		Dependencies:  []string{"test.Dep"},
		Preconditions: []Assertion{{Property: "x", Op: ">=", Value: "1"}},
		MaxConcurrent: 4,
		Disableable:   true,
	}
	c.Description = Description{Summary: "echoes", DataTypes: map[string]string{"string": "utf-8 text"}}
	doc, err := c.Document()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseContract(doc)
	if err != nil {
		t.Fatal(err)
	}
	if back.Interface != c.Interface || back.Version != c.Version {
		t.Fatalf("round trip lost identity: %+v", back)
	}
	if len(back.Operations) != len(c.Operations) {
		t.Fatalf("operations lost: %d != %d", len(back.Operations), len(c.Operations))
	}
	if back.Policy.MaxConcurrent != 4 || !back.Policy.Disableable {
		t.Fatalf("policy lost: %+v", back.Policy)
	}
	if back.Quality.CostFactor != 2 {
		t.Fatalf("quality lost: %+v", back.Quality)
	}
}

func TestParseContractErrors(t *testing.T) {
	if _, err := ParseContract([]byte("not json")); err == nil {
		t.Fatal("want parse error")
	}
	if _, err := ParseContract([]byte(`{"operations":[]}`)); err == nil {
		t.Fatal("want missing-interface error")
	}
}

func TestContractValidate(t *testing.T) {
	good := echoContract("test.Echo")
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Contract{Interface: ""}
	if err := bad.Validate(); err == nil {
		t.Fatal("empty interface must fail")
	}
	dup := &Contract{Interface: "i", Operations: []OpSpec{{Name: "a"}, {Name: "a"}}}
	if err := dup.Validate(); err == nil {
		t.Fatal("duplicate op must fail")
	}
	unnamed := &Contract{Interface: "i", Operations: []OpSpec{{Name: ""}}}
	if err := unnamed.Validate(); err == nil {
		t.Fatal("unnamed op must fail")
	}
	badAssert := &Contract{Interface: "i", Policy: Policy{Preconditions: []Assertion{{Property: "p", Op: "~", Value: "1"}}}}
	if err := badAssert.Validate(); err == nil {
		t.Fatal("bad comparator must fail")
	}
}

func TestContractClone(t *testing.T) {
	c := echoContract("test.Echo")
	c.Description.DataTypes = map[string]string{"k": "v"}
	cp := c.Clone()
	cp.Operations[0].Name = "mutated"
	cp.Description.DataTypes["k"] = "changed"
	if c.Operations[0].Name == "mutated" || c.Description.DataTypes["k"] == "changed" {
		t.Fatal("clone must be deep")
	}
	if (*Contract)(nil).Clone() != nil {
		t.Fatal("nil clone must be nil")
	}
}

func TestLatencyClassRank(t *testing.T) {
	if !(LatencyClassRank("memory") < LatencyClassRank("disk") &&
		LatencyClassRank("disk") < LatencyClassRank("network") &&
		LatencyClassRank("network") < LatencyClassRank("weird")) {
		t.Fatal("latency class ordering broken")
	}
}

// Property: Document/ParseContract round-trips arbitrary well-formed
// contracts.
func TestContractDocumentRoundTripQuick(t *testing.T) {
	f := func(iface, opName, in, out string, maxc uint8) bool {
		if iface == "" || opName == "" {
			return true // skip invalid
		}
		c := &Contract{
			Interface:  iface,
			Operations: []OpSpec{{Name: opName, In: in, Out: out}},
			Policy:     Policy{MaxConcurrent: int(maxc)},
		}
		doc, err := c.Document()
		if err != nil {
			return false
		}
		back, err := ParseContract(doc)
		if err != nil {
			return false
		}
		op, ok := back.Op(opName)
		return back.Interface == iface && ok && op.In == in && op.Out == out &&
			back.Policy.MaxConcurrent == int(maxc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTypeName(t *testing.T) {
	if got := TypeName(nil); got != "nil" {
		t.Fatalf("TypeName(nil) = %q", got)
	}
	if got := TypeName("x"); got != "string" {
		t.Fatalf("TypeName(string) = %q", got)
	}
	type local struct{}
	if got := TypeName(local{}); got != "repro/internal/core.local" {
		t.Fatalf("TypeName(local) = %q", got)
	}
	if got := TypeName(&local{}); got != "repro/internal/core.local" {
		t.Fatalf("TypeName(*local) = %q (pointers unwrap)", got)
	}
}
