package index

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/access"
	"repro/internal/storage"
)

// Bulk-build errors.
var (
	// ErrTreeNotEmpty is returned by InstallRoot when the live tree
	// gained entries between the caller's emptiness check and the
	// install latch: the prebuilt tree cannot be swapped in and the
	// caller must fall back to the per-key insert path.
	ErrTreeNotEmpty = errors.New("index: tree not empty")
	// ErrUnsorted is returned by BulkBuild for input that is not in
	// strictly increasing composite-key order.
	ErrUnsorted = errors.New("index: bulk items not strictly sorted")
)

// BulkKeyLen returns the composite-key length the tree encodes key to
// (the RID suffix is fixed-width, so the length is rid-independent).
// Bulk loaders validate it against MaxKeySize before paying any page
// writes.
func BulkKeyLen(key []byte) int {
	return len(compositeKey(key, access.RID{}))
}

// BulkItem is one (key, rid) pair for BulkBuild. Items must be sorted
// by key (rid-tiebroken) and — in unique trees — carry distinct keys;
// BulkBuild verifies the resulting composite order.
type BulkItem struct {
	Key []byte
	RID access.RID
}

// BulkBuild constructs a complete B+tree bottom-up from sorted items
// into FRESH pages: leaves are packed densely left to right (chain
// links included), then interior levels are built from the leaf
// separators until a single root remains. Nothing links the new pages
// to the live tree — the caller publishes the result with InstallRoot
// (or frees the pages with FreePages after a failure or fallback).
//
// Every page is written exactly once and logged under tx with nil undo:
// fresh pages log full images (LSN 0 predates every full-page-write
// fence), so redo rebuilds them from nothing and a loser rolls back
// physically. tx must be the bulk loader's user transaction, which must
// log nothing with logical undo.
//
// pageDone, when non-nil, runs after each sealed page — the loader's
// cancellation hook. On any error the pages allocated so far are
// returned so the caller can free them.
func (t *BTree) BulkBuild(tx access.TxnContext, items []BulkItem, pageDone func() error) (root storage.PageID, pages []storage.PageID, err error) {
	if len(items) == 0 {
		return storage.InvalidPageID, nil, fmt.Errorf("index: bulk build of empty batch")
	}

	// A sealed node: its first composite key (the separator it
	// contributes to the level above) and its page id.
	type sealed struct {
		sep []byte
		id  storage.PageID
	}

	alloc := func(leaf bool) (*nref, error) {
		f, err := t.pool.NewPageLatched(storage.PageTypeIndex)
		if err != nil {
			return nil, err
		}
		pages = append(pages, f.ID)
		return &nref{id: f.ID, f: f, n: &node{id: f.ID, leaf: leaf}, excl: true}, nil
	}
	// seal encodes and logs the finished node in one record (its only
	// write — unlike newNodeLatched there is no separate empty-birth
	// record, halving the WAL bytes per page) and releases the latch.
	seal := func(r *nref) error {
		err := t.write(tx, r, nil)
		t.unlatch(r)
		if err == nil && pageDone != nil {
			err = pageDone()
		}
		return err
	}

	// Leaves: pack composite keys densely, maintaining the chain links.
	// The next leaf is allocated before the current one is sealed so the
	// forward link is known at write time.
	var level []sealed
	cur, err := alloc(true)
	if err != nil {
		return storage.InvalidPageID, pages, err
	}
	var prev []byte
	for _, it := range items {
		ck := compositeKey(it.Key, it.RID)
		if len(ck) > MaxKeySize {
			t.unlatch(cur)
			return storage.InvalidPageID, pages, fmt.Errorf("%w: %d bytes (max %d)", ErrKeyTooLarge, len(ck), MaxKeySize)
		}
		if prev != nil && bytes.Compare(prev, ck) >= 0 {
			t.unlatch(cur)
			return storage.InvalidPageID, pages, ErrUnsorted
		}
		prev = ck
		if len(cur.n.keys) > 0 && !safeForLeaf(cur.n, ck) {
			next, err := alloc(true)
			if err != nil {
				t.unlatch(cur)
				return storage.InvalidPageID, pages, err
			}
			cur.n.next = next.id
			next.n.prev = cur.id
			level = append(level, sealed{sep: cur.n.keys[0], id: cur.id})
			if err := seal(cur); err != nil {
				t.unlatch(next)
				return storage.InvalidPageID, pages, err
			}
			cur = next
		}
		cur.n.keys = append(cur.n.keys, ck)
	}
	level = append(level, sealed{sep: cur.n.keys[0], id: cur.id})
	if err := seal(cur); err != nil {
		return storage.InvalidPageID, pages, err
	}

	// Interior levels: children in order, separators between them (the
	// first key of each child's subtree, matching splitNode's choice).
	// One max-size separator of slack is left per node so a future
	// insert descent does not have to split it immediately.
	hasRoom := func(n *node, sep []byte) bool {
		return n.encodedSize()+2+len(sep)+8+(2+MaxKeySize+8) <= storage.PayloadSize
	}
	for len(level) > 1 {
		var next []sealed
		cur, err := alloc(false)
		if err != nil {
			return storage.InvalidPageID, pages, err
		}
		cur.n.children = []storage.PageID{level[0].id}
		first := level[0].sep
		for _, e := range level[1:] {
			if len(cur.n.keys) > 0 && !hasRoom(cur.n, e.sep) {
				next = append(next, sealed{sep: first, id: cur.id})
				if err := seal(cur); err != nil {
					return storage.InvalidPageID, pages, err
				}
				if cur, err = alloc(false); err != nil {
					return storage.InvalidPageID, pages, err
				}
				cur.n.children = []storage.PageID{e.id}
				first = e.sep
				continue
			}
			cur.n.keys = append(cur.n.keys, e.sep)
			cur.n.children = append(cur.n.children, e.id)
		}
		next = append(next, sealed{sep: first, id: cur.id})
		if err := seal(cur); err != nil {
			return storage.InvalidPageID, pages, err
		}
		level = next
	}
	return level[0].id, pages, nil
}

// InstallRoot atomically publishes a prebuilt tree: under the exclusive
// meta latch (which every descent crabs through) it verifies the live
// tree is still an empty single leaf, then swaps the root pointer and
// entry count in one logged mutation under tx with nil undo — the meta
// latch is held from the swap until the caller's commit is durable, so
// no concurrent transaction can interleave a record on the meta page
// and the physical before-image undo (restoring the old root pointer)
// stays sound for both a live abort and a crash.
//
// On success the meta latch is HELD: the caller must commit tx and then
// call release exactly once. oldRoot is the detached empty leaf — free
// it only after the commit is durable (OnCommitted), because until then
// a rollback would restore the root pointer to it. ErrTreeNotEmpty
// means a concurrent insert won the race; everything is released and
// nothing was written.
func (t *BTree) InstallRoot(tx access.TxnContext, newRoot storage.PageID, count uint64) (oldRoot storage.PageID, release func(), err error) {
	metaF, rootID, err := t.metaLatch(true)
	if err != nil {
		return storage.InvalidPageID, nil, err
	}
	old, err := t.latch(rootID, true)
	if err != nil {
		t.metaUnlatch(true, false)
		return storage.InvalidPageID, nil, err
	}
	// Any in-flight descent either already latched the old root (its
	// insert completed before our latch was granted — visible below as
	// a non-empty leaf) or is queued behind the meta latch and will see
	// the new root. A non-leaf root or any entry means the fast-path
	// precondition evaporated.
	if !old.n.leaf || len(old.n.keys) != 0 || t.count.Load() != 0 {
		t.unlatch(old)
		t.metaUnlatch(true, false)
		return storage.InvalidPageID, nil, ErrTreeNotEmpty
	}
	err = access.LogLatchedMutation(t.getLog(), tx, metaF, nil, func(p *storage.Page) error {
		pl := p.Payload()
		binary.LittleEndian.PutUint64(pl[8:], uint64(newRoot))
		binary.LittleEndian.PutUint64(pl[16:], count)
		return nil
	})
	if err != nil {
		t.unlatch(old)
		t.metaUnlatch(true, false)
		return storage.InvalidPageID, nil, err
	}
	// The meta page is the root's parent in the optimistic descent
	// protocol: bump its version so a descent that read the old root
	// pointer fails validation and retries.
	t.versSlot(t.metaID).Add(1)
	t.count.Store(int64(count))
	t.unlatch(old)
	return rootID, func() { t.metaUnlatch(true, true) }, nil
}

// FreePages routes ids through the WAL-logged free path configured by
// SetFreer (no-op without one — pages then leak until the next
// free-list rebuild, which bulk-load callers accept only on the crash
// path).
func (t *BTree) FreePages(ids []storage.PageID) error {
	t.mu.Lock()
	f := t.freer
	t.mu.Unlock()
	if f == nil || len(ids) == 0 {
		return nil
	}
	return f(ids)
}
